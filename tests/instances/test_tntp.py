"""The TNTP parser, the loader's modelling choices and the bundled fixture."""

import numpy as np
import pytest

from repro.instances import (
    SIOUX_FALLS_REFERENCE_TSTT,
    get_instance,
    load_tntp_instance,
    parse_tntp_network,
    parse_tntp_trips,
    sioux_falls_network,
)
from repro.instances.tntp import SIOUX_FALLS_NET, SIOUX_FALLS_TRIPS
from repro.solvers import solve_edge_flow_equilibrium
from repro.wardrop import BPRLatency

GOOD_NET = """
<NUMBER OF ZONES> 2
<NUMBER OF NODES> 3
<FIRST THRU NODE> 1
<NUMBER OF LINKS> 3
<END OF METADATA>
~ init term capacity length fft b power speed toll type ;
1 3 1000 2 2 0.15 4 0 0 1 ;
3 2 1000 2 2 0.15 4 0 0 1 ;
1 2 1000 10 10 0.15 4 0 0 1 ;
"""

GOOD_TRIPS = """
<NUMBER OF ZONES> 2
<TOTAL OD FLOW> 100.0
<END OF METADATA>
Origin 1
1 : 0.0; 2 : 100.0;
Origin 2
1 : 0.0; 2 : 0.0;
"""


class TestNetworkParser:
    def test_parses_metadata_and_links(self):
        metadata, links = parse_tntp_network(GOOD_NET)
        assert metadata["FIRST THRU NODE"] == "1"
        assert len(links) == 3
        assert links[0].init_node == 1 and links[0].term_node == 3
        assert links[0].capacity == 1000.0 and links[0].power == 4.0

    def test_comment_lines_and_trailing_semicolons_are_ignored(self):
        noisy = GOOD_NET.replace(
            "<END OF METADATA>", "<END OF METADATA>\n~ a full-line comment"
        ) + "~ trailing commentary\n"
        _, links = parse_tntp_network(noisy)
        assert len(links) == 3

    def test_semicolon_glued_to_the_last_field_still_parses(self):
        glued = GOOD_NET.replace(" 1 ;", " 1;")
        _, links = parse_tntp_network(glued)
        assert len(links) == 3
        assert links[-1].link_type == 1

    def test_malformed_metadata_line_raises(self):
        broken = GOOD_NET.replace("<FIRST THRU NODE> 1", "<FIRST THRU NODE 1")
        with pytest.raises(ValueError, match="malformed TNTP metadata"):
            parse_tntp_network(broken)

    def test_non_numeric_metadata_value_raises(self):
        broken = GOOD_NET.replace("<NUMBER OF LINKS> 3", "<NUMBER OF LINKS> many")
        with pytest.raises(ValueError, match="not a number"):
            parse_tntp_network(broken)

    def test_link_count_mismatch_raises(self):
        broken = GOOD_NET.replace("<NUMBER OF LINKS> 3", "<NUMBER OF LINKS> 4")
        with pytest.raises(ValueError, match="declares 4 links"):
            parse_tntp_network(broken)

    def test_short_link_row_raises(self):
        broken = GOOD_NET + "1 2 1000 ;\n"
        with pytest.raises(ValueError, match="malformed TNTP link row"):
            parse_tntp_network(broken)


class TestTripsParser:
    def test_zero_demand_and_diagonal_pairs_are_dropped(self):
        _, demands = parse_tntp_trips(GOOD_TRIPS)
        assert demands == {(1, 2): 100.0}

    def test_total_od_flow_mismatch_raises(self):
        broken = GOOD_TRIPS.replace("<TOTAL OD FLOW> 100.0", "<TOTAL OD FLOW> 400.0")
        with pytest.raises(ValueError, match="total OD flow"):
            parse_tntp_trips(broken)

    def test_row_before_origin_raises(self):
        broken = GOOD_TRIPS.replace("Origin 1", "NotAnOrigin 1")
        with pytest.raises(ValueError, match="before any 'Origin'"):
            parse_tntp_trips(broken)

    def test_entry_without_colon_raises(self):
        broken = GOOD_TRIPS.replace("2 : 100.0;", "2 100.0;")
        with pytest.raises(ValueError, match="malformed TNTP trips entry"):
            parse_tntp_trips(broken)

    def test_negative_demand_raises(self):
        broken = GOOD_TRIPS.replace("2 : 100.0;", "2 : -5.0;").replace(
            "<TOTAL OD FLOW> 100.0", "<TOTAL OD FLOW> -5.0"
        )
        with pytest.raises(ValueError, match="negative TNTP demand"):
            parse_tntp_trips(broken)


class TestLoader:
    def test_loader_builds_bpr_latencies_with_scaled_capacity(self, tmp_path):
        net_file = tmp_path / "toy_net.tntp"
        trips_file = tmp_path / "toy_trips.tntp"
        net_file.write_text(GOOD_NET)
        trips_file.write_text(GOOD_TRIPS)
        network = load_tntp_instance(net_file, trips_file, name="toy")
        assert network.graph.graph["total_demand"] == 100.0
        assert network.num_commodities == 1
        assert network.commodities[0].demand == 1.0  # normalised
        latency = network.latency_function(network.edges[0])
        assert isinstance(latency, BPRLatency)
        assert latency.capacity == pytest.approx(1000.0 / 100.0)

    def test_first_thru_node_blocks_routing_through_centroids(self, tmp_path):
        # Zones 1, 2 are centroids (first thru node = 3).  The cheap route
        # 1 -> 2 -> 4 passes *through* zone 2 and must not be seeded; the
        # direct link 1 -> 4 is the only legal route.
        net_text = """
<NUMBER OF ZONES> 2
<FIRST THRU NODE> 3
<NUMBER OF LINKS> 3
<END OF METADATA>
1 2 1000 1 1 0.15 4 0 0 1 ;
2 4 1000 1 1 0.15 4 0 0 1 ;
1 4 1000 10 10 0.15 4 0 0 1 ;
"""
        trips_text = """
<NUMBER OF ZONES> 2
<TOTAL OD FLOW> 50.0
<END OF METADATA>
Origin 1
4 : 50.0;
"""
        net_file = tmp_path / "thru_net.tntp"
        trips_file = tmp_path / "thru_trips.tntp"
        net_file.write_text(net_text)
        trips_file.write_text(trips_text)
        network = load_tntp_instance(net_file, trips_file)
        assert network.graph.graph["first_thru_node"] == 3
        assert [path.describe() for path in network.paths] == ["1->4"]

    def test_max_od_pairs_keeps_the_largest_demands(self):
        mini = sioux_falls_network(max_od_pairs=40)
        assert mini.num_commodities == 40
        full = sioux_falls_network()
        cutoff = sorted(
            (commodity.demand for commodity in full.commodities), reverse=True
        )[39]
        kept_raw = mini.graph.graph["total_demand"]
        assert kept_raw < full.graph.graph["total_demand"]
        # All kept demands are at least the full instance's 40th largest.
        for commodity in mini.commodities:
            assert commodity.demand * kept_raw >= cutoff * full.graph.graph[
                "total_demand"
            ] * (1 - 1e-12)


class TestSiouxFallsFixture:
    def test_round_trip_structure(self):
        metadata, links = parse_tntp_network(SIOUX_FALLS_NET.read_text())
        assert len(links) == 76
        assert int(float(metadata["NUMBER OF NODES"])) == 24
        _, demands = parse_tntp_trips(SIOUX_FALLS_TRIPS.read_text())
        assert len(demands) == 528
        total = sum(demands.values())
        assert total == pytest.approx(360_400.0)
        # The trip table is symmetric.
        for (origin, destination), demand in demands.items():
            assert demands[(destination, origin)] == demand

    def test_registered_instance_shape(self):
        network = get_instance("sioux-falls")
        assert network.graph.number_of_nodes() == 24
        assert network.graph.number_of_edges() == 76
        assert network.num_commodities == 528
        assert network.num_paths == 528  # one free-flow seed path each
        assert sum(c.demand for c in network.commodities) == pytest.approx(1.0)

    def test_equilibrium_tstt_matches_reference(self):
        """Edge-flow Frank--Wolfe reaches rel. gap < 1e-4 on Sioux Falls and
        reproduces the recorded equilibrium TSTT within 0.5% (acceptance)."""
        network = sioux_falls_network()
        result = solve_edge_flow_equilibrium(network, tolerance=1e-4)
        assert result.converged
        assert result.relative_gap < 1e-4
        raw_tstt = result.tstt * network.graph.graph["total_demand"]
        assert raw_tstt == pytest.approx(SIOUX_FALLS_REFERENCE_TSTT, rel=5e-3)
        # Flow conservation: total outflow of each origin equals its demand.
        assert np.all(result.edge_flows >= -1e-12)
