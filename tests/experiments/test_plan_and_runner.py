"""Tests for experiment plans (deterministic seeds), the runner's execution
backends (batch / processes / serial must agree), result persistence and the
``repro sweep`` command-line entry point.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis import SweepCase, SweepResult, convergence_row_builder, run_sweep
from repro.batch import distance_stop
from repro.cli import build_parser, main
from repro.core import (
    replicator_policy,
    scaled_policy,
    simulate,
    simulate_agents,
    uniform_policy,
)
from repro.experiments import ExperimentPlan, case_seed, group_key, run_cases, run_plan
from repro.experiments.runner import _case_rows, _run_pool_rows, _simulate_case
from repro.instances import braess_network, pigou_network, two_link_network
from repro.wardrop import FlowVector


def pigou_plan(base_seed=0, periods=(0.1, 0.2), random_start=False):
    network = pigou_network(degree=1)
    policy = replicator_policy(network)

    def build(params, rng):
        start = FlowVector.random(network, rng) if random_start else None
        return SweepCase(
            parameters=dict(params),
            network=network,
            policy=policy,
            update_period=params["update_period"],
            horizon=1.0,
            initial_flow=start,
            steps_per_phase=5,
        )

    return ExperimentPlan.from_axes(
        "pigou-T", build, base_seed=base_seed, update_period=list(periods)
    )


class TestPlan:
    def test_from_axes_builds_cartesian_cases(self):
        plan = pigou_plan(periods=(0.1, 0.2, 0.4))
        assert len(plan) == 3
        assert [case.parameters["update_period"] for case in plan.cases] == [0.1, 0.2, 0.4]
        assert len(plan.seeds) == 3

    def test_seeds_are_deterministic_and_distinct(self):
        first = pigou_plan(base_seed=7)
        second = pigou_plan(base_seed=7)
        assert first.seeds == second.seeds
        assert len(set(first.seeds)) == len(first.seeds)
        assert pigou_plan(base_seed=8).seeds != first.seeds

    def test_case_seed_depends_on_parameters(self):
        assert case_seed(0, 0, {"T": 0.1}) != case_seed(0, 0, {"T": 0.2})
        assert case_seed(0, 0, {"T": 0.1}) == case_seed(0, 0, {"T": 0.1})

    def test_random_starts_reproducible(self):
        first = pigou_plan(random_start=True)
        second = pigou_plan(random_start=True)
        for a, b in zip(first.cases, second.cases):
            np.testing.assert_array_equal(a.initial_flow.values(), b.initial_flow.values())

    def test_subset_preserves_seeds(self):
        plan = pigou_plan(periods=(0.1, 0.2, 0.4))
        subset = plan.subset([2, 0])
        assert subset.seeds == [plan.seeds[2], plan.seeds[0]]
        assert len(subset) == 2


def mixed_cases():
    """Two networks and policies: one batchable pair plus two singletons."""
    pig = pigou_network(degree=1)
    bra = braess_network()
    pig_policy = replicator_policy(pig)
    bra_policy = uniform_policy(bra)
    return [
        SweepCase({"case": 0}, pig, pig_policy, 0.1, 1.0, steps_per_phase=5),
        SweepCase({"case": 1}, pig, pig_policy, 0.2, 1.0, steps_per_phase=5),
        SweepCase({"case": 2}, bra, bra_policy, 0.1, 1.0, steps_per_phase=5),
        SweepCase({"case": 3}, bra, bra_policy, 0.15, 1.0, steps_per_phase=5, stale=False),
    ]


class TestRunner:
    def test_group_key_batches_compatible_cases(self):
        cases = mixed_cases()
        assert group_key(cases[0]) == group_key(cases[1])
        assert group_key(cases[0]) != group_key(cases[2])
        # Same network/policy but fresh info must not batch with stale.
        assert group_key(cases[2]) != group_key(cases[3])

    @pytest.mark.parametrize("engine", ["auto", "batch", "serial", "processes"])
    def test_engines_agree(self, engine):
        rows = run_cases(
            mixed_cases(), convergence_row_builder(0.2, 0.1), engine=engine, processes=2
        ).rows
        reference = run_cases(
            mixed_cases(), convergence_row_builder(0.2, 0.1), engine="serial"
        ).rows
        assert rows == reference

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_cases(mixed_cases(), convergence_row_builder(0.2, 0.1), engine="gpu")

    def test_accepts_one_shot_case_iterator(self):
        cases = mixed_cases()
        result = run_cases(iter(cases), convergence_row_builder(0.2, 0.1), engine="serial")
        assert len(result) == len(cases)

    def test_multi_row_builder_expands_rows(self):
        def rows_per_delta(trajectory):
            return [{"delta": delta, "phases": len(trajectory.phases)} for delta in (0.1, 0.2)]

        result = run_cases(mixed_cases()[:2], rows_per_delta, engine="batch")
        assert len(result) == 4
        assert result.column("delta") == [0.1, 0.2, 0.1, 0.2]
        assert result.rows[0]["case"] == 0 and result.rows[2]["case"] == 1

    def test_same_topology_different_networks_fuse_into_family_batch(self):
        """Pigou variants with different coefficients share one batch group."""
        networks = [pigou_network(degree=d, constant=c) for d, c in [(1, 1.0), (2, 0.8), (1, 1.3)]]
        cases = [
            SweepCase(
                {"case": i}, network, replicator_policy(network), 0.1 + 0.05 * i, 1.0,
                steps_per_phase=5,
            )
            for i, network in enumerate(networks)
        ]
        assert len({group_key(case) for case in cases}) == 1
        batched = run_cases(cases, convergence_row_builder(0.2, 0.1), engine="batch").rows
        serial = run_cases(cases, convergence_row_builder(0.2, 0.1), engine="serial").rows
        assert batched == serial

    def test_family_rows_use_member_networks(self):
        """Row builders must see each case's own network on the family path."""
        networks = [pigou_network(degree=1, constant=c) for c in (0.7, 1.2)]
        cases = [
            SweepCase({"case": i}, network, scaled_policy(1.0), 0.2, 0.6, steps_per_phase=4)
            for i, network in enumerate(networks)
        ]
        result = run_cases(
            cases, lambda t: {"network_id": id(t.network)}, engine="batch"
        )
        assert result.column("network_id") == [id(n) for n in networks]

    def test_batch_rejects_initial_flow_from_foreign_network(self):
        """The engine's per-row network validation must survive batching."""
        networks = [pigou_network(degree=1, constant=c) for c in (0.7, 1.2)]
        foreign = FlowVector.uniform(pigou_network(degree=1, constant=0.9))
        cases = [
            SweepCase(
                {"case": i}, network, scaled_policy(1.0), 0.2, 0.6,
                initial_flow=foreign if i == 0 else None, steps_per_phase=4,
            )
            for i, network in enumerate(networks)
        ]
        with pytest.raises(ValueError, match="different network"):
            run_cases(cases, lambda t: {}, engine="batch")

    def test_method_field_threads_through_sweep(self):
        """SweepCase.method must reach the integrator (satellite regression)."""
        network = pigou_network(degree=1)
        policy = scaled_policy(1.0)
        start = FlowVector(network, [0.9, 0.1])
        builder = lambda t: {"final": t.final_flow.values().tolist()}
        euler_case = SweepCase(
            {}, network, policy, 0.25, 0.5, initial_flow=start,
            steps_per_phase=2, method="euler",
        )
        rk4_case = SweepCase(
            {}, network, policy, 0.25, 0.5, initial_flow=start,
            steps_per_phase=2, method="rk4",
        )
        euler_row = run_cases([euler_case], builder, engine="serial").rows[0]
        rk4_row = run_cases([rk4_case], builder, engine="serial").rows[0]
        assert euler_row["final"] != rk4_row["final"]
        expected = simulate(
            network, policy, update_period=0.25, horizon=0.5, initial_flow=start,
            steps_per_phase=2, method="euler",
        )
        assert euler_row["final"] == expected.final_flow.values().tolist()


def stop_when_plan():
    """A two-link beta family sweep with a per-case distance stop condition."""
    networks = [two_link_network(beta=beta) for beta in (3.0, 5.0)]
    policy = scaled_policy(0.5)
    cases = [
        SweepCase(
            {"case": i},
            network,
            policy,
            0.1,
            30.0,
            initial_flow=FlowVector(network, [0.9, 0.1]),
            steps_per_phase=5,
            stop_when=distance_stop(np.array([[0.5, 0.5]]), tolerance=1e-3),
        )
        for i, network in enumerate(networks)
    ]
    return ExperimentPlan(name="stop-when", cases=cases)


class TestStopWhenThreading:
    """SweepCase.stop_when must work end to end from a plan (ROADMAP item)."""

    def builder(self, trajectory):
        return {
            "phases": len(trajectory.phases),
            "final": trajectory.final_flow.values().tolist(),
        }

    def test_run_plan_stop_phases_match_direct_simulator_runs(self):
        plan = stop_when_plan()
        batched = run_plan(plan, self.builder, engine="batch").rows
        serial = run_plan(plan, self.builder, engine="serial").rows
        assert batched == serial
        for case, row in zip(plan.cases, batched):
            direct = simulate(
                case.network,
                case.policy,
                update_period=case.update_period,
                horizon=case.horizon,
                initial_flow=case.initial_flow,
                steps_per_phase=case.steps_per_phase,
                stop_when=case.stop_when.scalar(0),
            )
            assert row["phases"] == len(direct.phases)
            assert row["final"] == direct.final_flow.values().tolist()
            # The condition genuinely stopped the run early.
            assert len(direct.phases) < case.horizon / case.update_period

    def test_processes_engine_runs_stop_cases_serially(self):
        plan = stop_when_plan()
        pooled = run_plan(plan, self.builder, engine="processes", processes=2).rows
        serial = run_plan(plan, self.builder, engine="serial").rows
        assert pooled == serial

    def test_family_group_with_per_member_conditions(self):
        """Per-case conditions authored for each case's own network stop at
        per-member phases inside a fused different-coefficient family batch
        and agree with the serial backend (the documented row-0 contract)."""
        from repro.batch import equilibrium_gap_stop

        betas = (3.0, 8.0)
        networks = [two_link_network(beta=beta) for beta in betas]
        policy = scaled_policy(0.5)
        cases = [
            SweepCase(
                {"beta": beta}, network, policy, 0.1, 30.0,
                initial_flow=FlowVector(network, [0.9, 0.1]), steps_per_phase=5,
                stop_when=equilibrium_gap_stop(network, delta=0.05),
            )
            for beta, network in zip(betas, networks)
        ]
        assert len({group_key(case) for case in cases}) == 1
        batched = run_cases(cases, self.builder, engine="batch").rows
        serial = run_cases(cases, self.builder, engine="serial").rows
        assert batched == serial
        # Both members stop early, at genuinely different per-member phases
        # (the steeper instance drives larger migration probabilities, so it
        # closes the same latency gap in fewer phases).
        assert batched[1]["phases"] < batched[0]["phases"] < 300

    def test_mixed_group_stops_only_flagged_rows(self):
        network = two_link_network(beta=4.0)
        policy = scaled_policy(0.5)
        start = FlowVector(network, [0.9, 0.1])
        stop = distance_stop(np.array([[0.5, 0.5]]), tolerance=1e-3)
        cases = [
            SweepCase(
                {"case": i}, network, policy, 0.1, 20.0, initial_flow=start,
                steps_per_phase=5, stop_when=stop if i == 0 else None,
            )
            for i in range(2)
        ]
        rows = run_cases(cases, self.builder, engine="batch").rows
        assert rows[0]["phases"] < rows[1]["phases"] == 200


class TestAgentsMethod:
    """The runner's finite-population backend (method="agents")."""

    def agent_cases(self):
        network = pigou_network(degree=1)
        policy = replicator_policy(network, exploration=1e-3)
        return [
            SweepCase(
                {"case": i}, network, policy, 0.2, 2.0, method="agents",
                num_agents=60 + 30 * i, seed=100 + i,
            )
            for i in range(3)
        ]

    def builder(self, trajectory):
        return {
            "phases": len(trajectory.phases),
            "final": trajectory.final_flow.values().tolist(),
            "policy": trajectory.policy_name,
        }

    def test_agent_cases_fuse_into_one_group(self):
        cases = self.agent_cases()
        assert len({group_key(case) for case in cases}) == 1
        # Agent cases never group with fluid cases of the same network.
        fluid = SweepCase({}, cases[0].network, cases[0].policy, 0.2, 2.0)
        assert group_key(fluid) != group_key(cases[0])

    @pytest.mark.parametrize("engine", ["auto", "batch", "processes"])
    def test_engines_agree_with_serial(self, engine):
        rows = run_cases(self.agent_cases(), self.builder, engine=engine, processes=2).rows
        serial = run_cases(self.agent_cases(), self.builder, engine="serial").rows
        assert rows == serial

    def test_rows_match_direct_scalar_agent_runs(self):
        cases = self.agent_cases()
        rows = run_cases(cases, self.builder, engine="batch").rows
        for case, row in zip(cases, rows):
            direct = simulate_agents(
                case.network, case.policy, num_agents=case.num_agents,
                update_period=case.update_period, horizon=case.horizon,
                seed=case.seed,
            )
            assert row["final"] == direct.final_flow.values().tolist()
            assert row["policy"] == direct.policy_name

    def test_explicit_zero_num_agents_reaches_the_validator(self):
        case = self.agent_cases()[0]
        case.num_agents = 0
        with pytest.raises(ValueError, match="at least one agent"):
            run_cases([case], self.builder, engine="serial")
        with pytest.raises(ValueError, match="at least one agent"):
            run_cases([case, self.agent_cases()[1]], self.builder, engine="batch")

    def test_agent_cases_thread_stop_when_through_all_backends(self):
        """Agent cases with stop_when stop at the same phase on every backend."""
        stop = distance_stop(np.array([[0.5, 0.5]]), tolerance=0.2)
        serial_cases = self.agent_cases()
        serial_cases[0].stop_when = stop
        serial = run_cases(serial_cases, self.builder, engine="serial").rows
        batch_cases = self.agent_cases()
        batch_cases[0].stop_when = stop
        batch = run_cases(batch_cases, self.builder, engine="batch").rows
        assert serial == batch
        plain = run_cases(self.agent_cases(), self.builder, engine="serial").rows
        # The stopping case ended early; the untouched cases are unaffected.
        assert serial[0]["phases"] < plain[0]["phases"]
        assert serial[1:] == plain[1:]


class TestPoolRowBuilding:
    """The processes backend builds result rows inside the workers (ROADMAP
    item): only plain row dicts cross the pipe, never whole trajectories."""

    def test_case_rows_merge_parameters(self):
        case = mixed_cases()[0]
        trajectory = _simulate_case(case)
        rows = _case_rows(case, trajectory, lambda t: {"phases": len(t.phases)})
        assert rows == [{"case": 0, "phases": len(trajectory.phases)}]
        multi = _case_rows(case, trajectory, lambda t: [{"k": 1}, {"k": 2}])
        assert multi == [{"case": 0, "k": 1}, {"case": 0, "k": 2}]

    def test_pool_rows_match_serial_rows(self):
        cases = mixed_cases()
        builder = convergence_row_builder(0.2, 0.1)
        pooled = _run_pool_rows(cases, 2, builder)
        serial = [_case_rows(case, _simulate_case(case), builder) for case in cases]
        assert pooled == serial

    def test_processes_engine_supports_closure_multi_row_builders(self):
        """Closures are unpicklable; workers must inherit them via fork."""
        deltas = (0.1, 0.2)

        def rows_per_delta(trajectory):
            return [{"delta": delta, "phases": len(trajectory.phases)} for delta in deltas]

        pooled = run_cases(mixed_cases(), rows_per_delta, engine="processes", processes=2).rows
        serial = run_cases(mixed_cases(), rows_per_delta, engine="serial").rows
        assert pooled == serial
        assert len(pooled) == 2 * len(mixed_cases())


class TestPersistence:
    def test_to_csv_and_jsonl_round_trip(self, tmp_path):
        result = SweepResult()
        result.append({"T": 0.1, "bad": 3})
        result.append({"T": 0.2, "bad": 1, "extra": "x"})
        csv_path = tmp_path / "rows.csv"
        jsonl_path = tmp_path / "rows.jsonl"
        result.to_csv(csv_path)
        result.to_jsonl(jsonl_path)
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == "T,bad,extra"
        assert lines[1].startswith("0.1,3")
        parsed = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
        assert parsed == [{"T": 0.1, "bad": 3}, {"T": 0.2, "bad": 1, "extra": "x"}]

    def test_run_plan_persists_and_tags_seeds(self, tmp_path):
        plan = pigou_plan()
        csv_path = tmp_path / "plan.csv"
        jsonl_path = tmp_path / "plan.jsonl"
        result = run_plan(
            plan,
            convergence_row_builder(0.2, 0.1),
            engine="batch",
            csv_path=csv_path,
            jsonl_path=jsonl_path,
            include_seed=True,
        )
        assert csv_path.exists() and jsonl_path.exists()
        assert result.column("seed") == plan.seeds
        header = csv_path.read_text().splitlines()[0]
        assert "seed" in header.split(",")


class TestRunnerTelemetry:
    """The runner's progress-event stream and sweep-level span."""

    def collect_events(self, engine, cases=None, processes=None):
        from repro.telemetry import telemetry_session

        events = []
        with telemetry_session(
            progress=lambda name, attrs: events.append((name, dict(attrs)))
        ) as tele:
            run_cases(
                cases if cases is not None else mixed_cases(),
                convergence_row_builder(0.2, 0.1),
                engine=engine,
                processes=processes,
            )
        return events, tele

    def test_serial_engine_emits_case_started_and_finished(self):
        events, tele = self.collect_events("serial")
        names = [name for name, _ in events]
        assert names.count("case_started") == 4
        assert names.count("case_finished") == 4
        finished = next(attrs for name, attrs in events if name == "case_finished")
        assert finished["seconds"] >= 0
        assert "method" in finished and "update_period" in finished
        # Case parameters ride along on the event attributes.
        assert any(attrs.get("case") == 0 for _, attrs in events)
        assert tele.metrics.counter("runner.cases_completed").value == 4

    def test_batch_engine_reports_fusion_group_sizes(self):
        events, tele = self.collect_events("batch")
        fused = [attrs for name, attrs in events if name == "batch_fused"]
        assert sorted(group["cases"] for group in fused) == [1, 1, 2]
        assert all(group["method"] == "rk4" for group in fused)
        histogram = tele.metrics.histogram("runner.batch_group_size")
        assert histogram.count == 3
        assert histogram.maximum == 2
        # Every case still reports completion.
        assert tele.metrics.counter("runner.cases_completed").value == 4

    def test_processes_engine_records_pool_dispatch(self):
        events, tele = self.collect_events("processes", processes=2)
        dispatched = [attrs for name, attrs in events if name == "pool_dispatched"]
        assert len(dispatched) == 1
        assert dispatched[0]["cases"] == 4
        assert dispatched[0]["processes"] == 2
        assert tele.metrics.counter("runner.cases_completed").value == 4

    def test_sweep_span_wraps_the_run(self):
        _, tele = self.collect_events("serial")
        sweeps = [r for r in tele.tracer.records() if r["name"] == "sweep"]
        assert len(sweeps) == 1
        assert sweeps[0]["attrs"] == {
            "cases": 4,
            "engine": "serial",
            "instance": "-",
        }
        # Every engine_run span nests under the sweep span.
        runs = [r for r in tele.tracer.records() if r["name"] == "engine_run"]
        assert runs and all(r["parent"] == sweeps[0]["id"] for r in runs)

    def test_merge_metrics_adds_prefixed_columns_without_overwriting(self):
        result = SweepResult()
        result.append({"T": 0.1, "phases": 9, "tele_kept": "original"})
        result.merge_metrics({"runner.cases_completed": 2.0, "kept": "new"})
        row = result.rows[0]
        assert row["tele_runner.cases_completed"] == 2.0
        assert row["tele_kept"] == "original"


class TestSweepCli:
    def test_parses_sweep_options(self):
        args = build_parser().parse_args(
            ["sweep", "braess", "--policy", "uniform", "--periods", "0.1,0.2",
             "--engine", "batch", "--method", "euler"]
        )
        assert args.command == "sweep"
        assert args.periods == "0.1,0.2"
        assert args.engine == "batch"
        assert args.method == "euler"

    def test_simulate_accepts_method(self, capsys):
        code = main(
            ["simulate", "pigou-linear", "--policy", "uniform", "--period", "0.2",
             "--horizon", "2", "--method", "euler"]
        )
        assert code == 0
        assert "Trajectory" in capsys.readouterr().out

    def test_sweep_runs_and_writes_outputs(self, tmp_path, capsys):
        csv_path = tmp_path / "sweep.csv"
        jsonl_path = tmp_path / "sweep.jsonl"
        code = main(
            ["sweep", "pigou-linear", "--policy", "replicator",
             "--periods", "0.1,0.2", "--horizon", "2", "--engine", "batch",
             "--csv", str(csv_path), "--jsonl", str(jsonl_path)]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Sweep of pigou-linear" in output
        assert csv_path.exists()
        rows = [json.loads(line) for line in jsonl_path.read_text().splitlines()]
        assert len(rows) == 2
        assert {row["T"] for row in rows} == {0.1, 0.2}

    def test_sweep_end_to_end_artifacts_parse_with_cases_and_seeds(self, tmp_path, capsys):
        """`repro sweep` artifacts must round-trip and carry the expected
        case grid and deterministic seeds (satellite regression)."""
        csv_path = tmp_path / "sweep.csv"
        jsonl_path = tmp_path / "sweep.jsonl"
        periods = [0.1, 0.2]
        code = main(
            ["sweep", "pigou-linear", "--policy", "replicator",
             "--periods", "0.1,0.2", "--horizon", "1", "--engine", "batch",
             "--include-seed", "--csv", str(csv_path), "--jsonl", str(jsonl_path)]
        )
        assert code == 0
        loaded_jsonl = SweepResult.from_jsonl(jsonl_path)
        loaded_csv = SweepResult.from_csv(csv_path)
        assert len(loaded_jsonl) == len(loaded_csv) == len(periods)
        # JSONL preserves types; CSV comes back as strings of the same values.
        assert loaded_jsonl.column("T") == periods
        assert [float(value) for value in loaded_csv.column("T")] == periods
        for row in loaded_jsonl.rows:
            assert {"instance", "T", "seed", "phases", "bad_phases"} <= set(row)
            assert row["instance"] == "pigou-linear"
        # The seeds are the deterministic per-case seeds of the CLI's plan.
        grid = [{"instance": "pigou-linear", "update_period": period} for period in periods]
        expected_seeds = [case_seed(0, i, params) for i, params in enumerate(grid)]
        assert loaded_jsonl.column("seed") == expected_seeds
        assert [int(value) for value in loaded_csv.column("seed")] == expected_seeds

    def test_sweep_fuses_multiple_same_topology_instances(self, tmp_path, capsys):
        jsonl_path = tmp_path / "family.jsonl"
        code = main(
            ["sweep", "pigou-linear,pigou-quadratic", "--policy", "uniform",
             "--periods", "0.1", "--horizon", "1", "--engine", "batch",
             "--jsonl", str(jsonl_path)]
        )
        assert code == 0
        rows = SweepResult.from_jsonl(jsonl_path).rows
        assert [row["instance"] for row in rows] == ["pigou-linear", "pigou-quadratic"]
        # The family batch must agree with independent serial scalar runs.
        serial_path = tmp_path / "family-serial.jsonl"
        assert main(
            ["sweep", "pigou-linear,pigou-quadratic", "--policy", "uniform",
             "--periods", "0.1", "--horizon", "1", "--engine", "serial",
             "--jsonl", str(serial_path)]
        ) == 0
        assert rows == SweepResult.from_jsonl(serial_path).rows

    def test_sweep_rejects_bad_periods(self, capsys):
        assert main(["sweep", "braess", "--periods", "0.1,-0.2"]) == 2
        assert main(["sweep", "braess", "--periods", "abc"]) == 2
