"""Unit tests for the plain-text table renderer used by every benchmark."""

from __future__ import annotations

from repro.analysis.reporting import (
    format_value,
    print_table,
    render_comparison,
    render_table,
)


class TestFormatValue:
    def test_booleans_render_as_yes_no(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_floats_use_significant_digits(self):
        assert format_value(0.123456) == "0.1235"
        assert format_value(0.123456, precision=2) == "0.12"
        assert format_value(3.0) == "3"

    def test_large_and_small_floats_switch_to_compact_notation(self):
        assert format_value(12345.678) == "1.235e+04"
        assert format_value(0.000123456) == "0.0001235"
        assert format_value(1e-7) == "1e-07"

    def test_float_edge_cases(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(0.0) == "0"
        assert format_value(-0.0) == "0"

    def test_non_floats_fall_back_to_str(self):
        assert format_value("fluid-batch") == "fluid-batch"
        assert format_value(42) == "42"
        assert format_value(None) == "None"


class TestRenderTable:
    def test_columns_align_and_separator_matches_widths(self):
        text = render_table(
            [
                {"engine": "fluid-batch", "rate": 1234.5},
                {"engine": "agents", "rate": 7.5},
            ],
            title="throughput",
        )
        lines = text.splitlines()
        assert lines[0] == "throughput"
        header, separator, first, second = lines[1:]
        assert header.split() == ["engine", "rate"]
        assert set(separator) <= {"-", " "}
        # Every row is padded to the same width, so columns line up.
        assert len(header) == len(separator) == len(first) == len(second)
        # 4 significant digits: 1234.5 renders as "1234", aligned under "rate".
        assert first.index("1234") == header.index("rate")

    def test_missing_keys_render_as_empty_cells(self):
        text = render_table(
            [
                {"a": 1, "b": 2},
                {"a": 3},
            ]
        )
        last = text.splitlines()[-1]
        assert last.split() == ["3"]

    def test_columns_come_from_the_first_row_unless_given(self):
        rows = [{"a": 1}, {"a": 2, "b": 3}]
        assert "b" not in render_table(rows)
        assert "b" in render_table(rows, columns=["a", "b"])

    def test_empty_rows_render_placeholder(self):
        assert render_table([]) == "(no rows)"
        assert render_table([], title="t") == "t\n(no rows)"

    def test_print_table_appends_blank_line(self, capsys):
        print_table([{"x": 1}])
        out = capsys.readouterr().out
        assert out.endswith("\n\n")
        assert "x" in out


class TestRenderComparison:
    def test_reports_ratio(self):
        text = render_comparison("latency", predicted=2.0, measured=2.5)
        assert "predicted=2" in text
        assert "measured=2.5" in text
        assert "measured/predicted=1.25" in text

    def test_zero_prediction_omits_the_ratio(self):
        text = render_comparison("gap", predicted=0.0, measured=0.5)
        assert "measured/predicted" not in text

    def test_note_is_appended_in_parentheses(self):
        text = render_comparison("x", 1.0, 1.0, note="smoke run")
        assert text.endswith("(smoke run)")
