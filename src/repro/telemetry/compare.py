"""Cross-run comparison and regression detection (``repro compare A B``).

Two observability artifacts can be diffed:

* **bench-record files** (``repro-bench/1``, or run-ledger files whose
  entries carry the same fields): records are keyed by their config
  fingerprint (see :func:`repro.telemetry.ledger.config_fingerprint`), the
  best (fastest) run per key on each side is kept, and each matched key
  gets a verdict;
* **trace files** (``repro-trace/1``): spans are aggregated into per-name
  *exclusive self time* (duration minus the duration of direct children),
  and the per-name totals are diffed.

Verdicts use a noise threshold (default 15%): ``regression`` when B is
more than ``threshold`` slower than A, ``improvement`` when more than
``threshold`` faster, ``ok`` otherwise.  Entries faster than
:data:`MIN_SELF_SECONDS` on both sides are always ``ok`` -- timer
granularity dominates down there.  Unmatched keys are reported as
informational ``only-a`` / ``only-b`` rows, never as regressions, so
adding a benchmark does not fail the comparison against an old baseline.

The CI ``bench-compare`` job runs this against the committed baselines in
``benchmarks/baselines/`` and publishes the delta table (non-blocking);
``--fail-on-regression`` makes the exit code reflect the verdicts for
local gating.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from .ledger import LEDGER_SCHEMA, config_fingerprint

__all__ = [
    "NOISE_THRESHOLD",
    "MIN_SELF_SECONDS",
    "CompareError",
    "detect_kind",
    "load_comparable",
    "self_time_totals",
    "compare_traces",
    "compare_bench_records",
    "comparison_summary",
    "render_comparison_report",
]

NOISE_THRESHOLD = 0.15
MIN_SELF_SECONDS = 1e-3

Record = Dict[str, Any]
Row = Dict[str, object]


class CompareError(ValueError):
    """A comparison input could not be read or understood."""


def _load_jsonl(path: Union[str, Path]) -> List[Record]:
    records: List[Record] = []
    try:
        with open(path) as handle:
            for number, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    raise CompareError(
                        f"{path}: line {number} is not valid JSON ({error.msg})"
                    ) from error
                if isinstance(record, dict):
                    records.append(record)
    except OSError as error:
        raise CompareError(f"cannot read {path}: {error.strerror or error}") from error
    if not records:
        raise CompareError(f"{path}: no records found (empty file?)")
    return records


def detect_kind(records: Sequence[Record]) -> str:
    """Classify loaded records as ``trace`` or ``bench`` (ledger counts as
    bench -- its entries carry the same measured fields)."""
    first = records[0]
    if first.get("kind") == "meta" and str(first.get("schema", "")).startswith(
        "repro-trace/"
    ):
        return "trace"
    schemas = {record.get("schema") for record in records}
    if "repro-bench/1" in schemas or LEDGER_SCHEMA in schemas:
        return "bench"
    if any(record.get("kind") == "span" for record in records):
        return "trace"
    raise CompareError(
        "unrecognised records: expected a repro-trace/1 trace, a "
        "repro-bench/1 records file, or a repro-ledger/1 runs file"
    )


def load_comparable(path: Union[str, Path]) -> Tuple[str, List[Record]]:
    """Load a file and return ``(kind, records)`` with kind auto-detected."""
    records = _load_jsonl(path)
    return detect_kind(records), records


# Trace comparison -----------------------------------------------------------


def self_time_totals(records: Sequence[Record]) -> Dict[str, float]:
    """Aggregate exclusive self time (seconds) per span name.

    A span's self time is its duration minus its direct children's
    durations, clamped at zero (clock skew between nested perf_counter
    reads can make the children sum slightly past the parent).
    """
    spans = [r for r in records if r.get("kind") == "span"]
    child_totals: Dict[Any, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_totals[parent] = child_totals.get(parent, 0.0) + float(
                span.get("dur", 0.0)
            )
    totals: Dict[str, float] = {}
    for span in spans:
        self_time = float(span.get("dur", 0.0)) - child_totals.get(span.get("id"), 0.0)
        name = str(span.get("name", "?"))
        totals[name] = totals.get(name, 0.0) + max(self_time, 0.0)
    return totals


def _verdict(a: float, b: float, threshold: float) -> str:
    if a < MIN_SELF_SECONDS and b < MIN_SELF_SECONDS:
        return "ok"
    if a > 0 and b > a * (1.0 + threshold):
        return "regression"
    if a > 0 and b < a * (1.0 - threshold):
        return "improvement"
    return "ok"


def compare_traces(
    records_a: Sequence[Record],
    records_b: Sequence[Record],
    threshold: float = NOISE_THRESHOLD,
) -> List[Row]:
    """Diff per-span-name self-time totals of two traces."""
    totals_a = self_time_totals(records_a)
    totals_b = self_time_totals(records_b)
    rows: List[Row] = []
    for name in sorted(set(totals_a) | set(totals_b)):
        a = totals_a.get(name)
        b = totals_b.get(name)
        if a is None or b is None:
            rows.append(
                {
                    "span": name,
                    "self_a": a if a is not None else float("nan"),
                    "self_b": b if b is not None else float("nan"),
                    "delta": float("nan"),
                    "verdict": "only-a" if b is None else "only-b",
                }
            )
            continue
        delta = (b - a) / a if a > 0 else float("nan")
        rows.append(
            {
                "span": name,
                "self_a": a,
                "self_b": b,
                "delta": delta,
                "verdict": _verdict(a, b, threshold),
            }
        )
    rows.sort(key=lambda row: -(row["self_a"] if row["self_a"] == row["self_a"] else 0.0))  # type: ignore[operator]
    return rows


# Bench comparison -----------------------------------------------------------


def _bench_key(record: Mapping[str, Any]) -> str:
    fingerprint = record.get("fingerprint")
    return str(fingerprint) if fingerprint else config_fingerprint(record)


def _bench_seconds(record: Mapping[str, Any]) -> float:
    seconds = record.get("seconds", record.get("wall_seconds"))
    try:
        return float(seconds)
    except (TypeError, ValueError):
        return float("nan")


def _bench_label(record: Mapping[str, Any]) -> str:
    parts = [
        str(record[key])
        for key in ("bench", "section", "engine", "method", "instance")
        if record.get(key) not in (None, "-")
    ]
    return " / ".join(parts) if parts else _bench_key(record)


def _best_by_key(records: Sequence[Record]) -> Dict[str, Record]:
    """Best (fastest) record per fingerprint; skips non-timed records."""
    best: Dict[str, Record] = {}
    for record in records:
        seconds = _bench_seconds(record)
        if seconds != seconds:
            continue
        key = _bench_key(record)
        current = best.get(key)
        if current is None or seconds < _bench_seconds(current):
            best[key] = record
    return best


def compare_bench_records(
    records_a: Sequence[Record],
    records_b: Sequence[Record],
    threshold: float = NOISE_THRESHOLD,
) -> List[Row]:
    """Diff two bench/ledger record sets keyed by config fingerprint."""
    best_a = _best_by_key(records_a)
    best_b = _best_by_key(records_b)
    rows: List[Row] = []
    for key in sorted(set(best_a) | set(best_b)):
        a = best_a.get(key)
        b = best_b.get(key)
        label = _bench_label(a if a is not None else b)  # type: ignore[arg-type]
        if a is None or b is None:
            rows.append(
                {
                    "entry": label,
                    "fingerprint": key,
                    "seconds_a": _bench_seconds(a) if a else float("nan"),
                    "seconds_b": _bench_seconds(b) if b else float("nan"),
                    "delta": float("nan"),
                    "verdict": "only-a" if b is None else "only-b",
                }
            )
            continue
        seconds_a = _bench_seconds(a)
        seconds_b = _bench_seconds(b)
        delta = (seconds_b - seconds_a) / seconds_a if seconds_a > 0 else float("nan")
        row: Row = {
            "entry": label,
            "fingerprint": key,
            "seconds_a": seconds_a,
            "seconds_b": seconds_b,
            "delta": delta,
            "verdict": _verdict(seconds_a, seconds_b, threshold),
        }
        gap_a, gap_b = a.get("gap"), b.get("gap")
        if gap_a is not None or gap_b is not None:
            row["gap_a"] = gap_a if gap_a is not None else float("nan")
            row["gap_b"] = gap_b if gap_b is not None else float("nan")
        rows.append(row)
    return rows


# Rendering ------------------------------------------------------------------


def comparison_summary(rows: Sequence[Row]) -> Dict[str, int]:
    """Count verdicts across comparison rows."""
    counts = {"regression": 0, "improvement": 0, "ok": 0, "only-a": 0, "only-b": 0}
    for row in rows:
        verdict = str(row.get("verdict", "ok"))
        counts[verdict] = counts.get(verdict, 0) + 1
    return counts


def render_comparison_report(
    rows: Sequence[Row],
    kind: str,
    threshold: float = NOISE_THRESHOLD,
    title: str = "comparison",
) -> str:
    """Render the comparison table plus a one-line verdict summary."""
    from ..analysis.reporting import render_table

    summary = comparison_summary(rows)
    matched = summary["regression"] + summary["improvement"] + summary["ok"]
    lines = []
    if rows:
        # Column union across rows: only solver entries carry gap columns,
        # and render_table alone would key off the first row.
        columns: List[str] = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        lines.append(
            render_table(list(rows), columns=columns, title=f"{title} ({kind})")
        )
    else:
        lines.append(f"{title} ({kind})\n(nothing to compare)")
    verdict_bits = [
        f"{summary['regression']} regression(s)",
        f"{summary['improvement']} improvement(s)",
        f"{matched} matched entries at {threshold:.0%} noise threshold",
    ]
    unmatched = summary["only-a"] + summary["only-b"]
    if unmatched:
        verdict_bits.append(f"{unmatched} unmatched (informational)")
    lines.append("summary: " + ", ".join(verdict_bits))
    return "\n\n".join(lines)
