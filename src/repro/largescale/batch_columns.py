"""Batched column generation: B same-topology replicas, one shared oracle.

The scalar driver in :mod:`repro.largescale.columns` grows its restricted
path set mid-run, which is why the experiment runner historically marked
column-generation cases ``serial_only`` -- a ``(B, P)`` ensemble cannot be
stacked when ``P`` changes under it.  This module fixes that structurally:
path-flow state is padded to a capacity and *grown in place*.  One shared
:class:`~repro.largescale.columns.ActivePathSet` (and therefore one shared
:class:`~repro.largescale.shortest.ShortestPathOracle`) serves all ``B``
rows; at a bulletin refresh every refreshing row queries the oracle against
its own posted snapshot (priced in its own scenario's effective network via
the PR-5 :class:`~repro.scenarios.scenario.ScenarioEnsemble` stacks), and
the restricted set grows by the **union** of the per-row discoveries.  A new
column enters with zero flow on every row -- including the rows that did not
discover it -- and growth counts as a shared information event: the bulletin
board re-posts every row the moment the set grows, so no row integrates over
columns its snapshot has never priced.

Row semantics:

* **Closed mode** (``active.closed``): the set never grows, and every row is
  **bit-identical** to the scalar :func:`simulate_with_column_generation`
  run of the same configuration -- the per-phase field assembly, stepper
  arithmetic and boundary projection reuse exactly the batched kernels whose
  per-row scalar equivalence the batch engine's property suite pins down.
* **Open mode**: rows share the union restricted set, which is a deliberate
  departure from per-row scalar runs (a scalar row only ever sees its own
  discoveries).  Column generation is documented as a heuristic away from
  equilibrium, and sharing discoveries only ever *adds* zero-flow options; a
  single-row batch (``B=1``) has nothing to union and reproduces the scalar
  driver exactly.

Scenario closures evict per row: a row whose scenario closes an edge moves
the flow of its crossing columns onto its best open column, exactly like the
scalar driver, while other rows keep routing over those columns.  At the end
of the run every row receives the oracle's relative-duality-gap certificate
(the same one Frank--Wolfe uses), so a batched run documents per row how far
from Wardrop equilibrium it settled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..batch.board import BatchBulletinBoard
from ..core.dynamics import (
    batch_stepper_for,
    integration_step_for,
    num_integration_steps,
)
from ..core.policy import ReroutingPolicy
from ..core.trajectory import PhaseRecord, Trajectory
from ..telemetry.runtime import get_telemetry
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from ..wardrop.paths import Path
from .columns import (
    ActivePathSet,
    PolicyOrBuilder,
    _evict_closed_columns,
    _resolve_policy,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..scenarios.scenario import Scenario

__all__ = [
    "BatchColumnGenerationResult",
    "simulate_with_column_generation_batch",
]


def _grow_buffer(
    buffer: np.ndarray, perm: np.ndarray, old_width: int, new_width: int
) -> np.ndarray:
    """Move the old columns of a padded buffer to their post-growth indices.

    While the capacity suffices the buffer grows *in place* (old columns are
    scattered through ``perm``, everything else zeroed); only when the new
    width exceeds the capacity is a doubled buffer allocated.
    """
    capacity = buffer.shape[-1]
    if new_width <= capacity:
        old = buffer[..., :old_width].copy()
        buffer[...] = 0.0
        buffer[..., perm] = old
        return buffer
    grown = np.zeros(buffer.shape[:-1] + (max(new_width, 2 * capacity),))
    grown[..., perm] = buffer[..., :old_width]
    return grown


@dataclass
class BatchColumnGenerationResult:
    """The outcome of one batched column-generation run.

    All per-sample arrays are expressed on the **final** restricted network
    (``flows`` has shape ``(B, S, P_final)``); earlier samples carry zero
    flow on later-discovered columns, exactly like the scalar result's
    embedded trajectory.  ``duality_gaps`` holds the per-row relative
    duality gap of the final flows in each row's final effective network --
    the oracle certificate that the row settled (close) to a Wardrop
    equilibrium of the *full* network.
    """

    network: WardropNetwork
    active: ActivePathSet
    times: np.ndarray
    flows: np.ndarray
    phase_start_flows: np.ndarray
    phase_spans: List[Tuple[float, float]]
    update_period: float
    stale: bool
    policy_labels: List[str]
    duality_gaps: np.ndarray
    growth_events: List[Tuple[int, List[Path]]] = field(default_factory=list)
    path_counts: List[int] = field(default_factory=list)
    # Scenario closures: (phase_index, row, flow volume moved off closed columns).
    eviction_events: List[Tuple[int, int, float]] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return self.flows.shape[0]

    @property
    def total_columns_added(self) -> int:
        return sum(len(paths) for _, paths in self.growth_events)

    def flow_matrix(self, row: int) -> np.ndarray:
        """Return row ``row``'s sampled flows as a ``(S, P_final)`` array."""
        return self.flows[row]

    def final_flows(self) -> np.ndarray:
        """Return the ``(B, P_final)`` final states of all rows."""
        return self.flows[:, -1, :]

    def trajectory(self, row: int) -> Trajectory:
        """Materialise row ``row`` as a scalar :class:`Trajectory`."""
        trajectory = Trajectory(
            network=self.network,
            policy_name=self.policy_labels[row] + " +column-generation(batch)",
            update_period=self.update_period if self.stale else 0.0,
        )
        for index, time in enumerate(self.times):
            trajectory.record(
                float(time),
                FlowVector(self.network, self.flows[row, index], validate=False),
                max(index - 1, 0),
            )
        for phase, (start_time, end_time) in enumerate(self.phase_spans):
            trajectory.record_phase(
                PhaseRecord(
                    index=phase,
                    start_time=start_time,
                    end_time=end_time,
                    start_flow=FlowVector(
                        self.network, self.phase_start_flows[row, phase], validate=False
                    ),
                    end_flow=FlowVector(
                        self.network, self.flows[row, phase + 1], validate=False
                    ),
                )
            )
        return trajectory


def _normalise_initial_flows(
    network: WardropNetwork, batch: int, initial_flows
) -> np.ndarray:
    """Return the validated ``(B, P)`` start states (uniform by default)."""
    if initial_flows is None:
        return np.tile(FlowVector.uniform(network).values(), (batch, 1))
    if isinstance(initial_flows, FlowVector):
        if initial_flows.network is not network:
            raise ValueError("initial flow belongs to a different network")
        return np.tile(initial_flows.values(), (batch, 1))
    if isinstance(initial_flows, np.ndarray):
        flows = np.asarray(initial_flows, dtype=float)
        if flows.shape != (batch, network.num_paths):
            raise ValueError(
                f"initial flow array has shape {flows.shape}, "
                f"expected {(batch, network.num_paths)}"
            )
        return flows.copy()
    vectors = list(initial_flows)
    if len(vectors) != batch:
        raise ValueError(f"got {len(vectors)} initial flows for a batch of {batch}")
    for vector in vectors:
        if vector.network is not network:
            raise ValueError("initial flow belongs to a different network")
    return np.stack([vector.values() for vector in vectors])


class _PostedCostCache:
    """Full-graph posted cost vectors, assembled with one Python scan per
    distinct effective environment instead of one per row per refresh.

    The on-path positions of a cost vector are the row's (vectorised) posted
    edge latencies; the off-path positions carry the environment's zero-flow
    latencies, which depend only on the effective member -- scenarios are
    piecewise constant, so a whole run touches a handful of distinct members.
    """

    def __init__(self, oracle):
        self.oracle = oracle
        self._off_path: Dict[Tuple[int, object], np.ndarray] = {}

    def base_costs(
        self,
        network: WardropNetwork,
        member: WardropNetwork,
        modulation,
        positions: np.ndarray,
    ) -> np.ndarray:
        key = (id(network), modulation)
        base = self._off_path.get(key)
        if base is None:
            base = np.zeros(self.oracle.num_edges)
            off_path = np.ones(self.oracle.num_edges, dtype=bool)
            off_path[positions] = False
            for index in np.flatnonzero(off_path):
                base[index] = member.latency_function(
                    self.oracle.edges[index]
                ).value(0.0)
            self._off_path[key] = base
        return base


def simulate_with_column_generation_batch(
    active: ActivePathSet,
    policies: Union[PolicyOrBuilder, Sequence[PolicyOrBuilder]],
    update_period: float,
    horizon: float,
    batch: Optional[int] = None,
    scenarios: Optional[Sequence[Optional["Scenario"]]] = None,
    initial_flows=None,
    stale: bool = True,
    steps_per_phase: int = 50,
    method: str = "rk4",
    capacity: Optional[int] = None,
) -> BatchColumnGenerationResult:
    """Run ``B`` column-generation replicas as one padded ``(B, P)`` ensemble.

    The rows share topology, update period, horizon and integration settings
    (that is what makes them batchable); ``scenarios`` and ``policies`` may
    vary per row.  The batch size is taken from ``scenarios`` or a
    ``policies`` sequence, or passed explicitly as ``batch``.  ``capacity``
    pre-pads the path dimension (default twice the seed width) so early
    growth events scatter in place instead of reallocating.

    See the module docstring for the union-growth semantics; closed-mode
    rows are bit-identical to :func:`simulate_with_column_generation`.
    """
    if update_period <= 0 or horizon <= 0:
        raise ValueError("update period and horizon must be positive")
    if steps_per_phase <= 0:
        raise ValueError("steps_per_phase must be positive")

    if scenarios is not None:
        scenarios = list(scenarios)
    if isinstance(policies, (list, tuple)):
        policy_specs: List[PolicyOrBuilder] = list(policies)
    else:
        policy_specs = []
    sizes = {len(seq) for seq in (scenarios, policy_specs) if seq}
    if batch is not None:
        sizes.add(int(batch))
    if len(sizes) > 1:
        raise ValueError(f"inconsistent batch sizes: {sorted(sizes)}")
    if not sizes:
        raise ValueError(
            "pass `batch`, a scenarios list or a policies list to fix the batch size"
        )
    size = sizes.pop()
    if size <= 0:
        raise ValueError("batch size must be positive")
    if not policy_specs:
        policy_specs = [policies] * size
    if scenarios is not None and all(s is None for s in scenarios):
        scenarios = None

    network = active.network
    oracle = active.oracle
    width = network.num_paths
    pad = max(width, capacity if capacity is not None else 2 * width)
    stepper = batch_stepper_for(method)
    step = integration_step_for(update_period, steps_per_phase)
    num_phases = int(np.ceil(horizon / update_period))
    periods = np.full(size, update_period)

    def resolve_policies(net: WardropNetwork):
        resolved = [_resolve_policy(spec, net) for spec in policy_specs]
        shared = resolved[0]
        if any(p is not shared for p in resolved[1:]):
            shared = None
        return resolved, shared

    def build_environment(net: WardropNetwork):
        if scenarios is None:
            return None
        from ..scenarios.scenario import ScenarioEnsemble

        return ScenarioEnsemble(net, scenarios)

    resolved, shared = resolve_policies(network)
    ensemble = build_environment(network)
    board = BatchBulletinBoard(network, periods)
    positions = oracle.network_edge_positions(network)
    cost_cache = _PostedCostCache(oracle)

    state = np.zeros((size, pad))
    state[:, :width] = _normalise_initial_flows(network, size, initial_flows)
    recorded = np.zeros((num_phases + 1, size, pad))
    recorded[0] = state
    start_flows = np.zeros((num_phases, size, pad))
    times = np.zeros(num_phases + 1)
    phase_spans: List[Tuple[float, float]] = []
    growth_events: List[Tuple[int, List[Path]]] = []
    path_counts: List[int] = []
    eviction_events: List[Tuple[int, int, float]] = []
    posted_modulations: List[object] = [None] * size
    previously_closed: List[frozenset] = [frozenset()] * size

    tele = get_telemetry()
    run_span = tele.span(
        "engine_run",
        engine="column-generation-batch",
        instance=network.graph.graph.get("name") or "-",
        stale=stale,
        method=method,
        batch=size,
        initial_paths=width,
    )
    added_counter = tele.counter("cg_batch.columns_added")
    invalidated_counter = tele.counter("cg_batch.columns_invalidated")
    refresh_counter = tele.counter("cg_batch.bulletin_refreshes")
    phases_counter = tele.counter("cg_batch.phases_integrated")

    def member_at(row: int, t: float) -> WardropNetwork:
        scenario = scenarios[row] if scenarios is not None else None
        return network if scenario is None else scenario.network_at(network, t)

    completed = 0
    for phase in range(num_phases):
        phase_start = phase * update_period
        phase_end = min((phase + 1) * update_period, horizon)
        row_times = np.full(size, phase_start)

        family = None
        if ensemble is not None:
            family = ensemble.family_at(row_times)
            board.set_networks(family)
        if scenarios is not None:
            modulations = [
                s.modulation_at(phase_start) if s is not None else None
                for s in scenarios
            ]
            closed_now = [
                s.closed_edges(phase_start) if s is not None else frozenset()
                for s in scenarios
            ]
        else:
            modulations = [None] * size
            closed_now = [frozenset()] * size

        if stale:
            # The per-row refresh rule of the scalar driver: the board's own
            # floor(t/T) schedule (including its floating-point quirk, for
            # closed-mode bit-identity) plus modulation-change forcing.
            refresh = board.needs_update(row_times)
            refresh = refresh | np.array(
                [modulations[b] != posted_modulations[b] for b in range(size)]
            )
        else:
            refresh = np.ones(size, dtype=bool)

        phase_span = tele.span("phase", index=phase, start=phase_start)
        if refresh.any():
            cg_span = tele.span(
                "column_generation_round", phase=phase, rows=int(refresh.sum())
            )
            refresh_counter.add(int(refresh.sum()))
            added: List[Path] = []
            if not active.closed:
                rows = np.flatnonzero(refresh)
                edge_flows = network.edge_flows_batch(state[rows, :width])
                if family is not None:
                    edge_latencies = family.edge_latencies_batch(edge_flows, rows)
                else:
                    edge_latencies = network.edge_latencies_batch(edge_flows)
                candidates: List[Path] = []
                for i, row in enumerate(rows):
                    base = cost_cache.base_costs(
                        network,
                        member_at(int(row), phase_start),
                        modulations[int(row)],
                        positions,
                    )
                    costs = base.copy()
                    costs[positions] = edge_latencies[i]
                    candidates.extend(oracle.shortest_commodity_paths(costs))
                added = active.add_paths(candidates)
            if added:
                growth_events.append((phase, added))
                added_counter.add(len(added))
                perm = active.last_permutation
                old_width = width
                network = active.network
                width = network.num_paths
                state = _grow_buffer(state, perm, old_width, width)
                recorded = _grow_buffer(recorded, perm, old_width, width)
                start_flows = _grow_buffer(start_flows, perm, old_width, width)
                # Growth is a shared information event: the board re-posts
                # every row on the grown set, so no row integrates over
                # columns its snapshot has never priced.
                refresh = np.ones(size, dtype=bool)
                board = BatchBulletinBoard(network, periods)
                positions = oracle.network_edge_positions(network)
                cost_cache = _PostedCostCache(oracle)
                resolved, shared = resolve_policies(network)
                ensemble = build_environment(network)
                family = None
                if ensemble is not None:
                    family = ensemble.family_at(row_times)
                    board.set_networks(family)
                tele.event(
                    "columns_grown", phase=phase, added=len(added), paths=width
                )
            for row in range(size):
                if not refresh[row]:
                    continue
                newly_closed = closed_now[row] - previously_closed[row]
                if not newly_closed:
                    continue
                crossing = active.invalidate_columns(network, closed_now[row])
                invalidated_counter.add(len(crossing))
                values = state[row, :width]
                repaired, moved = _evict_closed_columns(
                    network,
                    values,
                    crossing,
                    member_at(row, phase_start).path_latencies(values),
                )
                state[row, :width] = repaired
                if moved > 0.0:
                    eviction_events.append((phase, row, moved))
                    tele.event(
                        "columns_evicted", phase=phase, row=row, volume=moved
                    )
                    tele.histogram("cg_batch.evicted_volume").observe(moved)
            board.post_rows(row_times, state[:, :width], mask=refresh)
            for row in np.flatnonzero(refresh):
                posted_modulations[int(row)] = modulations[int(row)]
            cg_span.annotate(columns_added=len(added), paths=width)
            cg_span.close()
        previously_closed = closed_now
        path_counts.append(width)

        start_flows[phase] = state
        if stale:
            with tele.span("field_eval", rows=size):
                if shared is not None:
                    sigma = shared.sampling.probabilities_batch(
                        network,
                        board.posted_flows,
                        board.posted_path_latencies,
                    )
                    mu = shared.migration.matrix_batch(board.posted_path_latencies)
                else:
                    sigma = np.stack(
                        [
                            resolved[row].sampling.probabilities(
                                network,
                                board.posted_flows[row],
                                board.posted_path_latencies[row],
                            )
                            for row in range(size)
                        ]
                    )
                    mu = np.stack(
                        [
                            resolved[row].migration.matrix(
                                board.posted_path_latencies[row]
                            )
                            for row in range(size)
                        ]
                    )
            # Same folded form as the scalar frozen_growth_field and the
            # batch engine's _stale_rates -- closed-mode rows stay
            # bit-identical to the scalar driver.
            rates = sigma * mu
            outflow_rates = rates.sum(axis=2)

            def field_fn(_t, flows: np.ndarray) -> np.ndarray:
                inflow = np.matmul(flows[:, None, :], rates)[:, 0, :]
                return inflow - flows * outflow_rates

        else:
            network_ref = network
            family_ref = family

            def live_latencies(flows: np.ndarray) -> np.ndarray:
                if family_ref is not None:
                    return family_ref.path_latencies_batch(
                        flows, np.arange(size)
                    )
                return network_ref.path_latencies_batch(flows)

            if shared is not None:
                shared_ref = shared

                def field_fn(_t, flows: np.ndarray) -> np.ndarray:
                    return shared_ref.growth_rates_batch(
                        network_ref, flows, flows, live_latencies(flows)
                    )

            else:
                resolved_ref = resolved

                def field_fn(_t, flows: np.ndarray) -> np.ndarray:
                    live = live_latencies(flows)
                    return np.stack(
                        [
                            resolved_ref[row].growth_rates(
                                network_ref, flows[row], flows[row], live[row]
                            )
                            for row in range(size)
                        ]
                    )

        duration = phase_end - phase_start
        with tele.span("integrate", state_bytes=state[:, :width].nbytes):
            if duration > 0:
                steps = num_integration_steps(duration, step)
                step_size = duration / steps
                current = state[:, :width].copy()
                time = phase_start
                for _ in range(steps):
                    current = stepper(field_fn, time, current, step_size)
                    time += step_size
            else:
                current = state[:, :width].copy()
        state[:, :width] = FlowVector.project_batch(network, current)
        recorded[phase + 1] = state
        times[phase + 1] = phase_end
        phase_spans.append((phase_start, phase_end))
        phases_counter.add()
        phase_span.close()
        completed = phase + 1
        if phase_end >= horizon:
            break

    # The per-row duality-gap certificate: price each row's final flows in
    # its final effective environment through the shared oracle.
    from ..solvers.edge_frank_wolfe import relative_duality_gap

    final_time = float(times[completed])
    gaps = np.empty(size)
    for row in range(size):
        full_flows = oracle.expand_edge_values(
            network, network.edge_flows(state[row, :width])
        )
        gaps[row] = relative_duality_gap(
            member_at(row, final_time), oracle, full_flows
        )
        tele.histogram("cg_batch.duality_gap").observe(float(gaps[row]))

    run_span.annotate(
        final_paths=width,
        columns_added=sum(len(paths) for _, paths in growth_events),
        max_duality_gap=float(gaps.max()),
    )
    run_span.close()
    tele.counter("cg_batch.runs").add()

    samples = completed + 1
    return BatchColumnGenerationResult(
        network=network,
        active=active,
        times=times[:samples].copy(),
        flows=np.transpose(recorded[:samples, :, :width], (1, 0, 2)).copy(),
        phase_start_flows=np.transpose(
            start_flows[:completed, :, :width], (1, 0, 2)
        ).copy(),
        phase_spans=phase_spans,
        update_period=update_period,
        stale=stale,
        policy_labels=[policy.label() for policy in resolved],
        duality_gaps=gaps,
        growth_events=growth_events,
        path_counts=path_counts,
        eviction_events=eviction_events,
    )
