"""Convergence comparison: uniform vs proportional sampling (Theorems 6 and 7).

The paper gives two concrete smooth policies and bounds their convergence
time to approximate equilibria.  This example runs both on a family of
parallel-link networks of growing size and prints, per instance,

* the number of update periods not starting at a (delta, eps)-equilibrium,
* the corresponding theorem bound, and
* the wall-clock-free "time to equilibrium" in simulated time units,

showing the qualitative difference the paper predicts: the uniform-sampling
count grows with the number of paths, the replicator's does not.

Run with::

    python examples/convergence_comparison.py
"""

from __future__ import annotations

from repro.analysis import count_bad_phases, print_table, time_to_approximate_equilibrium
from repro.core import replicator_policy, simulate, uniform_policy
from repro.core.bounds import proportional_convergence_bound, uniform_convergence_bound
from repro.instances import heterogeneous_affine_links
from repro.wardrop import FlowVector

DELTA = 0.2
EPSILON = 0.1
LINK_COUNTS = [2, 4, 8, 16]


def populated_start(network) -> FlowVector:
    """Most of the demand on one link, a sliver everywhere else."""
    values = [0.05 / (network.num_paths - 1)] * network.num_paths
    values[0] = 0.95
    return FlowVector(network, values)


def run(network, policy, horizon=120.0):
    period = min(policy.safe_update_period(network), 1.0)
    trajectory = simulate(
        network,
        policy,
        update_period=period,
        horizon=horizon,
        initial_flow=populated_start(network),
        steps_per_phase=15,
    )
    return trajectory, period


def main() -> None:
    rows = []
    for num_links in LINK_COUNTS:
        network = heterogeneous_affine_links(num_links, seed=11)
        for name, make_policy in [
            ("uniform", uniform_policy),
            ("replicator", lambda n: replicator_policy(n, exploration=1e-3)),
        ]:
            policy = make_policy(network)
            trajectory, period = run(network, policy)
            summary = count_bad_phases(trajectory, DELTA, EPSILON)
            if name == "uniform":
                bound = uniform_convergence_bound(network, period, DELTA, EPSILON)
                bad = summary.bad_phases
            else:
                bound = proportional_convergence_bound(network, period, DELTA, EPSILON)
                bad = summary.weak_bad_phases
            rows.append(
                {
                    "links": num_links,
                    "policy": name,
                    "T": period,
                    "bad_phases": bad,
                    "theorem_bound": bound,
                    "time_to_eq": time_to_approximate_equilibrium(
                        trajectory, DELTA, EPSILON, weak=(name == "replicator")
                    ),
                }
            )
    print_table(
        rows,
        title=(
            f"Update periods outside a (delta={DELTA}, eps={EPSILON})-equilibrium "
            "vs the Theorem 6/7 bounds"
        ),
    )
    print(
        "Reading the table: the measured counts stay well below the bounds; the\n"
        "uniform policy's count grows as links are added while the replicator's\n"
        "stays flat -- the |P| factor that separates Theorem 6 from Theorem 7."
    )


if __name__ == "__main__":
    main()
