"""Network-level equilibrium reports: per-link, per-OD and system summaries.

The quetzal-style ``analysis_summary`` face of a solved assignment: instead
of per-engine timings, this module answers "what does the equilibrium
*look like* on this network?" --

* **per-link**: raw volume, volume/capacity ratio, congested latency vs
  free flow, sorted most-congested first;
* **per-OD**: raw demand, shortest-path cost under congested latencies,
  average experienced latency and active-path count (when a path flow is
  available), sorted largest-demand first;
* **system summary**: TSTT, SPTT and the relative duality gap, in both
  the paper's normalised units and raw TNTP units (vehicle-minutes).

The entry point accepts either a path-based :class:`FlowVector` (scalar /
batched / column-generation results) or an oracle-order edge-flow vector
(the edge Frank--Wolfe solver), so every solve mode feeds one report --
that is what ``repro solve --report`` and ``repro report --network``
print.

TNTP unit recovery: instances are normalised by their raw total demand
``R`` (see :mod:`repro.instances.tntp`); volumes and travel times are
scaled back by ``R`` here, while latencies keep their raw units (minutes)
throughout.

Imports of :mod:`repro.largescale` are deferred inside functions:
``repro.telemetry.bench`` imports ``analysis.reporting`` at module load,
so an eager import here would create a package cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["ACTIVE_PATH_THRESHOLD", "NetworkReport", "network_report"]

# A path carrying less than this normalised flow share counts as unused.
ACTIVE_PATH_THRESHOLD = 1e-9


@dataclass
class NetworkReport:
    """The assembled report: link rows, OD rows and the system summary."""

    link_rows: List[Dict[str, object]]
    od_rows: List[Dict[str, object]]
    summary: Dict[str, Any]
    truncated_links: int = 0
    truncated_ods: int = 0
    title: str = "network report"
    _sections: List[str] = field(default_factory=list, repr=False)

    def render(self) -> str:
        """Render the three sections in the repo's table style."""
        from .reporting import format_value, render_table

        sections: List[str] = []
        summary_rows = [
            {"quantity": key, "value": value} for key, value in self.summary.items()
        ]
        sections.append(render_table(summary_rows, title=f"{self.title}: summary"))
        if self.link_rows:
            note = (
                f" (top {len(self.link_rows)} of "
                f"{len(self.link_rows) + self.truncated_links} by v/c)"
                if self.truncated_links
                else ""
            )
            sections.append(
                render_table(self.link_rows, title=f"most congested links{note}")
            )
        if self.od_rows:
            note = (
                f" (top {len(self.od_rows)} of "
                f"{len(self.od_rows) + self.truncated_ods} by demand)"
                if self.truncated_ods
                else ""
            )
            sections.append(render_table(self.od_rows, title=f"largest OD pairs{note}"))
        gap = self.summary.get("relative_gap")
        if isinstance(gap, float) and gap == gap:
            sections.append(f"relative duality gap: {format_value(gap)}")
        return "\n\n".join(sections)


def _full_edge_flows(network, oracle, flow, edge_flows) -> np.ndarray:
    """Resolve the flow input into an oracle-order edge-flow vector."""
    if (flow is None) == (edge_flows is None):
        raise ValueError("pass exactly one of flow= or edge_flows=")
    if flow is not None:
        return oracle.expand_edge_values(network, flow.edge_flows())
    values = np.asarray(edge_flows, dtype=float)
    if len(values) == oracle.num_edges:
        return values
    if len(values) == network.num_edges:
        return oracle.expand_edge_values(network, values)
    raise ValueError(
        f"edge_flows has length {len(values)}; expected {oracle.num_edges} "
        f"(oracle order) or {network.num_edges} (network order)"
    )


def network_report(
    network,
    flow=None,
    edge_flows: Optional[np.ndarray] = None,
    oracle=None,
    top_links: int = 10,
    top_ods: int = 10,
    title: Optional[str] = None,
) -> NetworkReport:
    """Build the per-link / per-OD / summary report of a solved assignment.

    Parameters
    ----------
    network:
        The :class:`~repro.wardrop.network.WardropNetwork` instance.
    flow:
        A path-based :class:`~repro.wardrop.flow.FlowVector` (scalar,
        batched-row or column-generation result).  Mutually exclusive with
        ``edge_flows``.
    edge_flows:
        An edge-flow vector in the oracle's all-graph-edges order (the edge
        Frank--Wolfe result) or the network's on-path-edges order.
    oracle:
        Optional pre-built :class:`ShortestPathOracle` to reuse; built from
        the network otherwise.
    top_links / top_ods:
        Row caps of the two tables (the full row counts stay visible via
        ``truncated_links`` / ``truncated_ods``).
    """
    from ..largescale.shortest import ShortestPathOracle
    from ..wardrop.latency import BPRLatency

    if oracle is None:
        oracle = ShortestPathOracle.for_network(network)
    full_flows = _full_edge_flows(network, oracle, flow, edge_flows)
    costs = oracle.latency_costs(network, full_flows)
    free_flow = oracle.free_flow_costs(network)
    total = float(network.graph.graph.get("total_demand", 1.0))
    name = network.graph.graph.get("name") or "-"

    # System summary ---------------------------------------------------------
    tstt = float(np.dot(costs, full_flows))
    load = oracle.all_or_nothing(costs)
    sptt = load.sptt
    relative_gap = tstt / sptt - 1.0 if sptt > 0 else float("nan")

    # Per-link rows ----------------------------------------------------------
    link_entries = []
    for i, edge in enumerate(oracle.edges):
        latency_fn = network.latency_function(edge)
        if isinstance(latency_fn, BPRLatency) and latency_fn.capacity > 0:
            vc = full_flows[i] / latency_fn.capacity
            capacity_raw = latency_fn.capacity * total
        else:
            vc = float("nan")
            capacity_raw = float("nan")
        link_entries.append(
            {
                "link": f"{edge[0]}->{edge[1]}",
                "volume": full_flows[i] * total,
                "capacity": capacity_raw,
                "v/c": vc,
                "latency": costs[i],
                "free_flow": free_flow[i],
                "delay": costs[i] / free_flow[i] if free_flow[i] > 0 else float("nan"),
            }
        )
    # Most congested first; nan v/c (non-BPR links) sorts to the back.
    link_entries.sort(
        key=lambda row: -(row["v/c"] if row["v/c"] == row["v/c"] else float("-inf"))
    )
    loaded = [row for row in link_entries if row["volume"] > 0 or row["v/c"] == row["v/c"]]
    link_rows = loaded[:top_links]

    # Per-OD rows ------------------------------------------------------------
    shortest = oracle.commodity_costs(costs)
    od_entries = []
    for i, commodity in enumerate(network.commodities):
        entry: Dict[str, object] = {
            "od": network.commodity_label(i),
            "demand": commodity.demand * total,
            "shortest_cost": float(shortest[i]),
        }
        if flow is not None:
            entry["avg_latency"] = flow.commodity_average_latency(i)
            start, stop = network.paths.commodity_slice(i)
            entry["active_paths"] = int(
                np.count_nonzero(flow.values()[start:stop] > ACTIVE_PATH_THRESHOLD)
            )
        od_entries.append(entry)
    od_entries.sort(key=lambda row: -float(row["demand"]))  # type: ignore[arg-type]
    od_rows = od_entries[:top_ods]

    summary: Dict[str, Any] = {
        "instance": name,
        "links": oracle.num_edges,
        "od_pairs": len(network.commodities),
        "total_demand": total,
        "tstt": tstt * total,
        "sptt": sptt * total,
        "tstt_normalised": tstt,
        "relative_gap": relative_gap,
    }
    return NetworkReport(
        link_rows=link_rows,
        od_rows=od_rows,
        summary=summary,
        truncated_links=max(len(loaded) - len(link_rows), 0),
        truncated_ods=max(len(od_entries) - len(od_rows), 0),
        title=title if title is not None else f"network report: {name}",
    )
