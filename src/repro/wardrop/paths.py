"""Path enumeration and path-level bookkeeping.

The dynamics of the paper operate on *path flows*: ``f_P`` is the fraction of
agents using path ``P``, and the strategy space of commodity ``i`` is the set
``P_i`` of simple ``s_i``--``t_i`` paths.  This module provides

* :class:`Path` -- an immutable sequence of edge keys with pretty printing,
* enumeration of all simple paths of a commodity on a ``networkx`` multigraph,
* :class:`PathSet` -- the indexed union ``P = union_i P_i`` used by flow
  vectors, with fast lookup from path to commodity and to array positions.

Enumeration is exponential in general; the instances used by the paper and by
the reproduction are small enough (parallel links, Braess, grids) that
explicit enumeration is the honest implementation of the model.  A
``max_paths`` guard protects against accidentally exploding instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .commodity import Commodity

EdgeKey = Tuple[Hashable, Hashable, Hashable]


@dataclass(frozen=True)
class Path:
    """A routing path represented as a tuple of multigraph edge keys.

    Each edge key is a ``(u, v, key)`` triple as used by
    ``networkx.MultiDiGraph``.  Paths are hashable so they can index
    dictionaries and flow vectors.
    """

    edges: Tuple[EdgeKey, ...]
    commodity_index: int

    def __post_init__(self) -> None:
        if not self.edges:
            raise ValueError("a path must contain at least one edge")
        for (u, v, _), (u2, _v2, _) in zip(self.edges, self.edges[1:]):
            if v != u2:
                raise ValueError(f"path edges are not contiguous: {self.edges}")

    def __len__(self) -> int:
        return len(self.edges)

    def __iter__(self) -> Iterator[EdgeKey]:
        return iter(self.edges)

    @property
    def source(self) -> Hashable:
        return self.edges[0][0]

    @property
    def sink(self) -> Hashable:
        return self.edges[-1][1]

    @property
    def nodes(self) -> Tuple[Hashable, ...]:
        """Return the node sequence visited by the path."""
        return (self.edges[0][0],) + tuple(edge[1] for edge in self.edges)

    def describe(self) -> str:
        """Return a compact human-readable description like ``s->a->t``."""
        return "->".join(str(node) for node in self.nodes)

    def __repr__(self) -> str:
        return f"Path({self.describe()}, commodity={self.commodity_index})"


def enumerate_commodity_paths(
    graph: nx.MultiDiGraph,
    commodity: Commodity,
    commodity_index: int,
    max_paths: int = 10_000,
) -> List[Path]:
    """Enumerate all simple source--sink paths of a commodity.

    Parallel edges are treated as distinct paths (as the paper's multigraph
    model requires: the two-link oscillation instance has two parallel edges
    between the same node pair).

    Raises ``ValueError`` if the commodity has no path at all or if the number
    of paths exceeds ``max_paths``.
    """
    paths: List[Path] = []
    if commodity.source not in graph or commodity.sink not in graph:
        raise ValueError(
            f"commodity endpoints {commodity.source!r}->{commodity.sink!r} missing from graph"
        )
    # networkx yields the same node path once per parallel edge on multigraphs;
    # de-duplicate node paths first and expand parallel edges ourselves.
    node_paths = []
    seen_node_paths = set()
    for node_path in nx.all_simple_paths(graph, commodity.source, commodity.sink):
        key = tuple(node_path)
        if key not in seen_node_paths:
            seen_node_paths.add(key)
            node_paths.append(key)
    for node_path in node_paths:
        for edge_path in _edge_paths(graph, node_path):
            paths.append(Path(tuple(edge_path), commodity_index))
            if len(paths) > max_paths:
                raise ValueError(
                    f"commodity {commodity_index} has more than {max_paths} paths; "
                    "refusing to enumerate"
                )
    if not paths:
        raise ValueError(
            f"commodity {commodity_index} ({commodity.source!r}->{commodity.sink!r}) "
            "has no path in the graph"
        )
    paths.sort(key=lambda path: (len(path), path.describe(), path.edges))
    return paths


def _edge_paths(
    graph: nx.MultiDiGraph, node_path: Sequence[Hashable]
) -> Iterator[List[EdgeKey]]:
    """Expand a node path into every combination of parallel edges along it."""
    hops: List[List[EdgeKey]] = []
    for u, v in zip(node_path, node_path[1:]):
        keys = list(graph[u][v].keys())
        hops.append([(u, v, key) for key in sorted(keys, key=str)])
    yield from _product_of(hops)


def _product_of(hops: List[List[EdgeKey]]) -> Iterator[List[EdgeKey]]:
    """Yield every selection of one edge per hop (cartesian product)."""
    if not hops:
        yield []
        return
    head, *tail = hops
    for edge in head:
        for rest in _product_of(tail):
            yield [edge] + rest


class PathSet:
    """The indexed set of all paths ``P = union_i P_i`` of an instance.

    The set fixes a global ordering of the paths so that flow vectors can be
    stored as dense numpy arrays.  It also memoises the commodity partition
    and the edge membership needed to aggregate path flows to edge flows.
    """

    def __init__(self, paths_by_commodity: Sequence[Sequence[Path]]):
        self._by_commodity: List[List[Path]] = [list(paths) for paths in paths_by_commodity]
        self._all: List[Path] = [path for paths in self._by_commodity for path in paths]
        self._index: Dict[Path, int] = {path: i for i, path in enumerate(self._all)}
        if len(self._index) != len(self._all):
            raise ValueError("duplicate paths in path set")
        self._commodity_slices: List[Tuple[int, int]] = []
        start = 0
        for paths in self._by_commodity:
            self._commodity_slices.append((start, start + len(paths)))
            start += len(paths)
        self._membership: Optional[Dict[EdgeKey, np.ndarray]] = None

    # Basic container protocol -------------------------------------------

    def __len__(self) -> int:
        return len(self._all)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._all)

    def __getitem__(self, index: int) -> Path:
        return self._all[index]

    def __contains__(self, path: Path) -> bool:
        return path in self._index

    # Lookup ---------------------------------------------------------------

    def index_of(self, path: Path) -> int:
        """Return the global array index of ``path``."""
        return self._index[path]

    @property
    def num_commodities(self) -> int:
        return len(self._by_commodity)

    def commodity_paths(self, commodity_index: int) -> List[Path]:
        """Return the list of paths ``P_i`` of a commodity."""
        return self._by_commodity[commodity_index]

    def commodity_slice(self, commodity_index: int) -> Tuple[int, int]:
        """Return the ``(start, stop)`` range of a commodity in the global order."""
        return self._commodity_slices[commodity_index]

    def commodity_indices(self, commodity_index: int) -> range:
        start, stop = self._commodity_slices[commodity_index]
        return range(start, stop)

    def commodity_of(self, path_index: int) -> int:
        """Return the commodity a global path index belongs to."""
        return self._all[path_index].commodity_index

    # Derived structure ---------------------------------------------------

    def max_path_length(self) -> int:
        """Return ``D``, the maximum number of edges on any path."""
        return max(len(path) for path in self._all)

    def edges(self) -> List[EdgeKey]:
        """Return the sorted list of edges that appear on at least one path."""
        return sorted(self.edge_membership(), key=str)

    def edge_membership(self) -> Dict[EdgeKey, np.ndarray]:
        """Return the edge -> path-index membership map, built once.

        One pass over all paths yields, per edge, the sorted array of global
        indices of the paths that traverse it.  This single structure backs
        :meth:`paths_through`, :meth:`edges` and the (sparse or dense)
        edge--path incidence matrix of the network, so the membership is
        computed exactly once per path set instead of once per query.
        """
        if self._membership is None:
            collected: Dict[EdgeKey, List[int]] = {}
            for index, path in enumerate(self._all):
                for edge in set(path.edges):
                    collected.setdefault(edge, []).append(index)
            self._membership = {
                edge: np.asarray(indices, dtype=np.int64)
                for edge, indices in collected.items()
            }
        return self._membership

    # Growth ---------------------------------------------------------------

    def extended(self, added: Sequence[Path]) -> Tuple["PathSet", np.ndarray]:
        """Return ``(new_set, perm)`` with ``added`` appended per commodity.

        This is the incremental column append used by column generation:
        each new path joins the end of its commodity's block, so the global
        order stays commodity-contiguous and every old index ``i`` moves to
        ``perm[i]`` (``perm`` is strictly increasing).  The edge membership
        -- the expensive full-set scan backing the CSR incidence -- is
        carried over from this set when it has already been built: old index
        arrays are remapped through ``perm`` and only the *added* paths are
        scanned, so growing by k paths costs ``O(k * path length)`` plus the
        ``O(nnz)`` remap instead of a re-scan of the whole set.
        """
        added = list(added)
        if not added:
            return self, np.arange(len(self._all), dtype=np.int64)
        by_commodity = [list(paths) for paths in self._by_commodity]
        for path in added:
            if not 0 <= path.commodity_index < len(by_commodity):
                raise ValueError(
                    f"added path belongs to commodity {path.commodity_index}, "
                    f"set has {len(by_commodity)}"
                )
            by_commodity[path.commodity_index].append(path)
        new_set = PathSet(by_commodity)
        # Old index i of commodity c shifts by the number of paths added to
        # earlier commodities (its own commodity's additions come after it).
        added_before = np.zeros(len(by_commodity) + 1, dtype=np.int64)
        for path in added:
            added_before[path.commodity_index + 1] += 1
        np.cumsum(added_before, out=added_before)
        perm = np.empty(len(self._all), dtype=np.int64)
        for commodity, (start, stop) in enumerate(self._commodity_slices):
            perm[start:stop] = (
                np.arange(start, stop, dtype=np.int64) + added_before[commodity]
            )
        if self._membership is not None:
            membership = {
                edge: perm[indices] for edge, indices in self._membership.items()
            }
            fresh: Dict[EdgeKey, List[int]] = {}
            for path in added:
                index = new_set._index[path]
                for edge in set(path.edges):
                    fresh.setdefault(edge, []).append(index)
            for edge, indices in fresh.items():
                extra = np.asarray(sorted(indices), dtype=np.int64)
                base = membership.get(edge)
                if base is None:
                    membership[edge] = extra
                else:
                    merged = np.concatenate([base, extra])
                    merged.sort(kind="stable")
                    membership[edge] = merged
            new_set._membership = membership
        return new_set, perm

    def paths_through(self, edge: EdgeKey) -> List[int]:
        """Return the global indices of paths that use ``edge``."""
        indices = self.edge_membership().get(edge)
        return [] if indices is None else [int(i) for i in indices]

    def describe(self) -> List[str]:
        """Return human-readable path descriptions in global order."""
        return [path.describe() for path in self._all]


def build_path_set(
    graph: nx.MultiDiGraph,
    commodities: Iterable[Commodity],
    max_paths: int = 10_000,
) -> PathSet:
    """Enumerate the paths of every commodity and bundle them in a PathSet."""
    per_commodity = [
        enumerate_commodity_paths(graph, commodity, index, max_paths=max_paths)
        for index, commodity in enumerate(commodities)
    ]
    return PathSet(per_commodity)
