"""Unit tests for migration rules and the alpha-smoothness machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BetterResponseMigration,
    LinearMigration,
    ScaledLinearMigration,
    SmoothedBetterResponseMigration,
    check_alpha_smoothness,
    max_safe_alpha,
    migration_rule_for_period,
    safe_update_period,
    safe_update_period_for_rule,
)
from repro.instances import braess_network, two_link_network


class TestBetterResponse:
    def test_switches_iff_strictly_better(self):
        rule = BetterResponseMigration()
        assert rule.probability(1.0, 0.5) == 1.0
        assert rule.probability(0.5, 0.5) == 0.0
        assert rule.probability(0.5, 1.0) == 0.0

    def test_not_smooth(self):
        rule = BetterResponseMigration()
        assert rule.smoothness is None
        check = check_alpha_smoothness(rule, max_latency=1.0, claimed_alpha=1000.0)
        # A tiny positive gap yields probability 1, violating any finite alpha.
        assert check.violations > 0
        assert check.estimated_alpha > 1000.0


class TestLinearMigration:
    def test_probability_formula(self):
        rule = LinearMigration(max_latency=2.0)
        assert rule.probability(1.5, 0.5) == pytest.approx(0.5)
        assert rule.probability(0.5, 1.5) == 0.0

    def test_probability_capped_at_one(self):
        rule = LinearMigration(max_latency=0.5)
        assert rule.probability(10.0, 0.0) == 1.0

    def test_smoothness_is_inverse_lmax(self):
        rule = LinearMigration(max_latency=4.0)
        assert rule.smoothness == pytest.approx(0.25)
        check = check_alpha_smoothness(rule, max_latency=4.0)
        assert check.is_smooth
        assert check.estimated_alpha <= 0.25 + 1e-9

    def test_rejects_non_positive_lmax(self):
        with pytest.raises(ValueError):
            LinearMigration(0.0)

    def test_matrix_is_zero_diagonal_and_selfish(self):
        rule = LinearMigration(max_latency=1.0)
        latencies = np.array([0.2, 0.8, 0.5])
        matrix = rule.matrix(latencies)
        assert np.allclose(np.diag(matrix), 0.0)
        for p in range(3):
            for q in range(3):
                if latencies[p] <= latencies[q]:
                    assert matrix[p, q] == 0.0


class TestScaledAndSmoothed:
    def test_scaled_linear_smoothness(self):
        rule = ScaledLinearMigration(alpha=3.0)
        assert rule.smoothness == 3.0
        assert rule.probability(1.0, 0.9) == pytest.approx(0.3)
        check = check_alpha_smoothness(rule, max_latency=1.0)
        assert check.is_smooth

    def test_smoothed_better_response(self):
        rule = SmoothedBetterResponseMigration(width=0.01)
        assert rule.smoothness == pytest.approx(100.0)
        assert rule.probability(1.0, 0.5) == 1.0
        assert rule.probability(0.505, 0.5) == pytest.approx(0.5)

    def test_reject_bad_parameters(self):
        with pytest.raises(ValueError):
            ScaledLinearMigration(0.0)
        with pytest.raises(ValueError):
            SmoothedBetterResponseMigration(0.0)


class TestSafeUpdatePeriod:
    def test_formula(self):
        network = two_link_network(beta=4.0)
        # T* = 1 / (4 * D * alpha * beta) with D = 1.
        assert safe_update_period(network, alpha=0.5) == pytest.approx(1.0 / 8.0)

    def test_braess_longer_paths_shrink_period(self):
        two = two_link_network(beta=1.0)
        braess = braess_network()
        assert safe_update_period(braess, 1.0) < safe_update_period(two, 1.0)

    def test_for_rule(self):
        network = two_link_network(beta=2.0)
        rule = LinearMigration(network.max_latency())
        expected = 1.0 / (4.0 * 1 * rule.smoothness * 2.0)
        assert safe_update_period_for_rule(network, rule) == pytest.approx(expected)

    def test_for_non_smooth_rule_raises(self):
        with pytest.raises(ValueError):
            safe_update_period_for_rule(two_link_network(), BetterResponseMigration())

    def test_max_safe_alpha_inverts_period(self):
        network = braess_network()
        period = 0.05
        alpha = max_safe_alpha(network, period)
        assert safe_update_period(network, alpha) == pytest.approx(period)

    def test_migration_rule_for_period(self):
        network = two_link_network(beta=2.0)
        rule = migration_rule_for_period(network, 0.1)
        assert safe_update_period_for_rule(network, rule) == pytest.approx(0.1)

    def test_invalid_arguments(self):
        network = two_link_network()
        with pytest.raises(ValueError):
            safe_update_period(network, 0.0)
        with pytest.raises(ValueError):
            max_safe_alpha(network, 0.0)
