"""Unit tests for the sampling rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ProportionalSampling, SoftmaxSampling, UniformSampling
from repro.wardrop import FlowVector


def posted_state(network, values):
    flow = FlowVector(network, values)
    return flow.values(), flow.path_latencies()


class TestUniformSampling:
    def test_rows_are_uniform(self, braess):
        flows, latencies = posted_state(braess, np.full(braess.num_paths, 1 / 3))
        sigma = UniformSampling().probabilities(braess, flows, latencies)
        UniformSampling().validate(sigma, braess)
        assert np.allclose(sigma, 1.0 / 3.0)

    def test_multi_commodity_blocks(self, layered):
        flows = FlowVector.uniform(layered).values()
        latencies = layered.path_latencies(flows)
        rule = UniformSampling()
        sigma = rule.probabilities(layered, flows, latencies)
        rule.validate(sigma, layered)

    def test_independent_of_flow(self, two_links):
        rule = UniformSampling()
        a = rule.probabilities(two_links, *posted_state(two_links, [0.9, 0.1]))
        b = rule.probabilities(two_links, *posted_state(two_links, [0.2, 0.8]))
        assert np.allclose(a, b)


class TestProportionalSampling:
    def test_matches_flow_shares(self, two_links):
        flows, latencies = posted_state(two_links, [0.7, 0.3])
        sigma = ProportionalSampling(exploration=0.0).probabilities(two_links, flows, latencies)
        assert np.allclose(sigma[:, 0], 0.7)
        assert np.allclose(sigma[:, 1], 0.3)

    def test_exploration_keeps_probabilities_positive(self, two_links):
        flows, latencies = posted_state(two_links, [1.0, 0.0])
        sigma = ProportionalSampling(exploration=0.01).probabilities(two_links, flows, latencies)
        assert sigma[0, 1] > 0.0
        ProportionalSampling(exploration=0.01).validate(sigma, two_links)

    def test_handles_zero_total_flow_defensively(self, two_links):
        # Degenerate posted flow (all zeros) must not divide by zero.
        latencies = two_links.path_latencies(np.array([0.5, 0.5]))
        sigma = ProportionalSampling().probabilities(two_links, np.zeros(2), latencies)
        assert np.allclose(sigma.sum(axis=1), 1.0)

    def test_rejects_bad_exploration(self):
        with pytest.raises(ValueError):
            ProportionalSampling(exploration=1.0)

    def test_rows_sum_to_one_multi_commodity(self, layered):
        flows = FlowVector.uniform(layered).values()
        latencies = layered.path_latencies(flows)
        rule = ProportionalSampling()
        rule.validate(rule.probabilities(layered, flows, latencies), layered)


class TestSoftmaxSampling:
    def test_prefers_low_latency_paths(self, two_links):
        flows, latencies = posted_state(two_links, [0.9, 0.1])
        sigma = SoftmaxSampling(concentration=5.0).probabilities(two_links, flows, latencies)
        # Path 1 (empty link) has lower latency and must get more probability.
        assert sigma[0, 1] > sigma[0, 0]

    def test_large_concentration_approaches_best_response(self, two_links):
        flows, latencies = posted_state(two_links, [0.9, 0.1])
        sigma = SoftmaxSampling(concentration=500.0).probabilities(two_links, flows, latencies)
        assert sigma[0, 1] == pytest.approx(1.0, abs=1e-3)

    def test_small_concentration_approaches_uniform(self, two_links):
        flows, latencies = posted_state(two_links, [0.9, 0.1])
        sigma = SoftmaxSampling(concentration=1e-6).probabilities(two_links, flows, latencies)
        assert sigma[0, 0] == pytest.approx(0.5, abs=1e-3)

    def test_rejects_non_positive_concentration(self):
        with pytest.raises(ValueError):
            SoftmaxSampling(0.0)

    def test_valid_stochastic_matrix(self, braess):
        flows = FlowVector.uniform(braess).values()
        latencies = braess.path_latencies(flows)
        rule = SoftmaxSampling(3.0)
        rule.validate(rule.probabilities(braess, flows, latencies), braess)
