"""Bench-record schema, the throughput matrix, and trace-report rendering."""

from __future__ import annotations

import json

import pytest

from repro.core import simulate, uniform_policy
from repro.instances import two_link_network
from repro.telemetry import load_trace, render_trace_report, telemetry_session
from repro.telemetry.bench import (
    BENCH_SCHEMA,
    RECORDS_ENV,
    bench_timer,
    clear_records,
    collected_records,
    gap_matrix_rows,
    load_records,
    render_gap_matrix,
    render_throughput_matrix,
    throughput_matrix_rows,
)
from repro.telemetry.report import (
    engine_run_rows,
    event_rows,
    metrics_rows,
    span_breakdown_rows,
)


@pytest.fixture(autouse=True)
def isolated_records():
    clear_records()
    yield
    clear_records()


class TestBenchTimer:
    def test_timed_block_emits_one_schema_record(self):
        with bench_timer(
            "bench_x", "warm", engine="fluid-batch", instance="two-links",
            cases=8, extra_flag=True,
        ) as timer:
            pass
        assert timer.seconds > 0
        assert timer.rate == pytest.approx(8 / timer.seconds)
        (record,) = collected_records()
        assert record["schema"] == BENCH_SCHEMA
        assert record["bench"] == "bench_x"
        assert record["section"] == "warm"
        assert record["engine"] == "fluid-batch"
        assert record["extra_flag"] is True

    def test_raising_block_emits_no_record(self):
        with pytest.raises(ValueError):
            with bench_timer("bench_x", "broken"):
                raise ValueError("no partial timings")
        assert collected_records() == []

    def test_records_append_to_the_env_named_file(self, tmp_path, monkeypatch):
        path = tmp_path / "records.jsonl"
        monkeypatch.setenv(RECORDS_ENV, str(path))
        with bench_timer("bench_x", "a", engine="agents", instance="two-links", cases=2):
            pass
        with bench_timer("bench_x", "b", engine="agents", instance="braess", cases=4):
            pass
        records = load_records(path)
        assert [record["section"] for record in records] == ["a", "b"]

    def test_load_records_skips_foreign_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps({"schema": BENCH_SCHEMA, "engine": "e", "instance": "i", "rate": 1.0})
            + "\n"
            + json.dumps({"kind": "span", "name": "phase"})
            + "\n\n"
        )
        records = load_records(path)
        assert len(records) == 1


class TestThroughputMatrix:
    def test_best_rate_wins_per_cell(self):
        records = [
            {"engine": "fluid-batch", "instance": "two-links", "rate": 100.0},
            {"engine": "fluid-batch", "instance": "two-links", "rate": 250.0},
            {"engine": "fluid-scalar", "instance": "two-links", "rate": 10.0},
            {"engine": "fluid-batch", "instance": "sioux-falls", "rate": 5.0},
            {"engine": "edge-fw", "instance": "sioux-falls", "rate": float("nan")},
        ]
        rows = throughput_matrix_rows(records)
        by_engine = {row["engine"]: row for row in rows}
        assert by_engine["fluid-batch"]["two-links"] == 250.0
        assert by_engine["fluid-batch"]["sioux-falls"] == 5.0
        assert by_engine["fluid-scalar"] == {"engine": "fluid-scalar", "two-links": 10.0}
        # The all-NaN engine contributes no cells at all.
        assert "edge-fw" not in by_engine

    def test_render_includes_every_instance_column(self):
        text = render_throughput_matrix(
            [
                {"engine": "a", "instance": "x", "rate": 1.0},
                {"engine": "b", "instance": "y", "rate": 2.0},
            ]
        )
        header = text.splitlines()[1]
        assert "x" in header and "y" in header

    def test_render_empty_records(self):
        assert "(no bench records)" in render_throughput_matrix([])


class TestGapMatrix:
    def test_best_gap_wins_per_cell_and_throughput_records_are_skipped(self):
        records = [
            {"method": "fw", "instance": "sioux-falls", "gap": 9e-5, "seconds": 4.5},
            {"method": "fw", "instance": "sioux-falls", "gap": 5e-5, "seconds": 6.0},
            {"method": "bfw", "instance": "sioux-falls", "gap": 8e-5, "seconds": 0.7},
            # throughput-only record: no method/gap, never a gap-matrix cell
            {"engine": "fluid-batch", "instance": "two-links", "rate": 100.0},
        ]
        rows = gap_matrix_rows(records)
        by_method = {row["method"]: row for row in rows}
        assert set(by_method) == {"fw", "bfw"}
        assert by_method["fw"]["sioux-falls"] == "5.00e-05 @ 6.00s"
        assert by_method["bfw"]["sioux-falls"] == "8.00e-05 @ 0.70s"

    def test_render_gap_matrix(self):
        text = render_gap_matrix(
            [{"method": "cfw", "instance": "sioux-falls", "gap": 1e-4, "seconds": 1.0}]
        )
        assert "cfw" in text and "sioux-falls" in text
        assert "(no solver records)" in render_gap_matrix([])
        # Records without solver fields alone also render the empty note.
        assert "(no solver records)" in render_gap_matrix(
            [{"engine": "a", "instance": "x", "rate": 1.0}]
        )


class TestTraceReport:
    @pytest.fixture
    def trace_records(self, tmp_path):
        network = two_link_network(beta=2.0)
        policy = uniform_policy(network)
        path = tmp_path / "trace.jsonl"
        with telemetry_session(trace_path=path):
            simulate(network, policy, update_period=0.2, horizon=2.0,
                     steps_per_phase=5)
        return load_trace(path)

    def test_engine_run_rows_count_phases(self, trace_records):
        (row,) = engine_run_rows(trace_records)
        assert row["engine"] == "fluid-scalar"
        assert row["phases"] == 10
        assert row["seconds"] > 0
        assert row["phases/sec"] > 0

    def test_span_breakdown_shares_sum_below_one_per_engine(self, trace_records):
        rows = span_breakdown_rows(trace_records)
        names = {row["span"] for row in rows}
        assert {"phase", "field_eval", "integrate"} <= names
        phase_row = next(row for row in rows if row["span"] == "phase")
        assert phase_row["engine"] == "fluid-scalar"
        assert phase_row["count"] == 10
        assert 0 < phase_row["share"] <= 1.0
        # Nested spans never exceed their engine's wall time.
        assert all(0 <= row["share"] <= 1.0 for row in rows)

    def test_metrics_and_event_rows(self, trace_records):
        metrics = {row["metric"]: row for row in metrics_rows(trace_records)}
        assert metrics["fluid.phases_integrated"]["value"] == 10
        events = {row["event"]: row["count"] for row in event_rows(trace_records)}
        assert events["bulletin_refresh"] >= 1

    def test_render_trace_report_has_all_sections(self, trace_records):
        text = render_trace_report(trace_records, title="unit trace")
        assert "unit trace: engine runs" in text
        assert "span breakdown (per engine)" in text
        assert "metrics" in text
        assert "events" in text

    def test_render_empty_trace(self):
        assert render_trace_report([]) == "(empty trace)"


class TestRateGuards:
    """Degenerate timings yield nan rates, never division errors or inf."""

    def test_rate_is_nan_before_the_block_exits(self):
        timer = bench_timer("b", "s", cases=8)
        assert timer.rate != timer.rate

    def test_zero_elapsed_block_has_nan_rate(self):
        timer = bench_timer("b", "s", cases=8)
        timer.seconds = 0.0
        assert timer.rate != timer.rate

    def test_zero_cases_has_nan_rate(self):
        timer = bench_timer("b", "s", cases=0)
        timer.seconds = 1.0
        assert timer.rate != timer.rate

    def test_normal_block_has_finite_rate(self):
        with bench_timer("b", "s", cases=4) as timer:
            sum(range(1000))
        assert timer.rate > 0

    def test_nan_rate_records_are_skipped_by_the_matrix(self):
        records = [
            {"schema": BENCH_SCHEMA, "engine": "e", "instance": "i",
             "cases": 0, "seconds": 1.0, "rate": float("nan")},
            {"schema": BENCH_SCHEMA, "engine": "e", "instance": "i",
             "cases": 4, "seconds": 1.0, "rate": 4.0},
        ]
        (row,) = throughput_matrix_rows(records)
        assert row["i"] == 4.0
