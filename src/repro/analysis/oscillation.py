"""Oscillation detection for rerouting trajectories.

The failure mode the paper is about -- and that naive policies exhibit under
stale information -- is persistent oscillation: the flow keeps overshooting
the equilibrium, the potential does not settle, and a constant fraction of
agents keeps experiencing high latency.  The detector here works on the
phase-start flows of a trajectory (the natural stroboscopic sampling for a
bulletin-board system) and reports

* the amplitude of the tail oscillation (max minus min of each path flow over
  the last ``window`` phases),
* an estimate of the period (in phases) via autocorrelation of the dominant
  path's flow, and
* whether the trajectory should be classified as oscillating rather than
  converged, using an amplitude threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.trajectory import Trajectory


@dataclass(frozen=True)
class OscillationReport:
    """Summary of the tail behaviour of a trajectory.

    Attributes
    ----------
    amplitude:
        Largest per-path (max - min) flow variation over the analysis window.
    period_phases:
        Estimated oscillation period in bulletin-board phases (None if no
        periodic structure was detected).
    mean_phase_start_latency:
        Average over the window of the maximum latency sustained by used
        paths at phase starts -- the quantity the paper's ``X`` bounds.
    is_oscillating:
        True if the amplitude exceeds the supplied threshold.
    """

    amplitude: float
    period_phases: Optional[int]
    mean_phase_start_latency: float
    is_oscillating: bool


def analyse_oscillation(
    trajectory: Trajectory,
    window: int = 20,
    amplitude_threshold: float = 1e-3,
) -> OscillationReport:
    """Analyse the tail of a trajectory for oscillation.

    ``window`` phase-start flows from the end of the run are examined; runs
    shorter than the window use every recorded phase.
    """
    starts = trajectory.phase_start_flows()
    if not starts:
        raise ValueError("trajectory has no recorded phases")
    tail = starts[-window:]
    matrix = np.array([flow.values() for flow in tail])
    amplitude = float((matrix.max(axis=0) - matrix.min(axis=0)).max())
    latencies = [flow.max_used_latency() for flow in tail]
    period = _estimate_period(matrix)
    return OscillationReport(
        amplitude=amplitude,
        period_phases=period,
        mean_phase_start_latency=float(np.mean(latencies)),
        is_oscillating=amplitude > amplitude_threshold,
    )


def _estimate_period(matrix: np.ndarray) -> Optional[int]:
    """Estimate the oscillation period from the most-varying path's flow.

    Uses the first local maximum of the (unbiased) autocorrelation; returns
    ``None`` when the signal is essentially constant or no clear peak exists.
    """
    if matrix.shape[0] < 4:
        return None
    variances = matrix.var(axis=0)
    signal = matrix[:, int(np.argmax(variances))]
    centred = signal - signal.mean()
    if np.allclose(centred, 0.0, atol=1e-12):
        return None
    correlation = np.correlate(centred, centred, mode="full")[len(centred) - 1 :]
    if correlation[0] <= 0:
        return None
    correlation = correlation / correlation[0]
    # First lag where the autocorrelation turns back up and is substantial.
    for lag in range(1, len(correlation) - 1):
        if correlation[lag] >= correlation[lag - 1] and correlation[lag] >= correlation[lag + 1]:
            if correlation[lag] > 0.25:
                return lag
    return None


def phase_start_latency_trace(trajectory: Trajectory) -> np.ndarray:
    """Return the max used-path latency at the start of every phase.

    For the two-link oscillation instance this is the quantity whose closed
    form is ``X = beta (1 - e^{-T}) / (2 e^{-T} + 2)``.
    """
    return np.array([flow.max_used_latency() for flow in trajectory.phase_start_flows()])
