"""Acceptance: the Sioux Falls workflows never enumerate the full path set.

``repro simulate sioux-falls`` and ``repro sweep sioux-falls`` must run end
to end without a single call to ``enumerate_commodity_paths`` on the full
network -- the loader seeds restricted path sets from the shortest-path
oracle and everything downstream (simulator, batched runner, column
generation, edge-flow Frank--Wolfe) stays oracle-driven.
"""

import numpy as np
import pytest

import repro.wardrop.paths as paths_module
from repro.cli import main


@pytest.fixture
def forbid_enumeration(monkeypatch):
    """Make any attempt at path enumeration an immediate test failure."""

    def exploded(*args, **kwargs):
        raise AssertionError("enumerate_commodity_paths must not run")

    monkeypatch.setattr(paths_module, "enumerate_commodity_paths", exploded)


def test_simulate_sioux_falls_runs_without_enumeration(forbid_enumeration, capsys):
    code = main(
        [
            "simulate", "sioux-falls", "--policy", "replicator",
            "--period", "auto", "--horizon", "0.05",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "update period T" in out


def test_simulate_sioux_falls_with_column_generation(forbid_enumeration, capsys):
    code = main(
        [
            "simulate", "sioux-falls-mini", "--policy", "uniform",
            "--period", "0.05", "--horizon", "0.3", "--column-generation",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "column generation" in out
    assert "active paths" in out


def test_sweep_sioux_falls_runs_without_enumeration(forbid_enumeration, capsys, tmp_path):
    csv_path = tmp_path / "sweep.csv"
    code = main(
        [
            "sweep", "sioux-falls", "--policy", "uniform",
            "--periods", "0.05,0.1", "--horizon", "0.2",
            "--steps-per-phase", "10", "--csv", str(csv_path),
        ]
    )
    assert code == 0
    lines = csv_path.read_text().strip().splitlines()
    assert len(lines) == 3  # header + one row per period
    assert "bad_phases" in lines[0]


def test_sweep_sioux_falls_mini_with_column_generation(forbid_enumeration, capsys):
    code = main(
        [
            "sweep", "sioux-falls-mini", "--policy", "uniform",
            "--periods", "0.1,0.2", "--horizon", "0.4",
            "--steps-per-phase", "10", "--column-generation",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Sweep of sioux-falls-mini" in out


def test_column_generation_rejects_agent_method(capsys):
    code = main(
        [
            "simulate", "sioux-falls-mini", "--method", "agents",
            "--period", "0.1", "--column-generation",
        ]
    )
    assert code == 2


def test_registered_road_instances_are_restricted(forbid_enumeration):
    from repro.instances import get_instance

    network = get_instance("sioux-falls-mini")
    assert network.num_paths == network.num_commodities
    flows = np.full(network.num_paths, 1.0 / network.num_paths)
    latencies = network.path_latencies(flows)
    assert latencies.shape == (network.num_paths,)
    assert np.all(latencies > 0)
