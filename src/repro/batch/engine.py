"""The batched fluid-limit simulation engine.

:class:`BatchSimulator` evolves ``B`` independent replicas of the rerouting
dynamics as one stacked ``(B, P)`` array: one vectorised right-hand side per
integration step instead of one Python-level simulation per replica.  Rows
may differ in initial flow, bulletin-board update period, horizon,
steps-per-phase resolution and (via a list of policies) policy parameters,
so a whole parameter sweep becomes a single integration.  The replicas route
either on one shared :class:`~repro.wardrop.network.WardropNetwork` or on
the members of a :class:`~repro.wardrop.family.NetworkFamily` -- networks
with identical topology but per-row latency coefficients -- which turns the
paper's coefficient sweeps (Pigou constants, Braess shortcut latencies,
two-link slopes) into one batched run as well.

Correctness contract
--------------------
Row ``r`` of a batched run reproduces the scalar
:class:`~repro.core.simulator.ReroutingSimulator` trajectory for the same
configuration (and, for families, the same member network) *exactly* (bit
for bit in practice, and certainly within 1e-10): the engine mirrors the
scalar phase/step-count arithmetic
(:func:`~repro.core.dynamics.num_integration_steps`), uses batched kernels
that perform the same floating-point operations row by row, and applies the
same clip-and-rescale projection at phase boundaries.  The equivalence is
enforced by the property tests in ``tests/batch``.

Because rows are independent, the engine advances all rows through *their
own* phase ``k`` simultaneously even when their update periods differ — the
rows' absolute clocks simply diverge, which is harmless.  Rows whose horizon
is exhausted — or whose ``stop_when`` condition has fired — are *frozen*:
each phase integrates only the still-active sub-batch, so converged rows
skip all sampling, migration and latency work for the rest of the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..core.dynamics import batch_stepper_for
from ..core.policy import ReroutingPolicy
from ..core.trajectory import PhaseRecord, Trajectory
from ..telemetry.runtime import get_telemetry
from ..wardrop.family import NetworkFamily
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .board import BatchBulletinBoard

Policies = Union[ReroutingPolicy, Sequence[ReroutingPolicy]]
Networks = Union[WardropNetwork, NetworkFamily]

# A vectorised stopping condition: ``stop_when(times, flows, rows)`` receives
# the phase-end times ``(R,)``, the projected phase-end flows ``(R, P)`` and
# the batch row indices ``(R,)`` of the currently active rows, and returns a
# boolean mask of shape ``(R,)`` — True freezes the row after this phase.
BatchStoppingCondition = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class BatchConfig:
    """Configuration of a batched run; per-row fields broadcast from scalars.

    Attributes
    ----------
    update_periods:
        Shape ``(B,)`` — each row's bulletin-board period ``T_r``.  This
        array fixes the batch size ``B``.
    horizons:
        Scalar or shape ``(B,)`` — total simulated time per row.
    steps_per_phase:
        Scalar or shape ``(B,)`` — integrator sub-steps per phase.
    method:
        Integration scheme shared by the batch, ``"rk4"`` or ``"euler"``.
    stale:
        If ``True`` (default) boards refresh only at phase boundaries
        (Eq. 3); if ``False`` the live state is used at every stage (Eq. 1).
    record_every:
        Optional stride (in integrator sub-steps) for dense trajectory
        recording: every ``record_every``-th sub-step records an additional
        (projected) sample between the phase boundaries, mirroring the
        scalar simulator's ``record_every_step`` at stride 1.  ``None``
        (default) records phase boundaries only.
    """

    update_periods: np.ndarray = field(default_factory=lambda: np.array([0.1]))
    horizons: Union[float, np.ndarray] = 50.0
    steps_per_phase: Union[int, np.ndarray] = 50
    method: str = "rk4"
    stale: bool = True
    record_every: Optional[int] = None

    def __post_init__(self) -> None:
        self.update_periods = np.atleast_1d(np.asarray(self.update_periods, dtype=float))
        batch = len(self.update_periods)
        self.horizons = np.broadcast_to(
            np.asarray(self.horizons, dtype=float), (batch,)
        ).copy()
        self.steps_per_phase = np.broadcast_to(
            np.asarray(self.steps_per_phase, dtype=int), (batch,)
        ).copy()
        if np.any(self.update_periods <= 0):
            raise ValueError("all update periods must be positive")
        if np.any(self.horizons <= 0):
            raise ValueError("all horizons must be positive")
        if np.any(self.steps_per_phase <= 0):
            raise ValueError("steps_per_phase must be positive")
        if self.record_every is not None and self.record_every < 1:
            raise ValueError("record_every must be a positive sub-step stride")

    @property
    def batch_size(self) -> int:
        return len(self.update_periods)


@dataclass
class BatchResult:
    """The recorded phase-boundary states of a batched run.

    ``times[r, k]`` and ``flows[r, k]`` hold row ``r``'s ``k``-th recorded
    sample (``k = 0`` is the initial state, then one sample per completed
    phase); only the first ``num_points[r]`` slots of row ``r`` are valid.
    ``stop_phases[r]`` is the index of the phase whose end triggered row
    ``r``'s ``stop_when`` condition (−1 if it never fired), matching the
    scalar simulator's early-exit phase exactly.

    Dense (strided) runs additionally fill ``sample_phases[r, k]`` with the
    phase index each sample belongs to, ``boundary_mask[r, k]`` with whether
    it is a phase boundary, and ``phase_counts[r]`` with the number of
    completed phases (which no longer equals ``num_points - 1``).
    """

    network: WardropNetwork
    policy_names: List[str]
    update_periods: np.ndarray
    horizons: np.ndarray
    stale: bool
    times: np.ndarray
    flows: np.ndarray
    num_points: np.ndarray
    stop_phases: Optional[np.ndarray] = None
    family: Optional[NetworkFamily] = None
    sample_phases: Optional[np.ndarray] = None
    boundary_mask: Optional[np.ndarray] = None
    phase_counts: Optional[np.ndarray] = None

    @property
    def batch_size(self) -> int:
        return len(self.update_periods)

    def __len__(self) -> int:
        return self.batch_size

    def row_network(self, row: int) -> WardropNetwork:
        """Return the network row ``row`` routed on (its family member)."""
        if self.family is not None:
            return self.family.member(row)
        return self.network

    def num_phases(self, row: int) -> int:
        """Return the number of completed bulletin-board phases of one row."""
        if self.phase_counts is not None:
            return int(self.phase_counts[row])
        return int(self.num_points[row]) - 1

    def stopped_rows(self) -> np.ndarray:
        """Return the boolean mask of rows frozen by ``stop_when``."""
        if self.stop_phases is None:
            return np.zeros(self.batch_size, dtype=bool)
        return self.stop_phases >= 0

    def final_flows(self) -> np.ndarray:
        """Return the ``(B, P)`` array of final flows, one row per replica."""
        rows = np.arange(self.batch_size)
        return self.flows[rows, self.num_points - 1].copy()

    def final_flow(self, row: int) -> FlowVector:
        """Return one row's final flow as a :class:`FlowVector`."""
        return FlowVector(
            self.row_network(row),
            self.flows[row, self.num_points[row] - 1],
            validate=False,
        )

    def flow_matrix(self, row: int) -> np.ndarray:
        """Return one row's ``(samples, P)`` matrix of recorded flows."""
        return self.flows[row, : self.num_points[row]].copy()

    def trajectory(self, row: int) -> Trajectory:
        """Materialise one row as a scalar :class:`Trajectory`.

        The result has the same points, phase records and metadata as a
        scalar simulator run of that configuration (on the row's own family
        member for heterogeneous batches), so the whole analysis toolkit
        (convergence counting, oscillation detection, sweep row builders)
        applies unchanged.
        """
        network = self.row_network(row)
        count = int(self.num_points[row])
        trajectory = Trajectory(
            network=network,
            policy_name=self.policy_names[row],
            update_period=float(self.update_periods[row]) if self.stale else 0.0,
        )
        vectors = [
            FlowVector(network, self.flows[row, k], validate=False)
            for k in range(count)
        ]
        if self.sample_phases is None:
            # Boundary-only recording: sample k closes phase k-1.
            for k in range(count):
                trajectory.record(float(self.times[row, k]), vectors[k], max(k - 1, 0))
            boundary_indices = list(range(count))
        else:
            for k in range(count):
                trajectory.record(
                    float(self.times[row, k]), vectors[k], int(self.sample_phases[row, k])
                )
            boundary_indices = [
                k for k in range(count) if bool(self.boundary_mask[row, k])
            ]
        for p in range(len(boundary_indices) - 1):
            start, end = boundary_indices[p], boundary_indices[p + 1]
            trajectory.record_phase(
                PhaseRecord(
                    index=p,
                    start_time=float(self.times[row, start]),
                    end_time=float(self.times[row, end]),
                    start_flow=vectors[start],
                    end_flow=vectors[end],
                )
            )
        return trajectory

    def trajectories(self) -> List[Trajectory]:
        """Materialise every row (convenience for small batches)."""
        return [self.trajectory(row) for row in range(self.batch_size)]


class BatchEnsembleBase:
    """Shared network/policy/initial-state plumbing of the batched engines.

    Normalises the ``network`` argument (shared network vs
    :class:`~repro.wardrop.family.NetworkFamily` of the batch size), the
    ``policies`` argument (one shared policy for the fully vectorised kernels
    vs a per-row list using the row-loop fallback) and the ``initial_flows``
    argument, and provides family-aware live latency evaluation.  Both the
    fluid :class:`BatchSimulator` and the finite-population
    :class:`~repro.batch.agents.BatchAgentSimulator` build on it, so
    validation fixes apply to both engines at once.
    """

    def __init__(self, network: Networks, policies: Policies, batch_size: int):
        if isinstance(network, NetworkFamily):
            if network.size != batch_size:
                raise ValueError(
                    f"family of {network.size} networks for a batch of {batch_size}"
                )
            self.family: Optional[NetworkFamily] = network
            self.network = network.base
        else:
            self.family = None
            self.network = network
        self._batch_size = batch_size
        # Scenario runs point this at the current phase's effective family;
        # live (fresh-information) latency evaluation then prices flows in
        # each row's current environment.
        self._phase_family: Optional[NetworkFamily] = None
        if isinstance(policies, ReroutingPolicy):
            self._shared_policy: Optional[ReroutingPolicy] = policies
            self._policies: List[ReroutingPolicy] = [policies] * batch_size
        else:
            policies = list(policies)
            if len(policies) != batch_size:
                raise ValueError(
                    f"got {len(policies)} policies for a batch of {batch_size}"
                )
            self._shared_policy = policies[0] if len(set(map(id, policies))) == 1 else None
            self._policies = policies

    # Initial states ---------------------------------------------------------

    def _is_row_network(self, candidate: WardropNetwork, row: int) -> bool:
        """True if ``candidate`` is a legal network for batch row ``row``."""
        if candidate is self.network:
            return True
        return self.family is not None and candidate is self.family.networks[row]

    def _initial_flows(self, initial_flows) -> np.ndarray:
        batch = self._batch_size
        network = self.network
        if initial_flows is None:
            uniform = FlowVector.uniform(network).values()
            return np.tile(uniform, (batch, 1))
        if isinstance(initial_flows, FlowVector):
            if not self._is_row_network(initial_flows.network, 0):
                raise ValueError("initial flow belongs to a different network")
            return np.tile(initial_flows.values(), (batch, 1))
        if isinstance(initial_flows, np.ndarray):
            flows = np.asarray(initial_flows, dtype=float)
            if flows.shape != (batch, network.num_paths):
                raise ValueError(
                    f"initial flows have shape {flows.shape}, expected "
                    f"({batch}, {network.num_paths})"
                )
            return flows.copy()
        vectors = list(initial_flows)
        if len(vectors) != batch:
            raise ValueError(f"got {len(vectors)} initial flows for a batch of {batch}")
        for row, vector in enumerate(vectors):
            if not self._is_row_network(vector.network, row):
                raise ValueError("initial flow belongs to a different network")
        return FlowVector.stack(vectors)

    # Latency evaluation ------------------------------------------------------

    def _path_latencies_rows(self, state: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Live path latencies of the active sub-batch (family/scenario-aware)."""
        if self._phase_family is not None:
            return self._phase_family.path_latencies_batch(state, rows)
        if self.family is None:
            return self.network.path_latencies_batch(state)
        return self.family.path_latencies_batch(state, rows)

    # Policy tables -----------------------------------------------------------

    def _policy_tables(self, posted_flows: np.ndarray, posted_latencies: np.ndarray, rows: np.ndarray):
        """Return the stacked ``(sigma, mu)`` matrices of the given rows.

        A shared policy uses the fully vectorised batch kernels; per-row
        policies fall back to assembling the matrices row by row, so custom
        sampling/migration rules keep working in both batched engines.
        """
        network = self.network
        if self._shared_policy is not None:
            policy = self._shared_policy
            sigma = policy.sampling.probabilities_batch(network, posted_flows, posted_latencies)
            mu = policy.migration.matrix_batch(posted_latencies)
        else:
            sigma = np.stack(
                [
                    self._policies[row].sampling.probabilities(
                        network, posted_flows[i], posted_latencies[i]
                    )
                    for i, row in enumerate(rows)
                ]
            )
            mu = np.stack(
                [
                    self._policies[row].migration.matrix(posted_latencies[i])
                    for i, row in enumerate(rows)
                ]
            )
        return sigma, mu


class BatchSimulator(BatchEnsembleBase):
    """Simulates ``B`` independent replicas of the rerouting dynamics at once.

    Parameters
    ----------
    network:
        Either the shared :class:`WardropNetwork` (all rows route on it) or a
        :class:`~repro.wardrop.family.NetworkFamily` whose size equals the
        batch size (row ``r`` routes on member ``r``, enabling heterogeneous
        latency coefficients within one integration).
    policies:
        Either one :class:`ReroutingPolicy` applied to every row (the fast,
        fully vectorised path) or a sequence of ``B`` policies, one per row
        (sampling/migration matrices are then assembled row by row, which
        still amortises the integration loop across the batch).
    config:
        The :class:`BatchConfig` with per-row periods/horizons/resolutions.
    scenarios:
        Optional nonstationary environments: one
        :class:`~repro.scenarios.scenario.Scenario` shared by every row, or a
        sequence of ``B`` scenarios (``None`` entries keep a row stationary).
        Rows may carry *different* scenarios -- e.g. a sweep over incident
        timings -- and still integrate as one ensemble: at every phase
        boundary the per-row effective networks are stacked through
        :class:`~repro.scenarios.scenario.ScenarioEnsemble` into a cached
        :class:`NetworkFamily` whose latency evaluation stays vectorised.
        Row ``r`` remains bit-identical to a scalar
        :class:`~repro.core.simulator.ReroutingSimulator` run with
        ``scenario=scenarios[r]``.
    """

    def __init__(
        self,
        network: Networks,
        policies: Policies,
        config: BatchConfig,
        scenarios=None,
    ):
        super().__init__(network, policies, config.batch_size)
        self.config = config
        self._scenarios = self._normalise_scenarios(scenarios, config.batch_size)

    @staticmethod
    def _normalise_scenarios(scenarios, batch: int):
        if scenarios is None:
            return None
        from ..scenarios.scenario import Scenario

        if isinstance(scenarios, Scenario):
            scenarios = [scenarios] * batch
        scenarios = list(scenarios)
        if len(scenarios) != batch:
            raise ValueError(
                f"got {len(scenarios)} scenarios for a batch of {batch}"
            )
        if any(s is not None and not isinstance(s, Scenario) for s in scenarios):
            raise ValueError("scenarios must be Scenario instances or None")
        if all(s is None for s in scenarios):
            return None
        return scenarios

    def _stale_rates(self, board: BatchBulletinBoard, rows: np.ndarray):
        """Return a field closure for one stale phase of the active rows.

        Within a phase the sampling and migration matrices depend only on the
        posted snapshot, so they are assembled once per phase (for the active
        sub-batch only — frozen rows skip this work entirely) instead of once
        per integrator stage; the values, and hence the trajectory, are
        identical to the scalar simulator's.
        """
        sigma, mu = self._policy_tables(
            board.posted_flows[rows], board.posted_path_latencies[rows], rows
        )
        # Same folded form as ReroutingPolicy.growth_rates/frozen_growth_field
        # (one product + one reduction per stage), keeping scalar and batched
        # stale phases bit-identical.
        rates = sigma * mu
        outflow_rates = rates.sum(axis=2)

        def field(_t, state: np.ndarray) -> np.ndarray:
            inflow = np.matmul(state[:, None, :], rates)[:, 0, :]
            return inflow - state * outflow_rates

        return field

    def _fresh_rates(self, rows: np.ndarray):
        """Return the up-to-date-information field for the active rows."""
        network = self.network
        if self._shared_policy is not None:
            policy = self._shared_policy

            def field(_t, state: np.ndarray) -> np.ndarray:
                live_latencies = self._path_latencies_rows(state, rows)
                return policy.growth_rates_batch(network, state, state, live_latencies)

        else:

            def field(_t, state: np.ndarray) -> np.ndarray:
                live_latencies = self._path_latencies_rows(state, rows)
                return np.stack(
                    [
                        self._policies[row].growth_rates(
                            network, state[i], state[i], live_latencies[i]
                        )
                        for i, row in enumerate(rows)
                    ]
                )

        return field

    # Main loop --------------------------------------------------------------

    def run(
        self,
        initial_flows=None,
        stop_when: Optional[BatchStoppingCondition] = None,
    ) -> BatchResult:
        """Integrate every replica to its horizon and return the batch result.

        ``initial_flows`` may be ``None`` (uniform split for every row), a
        single :class:`FlowVector` (shared start), a sequence of ``B`` flow
        vectors or a raw ``(B, P)`` array.

        ``stop_when(times, flows, rows)`` is the vectorised per-row stopping
        condition (see :data:`BatchStoppingCondition`), evaluated at every
        phase boundary on the projected flows — exactly where the scalar
        simulator evaluates its ``stop_when(time, flow)``.  Rows whose
        condition fires are frozen: the stopping phase is still recorded
        (matching the scalar behaviour) and the row then drops out of the
        active sub-batch, skipping all further sampling, migration and
        latency work; its stop phase is recorded in ``stop_phases``.
        """
        config = self.config
        network = self.network
        batch = config.batch_size
        periods = config.update_periods
        horizons = config.horizons
        flows = self._initial_flows(initial_flows)
        stepper = batch_stepper_for(config.method)
        record_every = config.record_every
        tele = get_telemetry()
        run_span = tele.span(
            "engine_run",
            engine="fluid-batch",
            instance=network.graph.graph.get("name") or "-",
            method=config.method,
            stale=config.stale,
            rows=batch,
            paths=network.num_paths,
            state_bytes=flows.nbytes,
        )
        phases_counter = tele.counter("batch.phases_integrated")
        frozen_counter = tele.counter("batch.rows_frozen_by_stop_when")
        refresh_counter = tele.counter("batch.bulletin_refreshes")

        # Per-row phase counts, mirroring the scalar ceil(horizon / T).
        planned_phases = np.ceil(horizons / periods).astype(int)
        max_phases = int(planned_phases.max())

        if record_every is None:
            capacity = max_phases + 1
        else:
            # ceil(duration / max_step) can land on steps_per_phase + 1 when
            # the phase-boundary subtraction rounds up by an ulp, so size for
            # s + 1 sub-steps: floor(s / stride) intermediates + 1 boundary.
            per_phase = int(np.max(config.steps_per_phase)) // record_every + 1
            capacity = max_phases * per_phase + 1
        times = np.zeros((batch, capacity))
        recorded = np.zeros((batch, capacity, network.num_paths))
        recorded[:, 0] = flows
        num_points = np.ones(batch, dtype=int)
        sample_phases = np.zeros((batch, capacity), dtype=int)
        boundary_mask = np.zeros((batch, capacity), dtype=bool)
        boundary_mask[:, 0] = True
        phase_counts = np.zeros(batch, dtype=int)
        stop_phases = np.full(batch, -1, dtype=int)

        ensemble = None
        if self._scenarios is not None:
            from ..scenarios.scenario import ScenarioEnsemble

            ensemble = ScenarioEnsemble(self.family or network, self._scenarios)

        board: Optional[BatchBulletinBoard] = None
        if config.stale:
            board = BatchBulletinBoard(self.family or network, periods)
            if ensemble is not None:
                board.set_networks(ensemble.family_at(np.zeros(batch)))
            board.post_rows(0.0, flows)

        max_steps = periods / config.steps_per_phase
        for phase in range(max_phases):
            starts = phase * periods
            # The scalar loop stops as soon as a phase boundary reaches the
            # horizon (or stop_when fires), so a row is active only while its
            # phase starts early and it has not been frozen.
            active = (phase < planned_phases) & (starts < horizons) & (stop_phases < 0)
            if not active.any():
                break
            rows = np.flatnonzero(active)
            ends = np.minimum((phase + 1) * periods, horizons)
            durations = ends[rows] - starts[rows]

            if ensemble is not None:
                # Freeze every row's environment at its own phase start; the
                # stacked family feeds both board posts and live evaluation.
                self._phase_family = ensemble.family_at(starts)
                if board is not None:
                    board.set_networks(self._phase_family)

            phase_span = tele.span("phase", index=phase, active_rows=len(rows))
            if config.stale:
                if phase > 0:
                    # Mirror the scalar board's maybe_update: floating-point
                    # effects in floor(t / T) occasionally leave a snapshot in
                    # place for one more phase, and rows must reproduce that.
                    due = board.needs_update(starts) & active
                    if due.any():
                        board.post_rows(starts, flows, mask=due)
                        tele.event("bulletin_refresh", rows=int(due.sum()))
                        refresh_counter.add(int(due.sum()))
                with tele.span("field_eval", active_rows=len(rows)):
                    field = self._stale_rates(board, rows)
            else:
                field = self._fresh_rates(rows)

            # Same sub-step count as the scalar integrate(): ceil(duration/step).
            num_steps = np.maximum(1, np.ceil(durations / max_steps[rows])).astype(int)
            step_sizes = durations / num_steps
            state = flows[rows]
            row_starts = starts[rows]
            integrate_span = tele.span(
                "integrate",
                steps=int(num_steps.max()),
                state_bytes=state.nbytes,
            )
            for k in range(int(num_steps.max())):
                live = k < num_steps
                step = np.where(live, step_sizes, 0.0)[:, None]
                tick = (row_starts + k * step_sizes)[:, None]
                state = stepper(field, tick, state, step)
                if record_every is not None:
                    # Strided intermediate samples, mirroring the scalar
                    # record_every_step contract: the *projected* state is
                    # recorded while integration continues from the raw one.
                    due = live & ((k + 1) % record_every == 0) & (k + 1 < num_steps)
                    if due.any():
                        selected = np.flatnonzero(due)
                        mid_rows = rows[selected]
                        cursors = num_points[mid_rows]
                        times[mid_rows, cursors] = (
                            row_starts[selected] + (k + 1) * step_sizes[selected]
                        )
                        recorded[mid_rows, cursors] = FlowVector.project_batch(
                            network, state[selected]
                        )
                        sample_phases[mid_rows, cursors] = phase
                        num_points[mid_rows] += 1

            integrate_span.close()

            projected = FlowVector.project_batch(network, state)
            flows[rows] = projected
            cursors = num_points[rows]
            times[rows, cursors] = ends[rows]
            recorded[rows, cursors] = projected
            sample_phases[rows, cursors] = phase
            boundary_mask[rows, cursors] = True
            num_points[rows] += 1
            phase_counts[rows] += 1
            phases_counter.add(len(rows))

            if stop_when is not None:
                hit = np.asarray(stop_when(ends[rows], projected, rows), dtype=bool)
                if hit.shape != rows.shape:
                    raise ValueError(
                        f"stop_when returned shape {hit.shape}, expected {rows.shape}"
                    )
                stop_phases[rows[hit]] = phase
                if hit.any():
                    tele.event("stop_when_fired", phase=phase, rows=int(hit.sum()))
                    frozen_counter.add(int(hit.sum()))
            phase_span.close()

        self._phase_family = None
        run_span.annotate(phases_integrated=int(phase_counts.sum()))
        run_span.close()
        tele.counter("batch.runs").add()
        labels = [policy.label() for policy in self._policies]
        dense = record_every is not None
        return BatchResult(
            network=network,
            policy_names=labels,
            update_periods=periods.copy(),
            horizons=horizons.copy(),
            stale=config.stale,
            times=times,
            flows=recorded,
            num_points=num_points,
            stop_phases=stop_phases,
            family=self.family,
            sample_phases=sample_phases if dense else None,
            boundary_mask=boundary_mask if dense else None,
            phase_counts=phase_counts if dense else None,
        )


def simulate_batch(
    network: Networks,
    policies: Policies,
    update_periods,
    horizons,
    initial_flows=None,
    stale: bool = True,
    steps_per_phase=50,
    method: str = "rk4",
    stop_when: Optional[BatchStoppingCondition] = None,
    record_every: Optional[int] = None,
    scenarios=None,
) -> BatchResult:
    """Convenience wrapper mirroring :func:`repro.core.simulator.simulate`."""
    config = BatchConfig(
        update_periods=np.asarray(update_periods, dtype=float),
        horizons=horizons,
        steps_per_phase=steps_per_phase,
        method=method,
        stale=stale,
        record_every=record_every,
    )
    return BatchSimulator(network, policies, config, scenarios=scenarios).run(
        initial_flows, stop_when=stop_when
    )
