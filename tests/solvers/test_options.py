"""SolverOptions and the method dispatch table."""

import pytest

from repro.solvers import (
    ALL_METHODS,
    EDGE_METHODS,
    PATH_METHODS,
    SolverOptions,
    check_method,
)


class TestCheckMethod:
    def test_accepts_every_listed_combination(self):
        for method in EDGE_METHODS:
            assert check_method(method, "edge") == method
        for method in PATH_METHODS:
            assert check_method(method, "path") == method

    def test_rejects_cross_space_methods(self):
        with pytest.raises(ValueError, match="edge-space"):
            check_method("pg", "edge")
        with pytest.raises(ValueError, match="path-space"):
            check_method("cfw", "path")
        with pytest.raises(ValueError, match="path-space"):
            check_method("bfw", "path")

    def test_rejects_unknown_methods(self):
        with pytest.raises(ValueError, match="newton"):
            check_method("newton", "edge")


class TestSolverOptions:
    def test_defaults(self):
        options = SolverOptions()
        assert options.method == "fw"
        assert options.tolerance is None
        assert options.warm_start
        assert options.tolerance_or(1e-6) == 1e-6

    def test_explicit_tolerance_wins(self):
        assert SolverOptions(tolerance=1e-3).tolerance_or(1e-6) == 1e-3

    def test_every_method_is_constructible(self):
        for method in ALL_METHODS:
            assert SolverOptions(method=method).method == method

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown solver method"):
            SolverOptions(method="gradient-descent")
        with pytest.raises(ValueError, match="max_iterations"):
            SolverOptions(max_iterations=0)
        with pytest.raises(ValueError, match="tolerance"):
            SolverOptions(tolerance=0.0)
