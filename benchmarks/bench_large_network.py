"""E10 -- convergence on a real road network (Sioux Falls, TNTP).

The large-network subsystem runs the stale-information dynamics on the
bundled Sioux Falls instance without ever enumerating its path sets: the
loader seeds one free-flow shortest path per OD pair, routes are discovered
by shortest-path column generation at every bulletin refresh, and the
edge-flow Frank--Wolfe solver provides the equilibrium reference through
the same all-or-nothing Dijkstra oracle.

For every (policy, T) cell the benchmark reports the number of bulletin
phases until the dynamics reach a small relative duality gap
(``TSTT/SPTT - 1``, the oracle certificate), how many route columns were
discovered on the way, and the wall-clock cost.  The replicator runs with a
widened exploration term -- proportional sampling alone assigns
newly-discovered (zero-flow) routes vanishing probability, so exploration
is exactly the mechanism that lets it adopt a column.

Run as a script (the CI smoke job does) or through pytest:

    PYTHONPATH=src python benchmarks/bench_large_network.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_large_network.py -q
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import print_table
from repro.core import (
    ProportionalSampling,
    ReroutingPolicy,
    ScaledLinearMigration,
    UniformSampling,
)
from repro.instances import sioux_falls_network
from repro.largescale import (
    ActivePathSet,
    ShortestPathOracle,
    simulate_with_column_generation,
)
from repro.solvers import relative_duality_gap, solve_edge_flow_equilibrium
from repro.telemetry import telemetry_session
from repro.telemetry.bench import bench_timer

POLICY_NAMES = ("uniform", "replicator")
GAP_TARGET = 0.03


def policy_builders(alpha: float):
    """The two competing policies at a congestion-scale smoothness ``alpha``.

    The canonical ``LinearMigration(l_max)`` uses the worst-case latency
    bound, which on BPR road networks is astronomic (every edge *could*
    carry the whole demand at ~1e8 minutes) -- migration probabilities of
    1e-6 would need horizons of ~1e7 to converge.  ``ScaledLinearMigration``
    is the same rule with a caller-chosen, still alpha-smooth slope, so the
    benchmark picks ``alpha`` from the instance's free-flow latency scale.
    The replicator keeps a widened exploration term: proportional sampling
    alone gives newly-discovered zero-flow columns vanishing probability.
    """
    return {
        "uniform": lambda network: ReroutingPolicy(
            UniformSampling(), ScaledLinearMigration(alpha), name="uniform+scaled"
        ),
        "replicator": lambda network: ReroutingPolicy(
            ProportionalSampling(exploration=0.05),
            ScaledLinearMigration(alpha),
            name="replicator+scaled",
        ),
    }


def final_relative_gap(network, oracle, flow) -> float:
    """Relative duality gap TSTT/SPTT - 1 of a restricted final flow.

    Thin adapter over the solver's certificate: expand the restricted edge
    flows to the oracle's full edge order, then reuse the one definition.
    """
    edge_flows = oracle.expand_edge_values(network, network.edge_flows(flow.values()))
    return relative_duality_gap(network, oracle, edge_flows)


def run_benchmark(smoke: bool = False) -> List[dict]:
    """Run the sweep and return the printed rows."""
    if smoke:
        build_instance = lambda: sioux_falls_network(max_od_pairs=40)  # noqa: E731
        periods = [0.05, 0.1]
        horizon, steps_per_phase = 16.0, 10
        label = "sioux-falls-mini (40 OD pairs)"
        instance = "sioux-falls-mini"
    else:
        build_instance = sioux_falls_network
        periods = [0.02, 0.05]
        horizon, steps_per_phase = 2.0, 10
        label = "sioux-falls (528 OD pairs)"
        instance = "sioux-falls"
    network = build_instance()
    oracle = ShortestPathOracle.for_network(network)

    with bench_timer(
        "bench_large_network", "edge-FW reference",
        engine="edge-fw", instance=instance,
    ) as solver_timer:
        reference = solve_edge_flow_equilibrium(network, tolerance=1e-4, oracle=oracle)
    solver_seconds = solver_timer.seconds

    alpha = 1.0 / (2.0 * float(np.max(oracle.free_flow_costs(network))))
    builders = policy_builders(alpha)
    rows: List[dict] = []
    for policy_name in POLICY_NAMES:
        build_policy = builders[policy_name]
        for period in periods:

            def gap_reached(_time, flow):
                return final_relative_gap(flow.network, oracle, flow) <= GAP_TARGET

            with bench_timer(
                "bench_large_network", f"CG {policy_name} T={period:g}",
                engine="column-generation", instance=instance,
            ) as cg_timer:
                result = simulate_with_column_generation(
                    ActivePathSet.from_network(build_instance()),
                    build_policy,
                    update_period=period,
                    horizon=horizon,
                    steps_per_phase=steps_per_phase,
                    stop_when=gap_reached,
                )
            seconds = cg_timer.seconds
            trajectory = result.trajectory
            gap = final_relative_gap(result.network, oracle, result.final_flow)
            rows.append(
                {
                    "policy": policy_name,
                    "T": period,
                    "phases": len(trajectory.phases),
                    "converged": "yes" if gap <= GAP_TARGET else "no",
                    "rel_gap": gap,
                    "columns": result.total_columns_added,
                    "paths": result.network.num_paths,
                    "seconds": round(seconds, 2),
                    "phases/sec": round(len(trajectory.phases) / seconds, 1),
                }
            )
    rows.append(
        {
            "policy": "edge-flow FW (reference)",
            "phases": reference.iterations,
            "rel_gap": reference.relative_gap,
            "converged": "yes" if reference.converged else "no",
            "seconds": round(solver_seconds, 2),
        }
    )
    print_table(
        rows,
        title=(
            f"E10: column-generation dynamics on {label}, "
            f"gap target={GAP_TARGET}, alpha={alpha:.3g}, horizon={horizon}"
        ),
    )
    return rows


def test_large_network_smoke():
    """Pytest entry: the smoke sweep runs end to end and closes the gap."""
    rows = run_benchmark(smoke=True)
    dynamics = [row for row in rows if row["policy"] in POLICY_NAMES]
    assert len(dynamics) == 4
    for row in dynamics:
        # Column generation discovered routes and the gap shrank materially
        # from the all-on-seed-paths start.
        assert row["columns"] > 0
        assert row["rel_gap"] < 0.5
    # The uniform policy should actually reach the gap target in smoke mode.
    assert any(
        row["converged"] == "yes" for row in dynamics if row["policy"] == "uniform"
    )
    # The reference solver hit its certificate.
    assert rows[-1]["rel_gap"] < 1e-4


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast 40-OD-pair variant (CI-friendly, ~30s)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry session and write its JSONL trace here",
    )
    args = parser.parse_args(argv)
    if args.trace is not None:
        with telemetry_session(trace_path=args.trace):
            run_benchmark(smoke=args.smoke)
        print(f"wrote trace {args.trace}")
    else:
        run_benchmark(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
