"""Unit tests for instance validation."""

from __future__ import annotations

import pytest

from repro.instances import braess_network, two_link_network
from repro.wardrop import (
    Commodity,
    ConstantLatency,
    InstanceValidationError,
    LatencyFunction,
    WardropNetwork,
    assert_valid,
    validate_network,
)


class DecreasingLatency(LatencyFunction):
    """A deliberately invalid (decreasing) latency used to trigger validation."""

    def value(self, x):
        return 1.0 - 0.5 * x

    def derivative(self, x):
        return -0.5

    def integral(self, x):
        return x - 0.25 * x * x


class TestValidation:
    def test_good_instances_pass(self):
        for network in [two_link_network(2.0), braess_network()]:
            report = validate_network(network)
            assert report.ok
            assert_valid(network)

    def test_decreasing_latency_flagged(self):
        network = WardropNetwork.from_edges(
            [("s", "t", DecreasingLatency()), ("s", "t", ConstantLatency(1.0))],
            [Commodity("s", "t", 1.0)],
        )
        report = validate_network(network)
        assert not report.ok
        assert any("decreasing" in issue for issue in report.issues)
        with pytest.raises(InstanceValidationError):
            report.raise_if_invalid()

    def test_degenerate_all_zero_latency_flagged(self):
        network = WardropNetwork.from_edges(
            [("s", "t", ConstantLatency(0.0)), ("s", "t", ConstantLatency(0.0))],
            [Commodity("s", "t", 1.0)],
        )
        report = validate_network(network)
        assert not report.ok

    def test_report_ok_property(self):
        report = validate_network(two_link_network())
        assert report.ok
        report.raise_if_invalid()  # must not raise
