"""Opt-in wall-clock sampling profiler attributing time to span stacks.

Span tracing tells you how long each *instrumented* region took, but not
*where inside it* the time went -- the spans are opened at phase
boundaries, never inside numerical kernels.  The sampling profiler fills
that gap without touching the engines: a daemon thread wakes every few
milliseconds, reads the profiled thread's current Python frame via
:func:`sys._current_frames`, and records the pair

    (active span stack, top-of-stack code location)

so the report can say "62% of ``engine_run > phase`` wall time is in
``shortest.py:211 all_or_nothing``".  Sampling is statistical: the cost is
one frame lookup per tick *on the profiler thread*, so the profiled code
runs unmodified and the <2% disabled-overhead guarantee is untouched (the
profiler only exists when ``telemetry_session(profile=True)`` or the CLI
``--profile`` flag asks for it).

Samples ride along in the exported trace as one ``profile`` record, and
``repro report`` renders the top-N self-time table.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["PROFILE_KIND", "SamplingProfiler", "profile_rows"]

PROFILE_KIND = "profile"

# (span stack names, "file.py:lineno function") -> sample count
_SampleKey = Tuple[Tuple[str, ...], str]


def _short_path(filename: str) -> str:
    """Trim a source path to its last two components for readable tables."""
    parts = filename.replace("\\", "/").rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else filename


class SamplingProfiler:
    """Background-thread wall-clock sampler for one Python thread.

    Samples the *creating* thread by default (the one running the engines);
    pass ``thread_id`` to profile another.  ``tracer`` (optional) supplies
    the active span stack so each sample carries the instrumented context
    it landed in.
    """

    def __init__(
        self,
        interval: float = 0.005,
        tracer=None,
        thread_id: Optional[int] = None,
    ):
        self.interval = float(interval)
        self.tracer = tracer
        self.thread_id = (
            thread_id if thread_id is not None else threading.get_ident()
        )
        self.samples: Dict[_SampleKey, int] = {}
        self.total_samples = 0
        self.elapsed = 0.0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._begin = 0.0

    # Lifecycle --------------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        """Start the sampler thread (idempotent)."""
        if self._thread is not None:
            return self
        self._begin = time.perf_counter()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop the sampler and record the profiled wall time (idempotent)."""
        if self._thread is None:
            return self
        self._stop_event.set()
        self._thread.join(timeout=1.0)
        self._thread = None
        self.elapsed += time.perf_counter() - self._begin
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval):
            self._sample_once()

    # Sampling ---------------------------------------------------------------

    def _span_stack(self) -> Tuple[str, ...]:
        stack = getattr(self.tracer, "_stack", None)
        if not stack:
            return ()
        try:
            return tuple(span.name for span in list(stack))
        except (AttributeError, TypeError):  # pragma: no cover - race guard
            return ()

    def _sample_once(self) -> None:
        frame = sys._current_frames().get(self.thread_id)
        if frame is None:
            return
        code = frame.f_code
        location = f"{_short_path(code.co_filename)}:{frame.f_lineno} {code.co_name}"
        key = (self._span_stack(), location)
        self.samples[key] = self.samples.get(key, 0) + 1
        self.total_samples += 1

    # Reporting --------------------------------------------------------------

    def rows(self, top: int = 15) -> List[Dict[str, object]]:
        """Top-N locations by sample count, with span context and est. time."""
        by_location: Dict[Tuple[str, str], int] = {}
        for (stack, location), count in self.samples.items():
            spans = " > ".join(stack) if stack else "-"
            key = (location, spans)
            by_location[key] = by_location.get(key, 0) + count
        total = self.total_samples
        rows: List[Dict[str, object]] = []
        for (location, spans), count in sorted(
            by_location.items(), key=lambda item: -item[1]
        )[:top]:
            rows.append(
                {
                    "location": location,
                    "spans": spans,
                    "samples": count,
                    "share": count / total if total else float("nan"),
                    "est_seconds": (
                        self.elapsed * count / total if total else float("nan")
                    ),
                }
            )
        return rows

    def records(self) -> List[Dict[str, Any]]:
        """One ``profile`` trace record holding every aggregated sample."""
        entries = [
            {"stack": list(stack), "location": location, "samples": count}
            for (stack, location), count in sorted(
                self.samples.items(), key=lambda item: -item[1]
            )
        ]
        return [
            {
                "kind": PROFILE_KIND,
                "interval": self.interval,
                "samples": self.total_samples,
                "elapsed": self.elapsed,
                "entries": entries,
            }
        ]


def profile_rows(records, top: int = 15) -> List[Dict[str, object]]:
    """Build the top-N profiler table from ``profile`` trace records."""
    by_location: Dict[Tuple[str, str], int] = {}
    total = 0
    elapsed = 0.0
    found = False
    for record in records:
        if record.get("kind") != PROFILE_KIND:
            continue
        found = True
        total += int(record.get("samples", 0))
        elapsed += float(record.get("elapsed", 0.0))
        for entry in record.get("entries", ()):
            stack = entry.get("stack") or ()
            spans = " > ".join(stack) if stack else "-"
            key = (str(entry.get("location", "?")), spans)
            by_location[key] = by_location.get(key, 0) + int(
                entry.get("samples", 0)
            )
    if not found:
        return []
    rows: List[Dict[str, object]] = []
    for (location, spans), count in sorted(
        by_location.items(), key=lambda item: -item[1]
    )[:top]:
        rows.append(
            {
                "location": location,
                "spans": spans,
                "samples": count,
                "share": count / total if total else float("nan"),
                "est_seconds": elapsed * count / total if total else float("nan"),
            }
        )
    return rows
