"""Strided batched recording (`BatchConfig.record_every`).

`record_every=1` must reproduce the scalar simulator's dense
``record_every_step`` trajectory; larger strides must sample a subset of
those points; and phase-boundary samples must be untouched by the recording
mode (dense recording never changes the integration itself).
"""

import numpy as np
import pytest

from repro.batch import BatchConfig, BatchSimulator, simulate_batch
from repro.batch.stopping import distance_stop
from repro.core import uniform_policy
from repro.core.simulator import ReroutingSimulator, SimulationConfig
from repro.instances import braess_network, two_link_network
from repro.wardrop import FlowVector


@pytest.fixture(params=[two_link_network, braess_network])
def network(request):
    return request.param()


def scalar_dense(network, policy, start, period, horizon, steps):
    config = SimulationConfig(
        update_period=period, horizon=horizon, steps_per_phase=steps,
        record_every_step=True,
    )
    return ReroutingSimulator(network, policy, config).run(start)


class TestDenseEquivalence:
    def test_stride_one_matches_scalar_record_every_step(self, network):
        policy = uniform_policy(network)
        start = FlowVector.random(network, np.random.default_rng(5))
        result = simulate_batch(
            network, policy, [0.1, 0.25], 1.05, initial_flows=[start, start],
            steps_per_phase=7, record_every=1,
        )
        for row, period in enumerate([0.1, 0.25]):
            reference = scalar_dense(network, policy, start, period, 1.05, 7)
            trajectory = result.trajectory(row)
            assert len(trajectory) == len(reference)
            for ours, theirs in zip(trajectory.points, reference.points):
                assert ours.time == pytest.approx(theirs.time, abs=1e-12)
                assert ours.phase_index == theirs.phase_index
                assert np.allclose(
                    ours.flow.values(), theirs.flow.values(), atol=1e-12
                )
            assert len(trajectory.phases) == len(reference.phases)
            for ours, theirs in zip(trajectory.phases, reference.phases):
                assert np.allclose(
                    ours.end_flow.values(), theirs.end_flow.values(), atol=1e-12
                )

    def test_strided_samples_are_a_subset_of_the_dense_run(self, network):
        policy = uniform_policy(network)
        start = FlowVector.random(network, np.random.default_rng(6))
        dense = simulate_batch(
            network, policy, [0.1], 0.55, initial_flows=[start],
            steps_per_phase=8, record_every=1,
        ).trajectory(0)
        strided = simulate_batch(
            network, policy, [0.1], 0.55, initial_flows=[start],
            steps_per_phase=8, record_every=3,
        ).trajectory(0)
        assert 1 < len(strided) < len(dense)
        dense_times = dense.times
        for point in strided.points:
            k = int(np.argmin(np.abs(dense_times - point.time)))
            assert np.array_equal(point.flow.values(), dense.points[k].flow.values())


class TestBoundariesAndMetadata:
    def test_phase_boundaries_are_identical_to_boundary_only_runs(self, network):
        policy = uniform_policy(network)
        start = FlowVector.random(network, np.random.default_rng(7))
        plain = simulate_batch(
            network, policy, [0.1, 0.2], 1.0, initial_flows=[start, start],
            steps_per_phase=6,
        )
        dense = simulate_batch(
            network, policy, [0.1, 0.2], 1.0, initial_flows=[start, start],
            steps_per_phase=6, record_every=2,
        )
        assert np.array_equal(dense.final_flows(), plain.final_flows())
        for row in range(2):
            assert dense.num_phases(row) == plain.num_phases(row)
            plain_traj = plain.trajectory(row)
            dense_traj = dense.trajectory(row)
            assert len(dense_traj.phases) == len(plain_traj.phases)
            for ours, theirs in zip(dense_traj.phases, plain_traj.phases):
                assert np.array_equal(ours.end_flow.values(), theirs.end_flow.values())

    def test_boundary_only_runs_report_no_dense_metadata(self, network):
        result = simulate_batch(network, uniform_policy(network), [0.1], 0.5)
        assert result.sample_phases is None
        assert result.boundary_mask is None
        assert result.phase_counts is None

    def test_record_every_composes_with_stop_when(self):
        network = two_link_network(beta=4.0)
        policy = uniform_policy(network)
        start = FlowVector(network, [0.9, 0.1])
        stop = distance_stop(np.array([[0.5, 0.5], [0.5, 0.5]]), tolerance=0.05)
        dense = simulate_batch(
            network, policy, [0.1, 0.1], 20.0, initial_flows=[start, start],
            steps_per_phase=5, record_every=2, stop_when=stop,
        )
        plain = simulate_batch(
            network, policy, [0.1, 0.1], 20.0, initial_flows=[start, start],
            steps_per_phase=5, stop_when=stop,
        )
        assert np.array_equal(dense.stop_phases, plain.stop_phases)
        assert dense.stop_phases[0] >= 0
        assert np.array_equal(dense.final_flows(), plain.final_flows())

    def test_invalid_stride_rejected(self):
        with pytest.raises(ValueError, match="record_every"):
            BatchConfig(update_periods=np.array([0.1]), record_every=0)

    def test_simulator_accepts_config_stride(self, network):
        config = BatchConfig(
            update_periods=np.array([0.1]), horizons=0.3, steps_per_phase=4,
            record_every=2,
        )
        result = BatchSimulator(network, uniform_policy(network), config).run()
        assert result.boundary_mask is not None
        count = int(result.num_points[0])
        # Boundary samples close each phase; intermediates carry the phase too.
        boundaries = [k for k in range(count) if result.boundary_mask[0, k]]
        assert boundaries[0] == 0
        assert boundaries[-1] == count - 1
        assert result.num_phases(0) == len(boundaries) - 1
