"""E6 -- Uniform vs proportional sampling head-to-head.

The point of proportional sampling (Theorem 7) is to remove the ``|P|``
factor of the uniform-sampling bound (Theorem 6).  This benchmark runs both
policies on parallel-link families of growing size and reports the number of
weakly-bad update periods side by side: uniform sampling's count should grow
noticeably with the number of links while the replicator's stays flat (or
grows much more slowly), reproducing the qualitative comparison in
Section 1.1 of the paper.
"""

from __future__ import annotations

import pytest

from repro.analysis import count_bad_phases, print_table
from repro.core import replicator_policy, simulate, uniform_policy
from repro.instances import heterogeneous_affine_links
from repro.wardrop import FlowVector

LINK_COUNTS = [2, 4, 8, 16, 32]
DELTA = 0.15
EPSILON = 0.1


def run_policy(network, make_policy, horizon=150.0):
    policy = make_policy(network)
    period = min(policy.safe_update_period(network), 1.0)
    values = [0.05 / (network.num_paths - 1)] * network.num_paths
    values[0] = 0.95
    start = FlowVector(network, values)
    trajectory = simulate(
        network, policy, update_period=period, horizon=horizon,
        initial_flow=start, steps_per_phase=15,
    )
    return count_bad_phases(trajectory, DELTA, EPSILON)


@pytest.mark.experiment("E6")
def test_uniform_vs_proportional_scaling(report_header):
    rows = []
    for num_links in LINK_COUNTS:
        network = heterogeneous_affine_links(num_links, seed=11)
        uniform_summary = run_policy(network, uniform_policy)
        replicator_summary = run_policy(
            network, lambda n: replicator_policy(n, exploration=1e-3)
        )
        rows.append(
            {
                "links(|P|)": num_links,
                "uniform_weak_bad": uniform_summary.weak_bad_phases,
                "replicator_weak_bad": replicator_summary.weak_bad_phases,
                "uniform_bad": uniform_summary.bad_phases,
                "replicator_bad": replicator_summary.bad_phases,
            }
        )
    print_table(rows, title="E6: uniform vs proportional sampling (bad update periods)")
    # The paper's comparison: uniform sampling pays a |P| factor (Theorem 6)
    # that proportional sampling avoids (Theorem 7).  Empirically the uniform
    # policy's bad-phase count must therefore grow faster with the number of
    # links, and for the largest instance the replicator must win outright
    # (a crossover is expected -- on tiny instances the replicator can be
    # slower because it moves little flow off a nearly-pure state).
    smallest, largest = rows[0], rows[-1]
    uniform_growth = largest["uniform_bad"] / max(smallest["uniform_bad"], 1)
    replicator_growth = largest["replicator_bad"] / max(smallest["replicator_bad"], 1)
    assert uniform_growth > replicator_growth
    assert largest["replicator_bad"] < largest["uniform_bad"]


@pytest.mark.experiment("E6")
def test_benchmark_comparison_single_instance(benchmark, report_header):
    network = heterogeneous_affine_links(16, seed=11)
    summary = benchmark(run_policy, network, uniform_policy, 40.0)
    assert summary.total_phases > 0
