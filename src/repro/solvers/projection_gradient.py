"""Path-based projection-gradient solver for enumerable instances.

Frank--Wolfe moves along segments towards all-or-nothing vertices, which
zig-zags near optimality; the classical path-based alternative (Jayakrishnan
et al.'s gradient projection, the workhorse of path-based traffic
assignment) instead shifts flow *within each commodity* directly onto its
cheapest path, scaling every shift by the second-order information the
Beckmann objective exposes for free:

    shift_P = (c_P - c_B) / sum_{e in P xor B} l_e'(f_e)

where ``B`` is the commodity's cheapest (basic) path and the denominator
sums the latency slopes over the edges by which ``P`` and ``B`` differ -- a
diagonal-Newton step in the per-commodity simplex.  Shifts are clipped at
the available path flow (the projection), and a backtracking guard halves
the step scale whenever a full sweep would increase the Beckmann potential
(curvature grows with congestion, so the unit Newton step can overshoot).

The solver needs the enumerated path set (the state is one number per path),
so it complements -- not replaces -- the oracle-driven edge-space methods of
:mod:`repro.solvers.edge_frank_wolfe`: use it on enumerable instances where
per-path flows are wanted, use CFW/BFW on road networks.

Convergence is certified by the same Frank--Wolfe duality gap as
:func:`~repro.solvers.frank_wolfe.solve_wardrop_equilibrium`, so results of
the two path-space methods are directly comparable.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from ..wardrop.potential import potential
from .frank_wolfe import EquilibriumResult, all_or_nothing_flow

# Derivative sums can vanish on all-constant-latency instances; the shift
# then has no curvature to scale by and falls back to moving the whole
# excess flow (clipped at feasibility, so still a valid projection).
MIN_CURVATURE = 1e-12

# The backtracking guard halves the sweep scale at most this many times per
# iteration before accepting the (tiny) step anyway.
MAX_BACKTRACKS = 30


def _beckmann(network: WardropNetwork, path_flows: np.ndarray) -> float:
    """Return the Beckmann potential of a path-flow vector."""
    edge_flows = network.edge_flows(path_flows)
    return float(
        sum(
            network.latency_function(edge).integral(edge_flows[i])
            for i, edge in enumerate(network.edges)
        )
    )


def _sweep(
    network: WardropNetwork,
    flow: np.ndarray,
    costs: np.ndarray,
    derivatives: np.ndarray,
    scale: float,
) -> np.ndarray:
    """One gradient-projection sweep: shift every commodity onto its basic path.

    All shifts are computed from the same snapshot (``costs`` /
    ``derivatives`` at ``flow``), which keeps the sweep deterministic and
    independent of commodity order.
    """
    incidence = network.incidence
    result = flow.copy()
    for i in range(network.num_commodities):
        indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
        if len(indices) < 2:
            continue
        local_costs = costs[indices]
        basic_local = int(np.argmin(local_costs))
        basic = indices[basic_local]
        columns = incidence[:, indices]
        # Curvature over the symmetric difference with the basic path:
        # incidence entries are 0/1, so |column - basic column| marks
        # exactly the edges the two routes do not share.
        difference = np.abs(columns - columns[:, [basic_local]])
        curvature = derivatives @ difference
        excess = local_costs - local_costs[basic_local]
        shifts = np.where(
            curvature > MIN_CURVATURE,
            scale * excess / np.maximum(curvature, MIN_CURVATURE),
            np.where(excess > 0.0, np.inf, 0.0),
        )
        shifts = np.minimum(shifts, flow[indices])
        shifts[basic_local] = 0.0
        result[indices] -= shifts
        result[basic] += float(shifts.sum())
    return result


def solve_path_projection_gradient(
    network: WardropNetwork,
    tolerance: float = 1e-8,
    max_iterations: int = 2000,
    initial: Optional[FlowVector] = None,
) -> EquilibriumResult:
    """Compute a Wardrop equilibrium by path-based gradient projection.

    Parameters mirror :func:`~repro.solvers.frank_wolfe.solve_wardrop_equilibrium`:
    ``tolerance`` is the absolute Frank--Wolfe duality gap (same certificate,
    so tolerances carry over), ``max_iterations`` caps the sweeps and
    ``initial`` warm-starts from a feasible flow (default: uniform split).
    """
    flow = (FlowVector.uniform(network) if initial is None else initial).values()
    gap_history: List[float] = []
    converged = False
    iterations = 0
    scale = 1.0
    value = _beckmann(network, flow)
    for iterations in range(1, max_iterations + 1):
        edge_flows = network.edge_flows(flow)
        edge_latencies = network.edge_latencies(edge_flows)
        costs = network.path_latencies_from_edge_latencies(edge_latencies)
        target = all_or_nothing_flow(network, costs)
        gap = float(np.dot(costs, flow - target))
        gap_history.append(gap)
        if gap <= tolerance:
            converged = True
            break
        derivatives = network.edge_latency_derivatives(edge_flows)
        for _ in range(MAX_BACKTRACKS):
            candidate = _sweep(network, flow, costs, derivatives, scale)
            candidate_value = _beckmann(network, candidate)
            if candidate_value <= value:
                break
            scale *= 0.5
        flow = candidate
        value = candidate_value
        # Re-open the step for the next sweep; congestion-driven curvature
        # changes, so a permanently shrunk scale would crawl.
        scale = min(1.0, scale * 2.0)
    result_flow = FlowVector(network, flow).projected()
    final_costs = network.path_latencies(result_flow.values())
    final_target = all_or_nothing_flow(network, final_costs)
    final_gap = float(np.dot(final_costs, result_flow.values() - final_target))
    return EquilibriumResult(
        flow=result_flow,
        potential_value=potential(result_flow),
        duality_gap=final_gap,
        iterations=iterations,
        converged=converged or final_gap <= tolerance,
        gap_history=gap_history,
        method="pg",
    )
