"""Batch-vs-scalar equivalence: the batched engine must reproduce the scalar
simulator trajectory for every row of the ensemble.

These tests are the correctness contract of :mod:`repro.batch`: for Pigou and
Braess, under stale and fresh information, for both integration methods, for
mixed per-row update periods, and through the row-loop fallback for custom
policy components, every recorded sample of every row must match the scalar
:class:`~repro.core.simulator.ReroutingSimulator` within 1e-10 (in practice
the runs are bit-identical).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchConfig, BatchSimulator, simulate_batch
from repro.core import (
    ReroutingPolicy,
    replicator_policy,
    scaled_policy,
    simulate,
    uniform_policy,
)
from repro.core.migration import MigrationRule
from repro.core.sampling import SamplingRule
from repro.instances import braess_network, pigou_network
from repro.wardrop import FlowVector

TOLERANCE = 1e-10


def assert_rows_match_scalar(network, policies, periods, horizon, starts, stale,
                             steps_per_phase=10, method="rk4"):
    """Run the batch and every scalar counterpart and compare trajectories."""
    policy_list = policies if isinstance(policies, list) else [policies] * len(periods)
    result = simulate_batch(
        network, policies, periods, horizon,
        initial_flows=starts, stale=stale,
        steps_per_phase=steps_per_phase, method=method,
    )
    for row, (policy, period, start) in enumerate(zip(policy_list, periods, starts)):
        scalar = simulate(
            network, policy, update_period=period, horizon=horizon,
            initial_flow=start, stale=stale,
            steps_per_phase=steps_per_phase, method=method,
        )
        batched = result.trajectory(row)
        assert len(batched.points) == len(scalar.points)
        assert len(batched.phases) == len(scalar.phases)
        assert np.allclose(batched.times, scalar.times, atol=TOLERANCE)
        assert np.allclose(batched.flow_matrix(), scalar.flow_matrix(), atol=TOLERANCE)
        for got, expected in zip(batched.phases, scalar.phases):
            assert got.index == expected.index
            assert abs(got.start_time - expected.start_time) <= TOLERANCE
            assert abs(got.end_time - expected.end_time) <= TOLERANCE
            assert got.start_flow.distance_to(expected.start_flow) <= TOLERANCE
            assert got.end_flow.distance_to(expected.end_flow) <= TOLERANCE


class TestPigouProperty:
    @settings(max_examples=8, deadline=None)
    @given(
        period=st.floats(min_value=0.05, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31),
        stale=st.booleans(),
    )
    def test_single_row_matches_scalar(self, period, seed, stale):
        network = pigou_network(degree=2)
        policy = replicator_policy(network)
        rng = np.random.default_rng(seed)
        starts = [FlowVector.random(network, rng) for _ in range(3)]
        periods = [period, 0.11, 0.17]
        assert_rows_match_scalar(network, policy, periods, 1.0, starts, stale)


class TestBraess:
    @pytest.mark.parametrize("stale", [True, False])
    def test_uniform_policy_matches_scalar(self, stale):
        network = braess_network()
        policy = uniform_policy(network)
        rng = np.random.default_rng(7)
        starts = [FlowVector.random(network, rng) for _ in range(4)]
        periods = [0.05, 0.07, 0.1, 0.25]
        assert_rows_match_scalar(network, policy, periods, 1.3, starts, stale)

    def test_replicator_euler_matches_scalar(self):
        network = braess_network()
        policy = replicator_policy(network)
        starts = [FlowVector.uniform(network)] * 3
        periods = [0.06, 0.1, 0.15]
        assert_rows_match_scalar(
            network, policy, periods, 0.9, starts, stale=True, method="euler"
        )


class TestMixedPeriods:
    def test_rows_with_different_periods_and_horizontally_truncated_phases(self):
        """Periods that do not divide the horizon exercise truncated phases."""
        network = pigou_network(degree=1)
        policy = replicator_policy(network)
        rng = np.random.default_rng(3)
        starts = [FlowVector.random(network, rng) for _ in range(5)]
        periods = [0.03, 0.09, 0.13, 0.4, 1.7]
        assert_rows_match_scalar(network, policy, periods, 1.1, starts, stale=True)

    def test_mixed_periods_fresh_information(self):
        network = braess_network()
        policy = uniform_policy(network)
        starts = [FlowVector.uniform(network)] * 3
        assert_rows_match_scalar(
            network, policy, [0.04, 0.11, 0.35], 0.8, starts, stale=False
        )


class SquaredGapMigration(MigrationRule):
    """A custom rule with no vectorised kernel: exercises the row-loop fallback."""

    def probability(self, latency_from: float, latency_to: float) -> float:
        if latency_from <= latency_to:
            return 0.0
        return min(1.0, (latency_from - latency_to) ** 2)


class EveryOtherSampling(SamplingRule):
    """A custom sampling rule with no vectorised kernel (uniform probabilities)."""

    def probabilities(self, network, posted_flows, posted_path_latencies):
        sigma = np.zeros((network.num_paths, network.num_paths))
        for i in range(network.num_commodities):
            indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
            sigma[np.ix_(indices, indices)] = 1.0 / len(indices)
        return sigma


class TestFallbacks:
    def test_custom_policy_row_loop_fallback(self):
        """Policies without batch kernels must still match the scalar runs."""
        network = braess_network()
        policy = ReroutingPolicy(
            sampling=EveryOtherSampling(), migration=SquaredGapMigration(), name="custom"
        )
        starts = [FlowVector.uniform(network)] * 2
        assert_rows_match_scalar(network, policy, [0.1, 0.22], 0.9, starts, stale=True)

    def test_per_row_policies(self):
        """A list of per-row policies (different smoothness) matches scalars."""
        network = pigou_network(degree=1)
        policies = [scaled_policy(alpha) for alpha in (0.5, 1.0, 2.0)]
        starts = [FlowVector.uniform(network)] * 3
        periods = [0.1, 0.1, 0.15]
        assert_rows_match_scalar(network, policies, periods, 1.0, starts, stale=True)


class TestConfigValidation:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            BatchConfig(update_periods=np.array([0.1, -0.2]))

    def test_rejects_wrong_policy_count(self):
        network = pigou_network(degree=1)
        config = BatchConfig(update_periods=np.array([0.1, 0.2]), horizons=1.0)
        with pytest.raises(ValueError):
            BatchSimulator(network, [replicator_policy(network)], config)

    def test_rejects_wrong_initial_shape(self):
        network = pigou_network(degree=1)
        config = BatchConfig(update_periods=np.array([0.1, 0.2]), horizons=1.0)
        simulator = BatchSimulator(network, replicator_policy(network), config)
        with pytest.raises(ValueError):
            simulator.run(np.zeros((3, network.num_paths)))
