"""Exact equilibrium solver for single-commodity parallel-link networks.

Parallel-link networks (one source, one sink, ``m`` parallel edges) are the
workhorse instances of the paper's analysis -- the oscillation example of
Section 3.2 is the two-link case -- and they admit an exact equilibrium
characterisation: at a Wardrop equilibrium there is a common latency level
``lambda`` such that every used link has latency exactly ``lambda`` and every
unused link has latency at least ``lambda``.  Because each link latency is
non-decreasing, the amount of flow a link absorbs at level ``lambda`` is a
non-decreasing function of ``lambda``; the equilibrium level is found by
bisection on ``lambda`` (a "water-filling" argument).

This solver is used as an independent ground truth to cross-check the
Frank--Wolfe solver and the adaptive dynamics on the instance families used
in the benchmarks.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..wardrop.flow import FlowVector
from ..wardrop.latency import LatencyFunction
from ..wardrop.network import WardropNetwork


def _is_parallel_link_network(network: WardropNetwork) -> bool:
    """Return True if the instance is single-commodity with single-edge paths."""
    if network.num_commodities != 1:
        return False
    return all(len(path) == 1 for path in network.paths)


def _flow_absorbed_at_level(latency: LatencyFunction, level: float, tolerance: float = 1e-12) -> float:
    """Return the largest flow ``x in [0, 1]`` with ``latency(x) <= level``.

    Monotonicity of the latency makes this a bisection on ``x``.
    """
    if latency.value(0.0) > level:
        return 0.0
    if latency.value(1.0) <= level:
        return 1.0
    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if latency.value(mid) <= level:
            lo = mid
        else:
            hi = mid
    return lo


def solve_parallel_links(network: WardropNetwork, tolerance: float = 1e-12) -> FlowVector:
    """Return the exact Wardrop equilibrium of a parallel-link network.

    Raises ``ValueError`` if the network is not a single-commodity
    parallel-link instance (every path one edge long).
    """
    if not _is_parallel_link_network(network):
        raise ValueError("solve_parallel_links requires a single-commodity parallel-link network")
    demand = network.commodities[0].demand
    latencies: List[LatencyFunction] = [
        network.latency_function(path.edges[0]) for path in network.paths
    ]

    def routed_at_level(level: float) -> float:
        return sum(_flow_absorbed_at_level(latency, level) for latency in latencies)

    # Bracket the equilibrium latency level.
    lo = min(latency.value(0.0) for latency in latencies)
    hi = max(latency.value(1.0) for latency in latencies)
    if routed_at_level(lo) >= demand:
        level = lo
    else:
        for _ in range(200):
            if hi - lo <= tolerance * max(1.0, abs(hi)):
                break
            mid = 0.5 * (lo + hi)
            if routed_at_level(mid) >= demand:
                hi = mid
            else:
                lo = mid
        level = hi

    # Distribute the demand: links with value(0) < level are filled to their
    # absorption point; links exactly at the level absorb the remainder.
    flows = np.array([_flow_absorbed_at_level(latency, level) for latency in latencies])
    total = flows.sum()
    if total <= 0:
        flows = np.full(len(latencies), demand / len(latencies))
    else:
        flows *= demand / total
    return FlowVector(network, flows).projected()


def equilibrium_latency_level(network: WardropNetwork, tolerance: float = 1e-12) -> float:
    """Return the common latency level of the parallel-link equilibrium."""
    flow = solve_parallel_links(network, tolerance=tolerance)
    latencies = flow.path_latencies()
    used = flow.values() > 1e-9
    if not used.any():
        return float(latencies.min())
    return float(latencies[used].max())
