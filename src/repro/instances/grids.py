"""Grid networks: multi-commodity instances with longer paths.

An ``n x m`` directed grid (edges pointing right and down) with affine edge
latencies gives instances whose maximum path length ``D`` grows with the grid
size, which is exactly the knob the safe-update-period bound
``T* = 1/(4 D alpha beta)`` depends on.  Commodities route from the top-left
region to the bottom-right region.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np

from ..wardrop.commodity import Commodity
from ..wardrop.latency import AffineLatency
from ..wardrop.network import LATENCY_ATTR, WardropNetwork


def grid_network(
    rows: int,
    cols: int,
    num_commodities: int = 1,
    slope_range: tuple = (0.5, 1.5),
    intercept_range: tuple = (0.0, 0.5),
    seed: Optional[int] = 0,
    max_paths: int = 10_000,
) -> WardropNetwork:
    """Build a ``rows x cols`` grid with random affine latencies.

    Edges point right and down only, so every path from the top-left corner
    to the bottom-right corner has exactly ``rows + cols - 2`` edges.
    Commodities are chosen as corner-to-corner pairs of nested sub-grids so
    that they overlap (and therefore interact through shared edges).
    """
    if rows < 2 or cols < 2:
        raise ValueError("grid must be at least 2 x 2")
    if num_commodities < 1:
        raise ValueError("need at least one commodity")
    rng = np.random.default_rng(seed)
    graph = nx.MultiDiGraph()
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge(
                    (r, c),
                    (r, c + 1),
                    **{LATENCY_ATTR: _random_affine(rng, slope_range, intercept_range)},
                )
            if r + 1 < rows:
                graph.add_edge(
                    (r, c),
                    (r + 1, c),
                    **{LATENCY_ATTR: _random_affine(rng, slope_range, intercept_range)},
                )
    commodities: List[Commodity] = []
    for i in range(num_commodities):
        # Nested corner pairs: (0,0)->(rows-1,cols-1), (0,1)->(rows-1,cols-2), ...
        source = (0, min(i, cols - 2))
        sink = (rows - 1, max(cols - 1 - i, 1))
        if source[1] >= sink[1]:
            source = (0, 0)
            sink = (rows - 1, cols - 1)
        commodities.append(Commodity(source, sink, 1.0, name=f"grid-{i}"))
    return WardropNetwork(graph, commodities, normalise=True, max_paths=max_paths)


def _random_affine(rng: np.random.Generator, slope_range: tuple, intercept_range: tuple) -> AffineLatency:
    return AffineLatency(
        slope=float(rng.uniform(*slope_range)),
        intercept=float(rng.uniform(*intercept_range)),
    )
