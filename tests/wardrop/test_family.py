"""Unit tests for coefficient-stacked latency evaluation (LatencyStack) and
same-topology network families (NetworkFamily, topology_signature)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances import braess_network, pigou_network, two_link_network
from repro.wardrop import FlowVector, LatencyStack, NetworkFamily, topology_signature
from repro.wardrop.latency import (
    AffineLatency,
    BPRLatency,
    ConstantLatency,
    LatencyFunction,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PiecewiseLinearLatency,
    PolynomialLatency,
    SumLatency,
    ThresholdLatency,
)

SAMPLES = np.array([0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0])

# One stack of four same-type, different-coefficient functions per class.
STACKS = [
    [ConstantLatency(c) for c in (0.5, 1.0, 1.5, 2.5)],
    [LinearLatency(a) for a in (0.5, 1.0, 2.0, 3.5)],
    [AffineLatency(a, b) for a, b in ((0.5, 0.1), (1.0, 0.0), (2.0, 0.7), (0.1, 1.3))],
    [PolynomialLatency(c) for c in ([0.5, 0.0, 2.0], [1.0, 1.0, 1.0], [0.0, 2.0, 0.5], [0.3, 0.1, 0.0])],
    [MonomialLatency(a, d) for a, d in ((0.5, 1), (1.5, 2), (2.0, 3), (1.0, 2))],
    [MonomialLatency(a, 2) for a in (0.5, 1.0, 1.5, 2.0)],
    [BPRLatency(t, c) for t, c in ((1.0, 0.8), (0.5, 1.2), (2.0, 0.9), (1.5, 1.1))],
    [BPRLatency(1.0, 0.9, beta=b) for b in (1, 2, 4, 3)],
    [MM1Latency(c) for c in (1.3, 1.5, 2.0, 3.0)],
    [ThresholdLatency(beta=b) for b in (1.0, 2.0, 4.0, 8.0)],
    [
        PiecewiseLinearLatency([(0.0, y0), (0.4, y1), (1.0, y2)])
        for y0, y1, y2 in ((0.0, 0.1, 2.0), (0.1, 0.1, 1.0), (0.0, 0.5, 0.5), (0.2, 0.3, 0.4))
    ],
    [LinearLatency(a).scaled(s) for a, s in ((1.0, 0.5), (2.0, 0.25), (0.5, 2.0), (1.5, 1.0))],
    [
        SumLatency([LinearLatency(a), ConstantLatency(b)])
        for a, b in ((1.0, 0.3), (2.0, 0.0), (0.5, 1.0), (0.1, 0.7))
    ],
]


def stack_id(functions):
    return type(functions[0]).__name__


class TestLatencyStack:
    @pytest.mark.parametrize("functions", STACKS, ids=stack_id)
    def test_stacked_values_match_scalar_exactly(self, functions):
        stack = LatencyStack(functions)
        assert stack.vectorised, "built-in families must have a stacked evaluator"
        for x in SAMPLES:
            flows = np.full(len(functions), float(x))
            expected = np.array([f.value(v) for f, v in zip(functions, flows)])
            np.testing.assert_allclose(stack.values(flows), expected, rtol=0, atol=0)
        # Distinct per-row flows as well.
        flows = np.linspace(0.05, 0.95, len(functions))
        expected = np.array([f.value(v) for f, v in zip(functions, flows)])
        np.testing.assert_allclose(stack.values(flows), expected, rtol=0, atol=0)

    @pytest.mark.parametrize("functions", STACKS, ids=stack_id)
    def test_row_subsets_match_full_evaluation(self, functions):
        stack = LatencyStack(functions)
        rows = np.array([2, 0, 3])
        flows = np.array([0.3, 0.8, 0.55])
        expected = np.array([functions[r].value(v) for r, v in zip(rows, flows)])
        np.testing.assert_allclose(stack.values(flows, rows), expected, rtol=0, atol=0)

    def test_shared_function_uses_value_array(self):
        shared = LinearLatency(2.0)
        stack = LatencyStack([shared, shared, shared])
        assert stack.shared and stack.vectorised
        np.testing.assert_allclose(stack.values(SAMPLES[:3]), 2.0 * SAMPLES[:3])

    def test_mixed_types_fall_back_to_row_loop(self):
        stack = LatencyStack([ConstantLatency(1.0), LinearLatency(2.0)])
        assert not stack.vectorised
        np.testing.assert_allclose(stack.values(np.array([0.4, 0.4])), [1.0, 0.8])

    def test_mismatched_breakpoints_vectorise_via_padding(self):
        # Per-row breakpoint x-coordinates (and even counts) pad to a common
        # width instead of falling back to the row loop; values stay
        # bit-identical to the scalar evaluation.
        stack = LatencyStack(
            [
                PiecewiseLinearLatency([(0.0, 0.0), (0.4, 0.1), (1.0, 2.0)]),
                PiecewiseLinearLatency([(0.0, 0.0), (0.6, 0.1), (1.0, 2.0)]),
                PiecewiseLinearLatency([(0.0, 0.0), (0.2, 0.05), (0.7, 0.4), (1.0, 2.0)]),
            ]
        )
        assert stack.vectorised
        for x in (0.0, 0.1, 0.2, 0.4, 0.5, 0.6, 0.65, 0.7, 0.95, 1.0):
            flows = np.full(3, x)
            expected = np.array([f.value(x) for f in stack.functions])
            np.testing.assert_allclose(stack.values(flows), expected, rtol=0, atol=0)

    def test_mismatched_polynomial_lengths_fall_back(self):
        stack = LatencyStack([PolynomialLatency([1.0, 2.0]), PolynomialLatency([1.0, 2.0, 3.0])])
        assert not stack.vectorised
        np.testing.assert_allclose(stack.values(np.array([0.5, 0.5])), [2.0, 2.75])

    def test_custom_subclass_without_stacked_form_falls_back(self):
        class Quadratic(LatencyFunction):
            def __init__(self, a):
                self.a = a

            def value(self, x):
                return self.a * x * x

            def derivative(self, x):
                return 2.0 * self.a * x

            def integral(self, x):
                return self.a * x**3 / 3.0

        stack = LatencyStack([Quadratic(1.0), Quadratic(2.0)])
        assert not stack.vectorised
        np.testing.assert_allclose(stack.values(np.array([0.5, 0.5])), [0.25, 0.5])

    def test_rejects_empty_stack(self):
        with pytest.raises(ValueError):
            LatencyStack([])


class TestTopologySignature:
    def test_same_topology_different_coefficients_share_signature(self):
        assert topology_signature(pigou_network(degree=1)) == topology_signature(
            pigou_network(degree=3, constant=2.0)
        )
        assert topology_signature(two_link_network(beta=1.0)) == topology_signature(
            two_link_network(beta=8.0)
        )

    def test_different_topologies_differ(self):
        assert topology_signature(pigou_network()) != topology_signature(braess_network())
        assert topology_signature(braess_network(with_shortcut=True)) != topology_signature(
            braess_network(with_shortcut=False)
        )


class TestNetworkFamily:
    def test_validates_topology(self):
        with pytest.raises(ValueError):
            NetworkFamily([pigou_network(), braess_network()])
        with pytest.raises(ValueError):
            NetworkFamily([])

    def test_from_builder_and_replicate(self):
        family = NetworkFamily.from_builder(
            pigou_network, [{"degree": 1, "constant": c} for c in (0.5, 1.0, 1.5)]
        )
        assert family.size == 3
        assert family.vectorised
        shared = NetworkFamily.replicate(braess_network(), 4)
        assert shared.size == 4 and shared.member(2) is shared.base
        with pytest.raises(ValueError):
            NetworkFamily.replicate(braess_network(), 0)

    def test_edge_latencies_match_members(self):
        constants = (0.5, 1.0, 1.5)
        networks = [pigou_network(degree=2, constant=c) for c in constants]
        family = NetworkFamily(networks)
        rng = np.random.default_rng(3)
        flows = np.stack([FlowVector.random(net, rng).values() for net in networks])
        edge_flows = family.edge_flows_batch(flows)
        edge_latencies = family.edge_latencies_batch(edge_flows)
        path_latencies = family.path_latencies_batch(flows)
        for row, network in enumerate(networks):
            np.testing.assert_allclose(
                edge_latencies[row],
                network.edge_latencies(network.edge_flows(flows[row])),
                rtol=0,
                atol=0,
            )
            np.testing.assert_allclose(
                path_latencies[row], network.path_latencies(flows[row]), rtol=0, atol=0
            )

    def test_row_subset_evaluation(self):
        networks = [two_link_network(beta=b) for b in (1.0, 2.0, 4.0)]
        family = NetworkFamily(networks)
        flows = np.array([[0.8, 0.2], [0.7, 0.3]])
        rows = np.array([2, 0])
        latencies = family.path_latencies_batch(flows, rows)
        for i, row in enumerate(rows):
            np.testing.assert_allclose(
                latencies[i], networks[row].path_latencies(flows[i]), rtol=0, atol=0
            )

    def test_family_constants_bound_members(self):
        networks = [two_link_network(beta=b) for b in (1.0, 8.0)]
        family = NetworkFamily(networks)
        assert family.max_slope() == max(n.max_slope() for n in networks)
        assert family.max_latency() == max(n.max_latency() for n in networks)


class TestFromCoefficients:
    """`NetworkFamily.from_coefficients` synthesises members without graphs."""

    def build_pair(self):
        """The same Pigou constant sweep built both ways."""
        constants = (0.5, 0.75, 1.0, 1.25)
        base = pigou_network(degree=1)
        constant_edge = next(
            i
            for i, edge in enumerate(base.edges)
            if isinstance(base.latency_function(edge), ConstantLatency)
        )
        built = NetworkFamily.from_builder(
            pigou_network, [{"degree": 1, "constant": c} for c in constants]
        )
        synthesised = NetworkFamily.from_coefficients(
            base, [{constant_edge: ConstantLatency(c)} for c in constants]
        )
        return built, synthesised, base

    def test_matches_graph_built_family_latency_stack(self):
        built, synthesised, base = self.build_pair()
        assert synthesised.size == built.size
        assert synthesised.vectorised
        rng = np.random.default_rng(11)
        flows = rng.dirichlet(np.ones(base.num_paths), size=built.size)
        np.testing.assert_array_equal(
            synthesised.path_latencies_batch(flows), built.path_latencies_batch(flows)
        )
        edge_flows = built.edge_flows_batch(flows)
        np.testing.assert_array_equal(
            synthesised.edge_latencies_batch(edge_flows),
            built.edge_latencies_batch(edge_flows),
        )
        # Per-edge stacks agree function by function on a subset of rows too.
        rows = np.array([3, 1])
        np.testing.assert_array_equal(
            synthesised.edge_latencies_batch(edge_flows[rows], rows),
            built.edge_latencies_batch(edge_flows[rows], rows),
        )

    def test_members_share_structure_but_own_their_latencies(self):
        built, synthesised, base = self.build_pair()
        for member, reference in zip(synthesised.networks, built.networks):
            # Shared topology objects: no graph or path set was rebuilt.
            assert member.paths is base.paths
            assert member.incidence is base.incidence
            # Per-member theory constants still reflect the overrides.
            assert member.max_latency() == reference.max_latency()
            assert member.max_slope() == reference.max_slope()
        # The base instance itself is untouched by the overrides.
        assert base.latency_function(base.edges[0]).value(0.0) == pytest.approx(
            pigou_network(degree=1).latency_function(base.edges[0]).value(0.0)
        )

    def test_edge_keys_accept_triples_and_validates(self):
        _, _, base = self.build_pair()
        edge = base.edges[0]
        clone = base.with_latencies({edge: ConstantLatency(2.0)})
        assert clone.latency_function(edge).value(0.3) == 2.0
        with pytest.raises(ValueError, match="unknown edge"):
            base.with_latencies({("x", "y", 0): ConstantLatency(1.0)})
        with pytest.raises(ValueError, match="not a LatencyFunction"):
            base.with_latencies({edge: 3.0})
        with pytest.raises(ValueError):
            NetworkFamily.from_coefficients(base, [])

    def test_overridden_clones_flow_through_social_cost(self):
        """Derived quantities must see the overrides, not the base graph's
        latencies (code-review regression: optimal_flow/price_of_anarchy
        previously read the shared graph attributes directly)."""
        from repro.wardrop.social_cost import optimal_flow, price_of_anarchy

        base = pigou_network(degree=1, constant=1.0)
        constant_edge = next(
            i
            for i, edge in enumerate(base.edges)
            if isinstance(base.latency_function(edge), ConstantLatency)
        )
        clone = base.with_latencies({constant_edge: ConstantLatency(0.25)})
        reference = pigou_network(degree=1, constant=0.25)
        np.testing.assert_allclose(
            optimal_flow(clone).values(), optimal_flow(reference).values(), atol=1e-6
        )
        cost_eq, cost_opt, ratio = price_of_anarchy(clone)
        ref_eq, ref_opt, ref_ratio = price_of_anarchy(reference)
        assert ratio >= 1.0
        assert ratio == pytest.approx(ref_ratio, abs=1e-6)
