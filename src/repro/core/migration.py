"""Migration rules: the second step of the two-step rerouting policy.

Having sampled a path ``Q``, the agent migrates from its current path ``P``
to ``Q`` with probability ``mu(l_P, l_Q)`` evaluated on the *posted* (stale)
latencies.  The paper requires, for convergence,

* ``mu(l_P, l_Q) = 0`` whenever ``l_Q >= l_P`` (migration is selfish),
* ``mu`` Lipschitz continuous and non-negative,
* **alpha-smoothness** (Definition 2): ``mu(l_P, l_Q) <= alpha * (l_P - l_Q)``
  for all ``l_P >= l_Q``.

The rules implemented here:

* :class:`BetterResponseMigration` -- switch whenever the sampled path is
  better.  NOT alpha-smooth for any alpha; included as the paper's negative
  example (it oscillates under stale information).
* :class:`LinearMigration` -- ``mu = (l_P - l_Q) / l_max``; this is
  ``1/l_max``-smooth and is the rule analysed in Theorems 6 and 7.
* :class:`ScaledLinearMigration` -- ``mu = min(1, alpha * (l_P - l_Q))`` for a
  caller-chosen ``alpha``; used to sweep the smoothness parameter in the
  staleness-threshold benchmark.
* :class:`SmoothedBetterResponseMigration` -- a steep but Lipschitz ramp that
  approximates better response while technically remaining alpha-smooth with
  a large alpha.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np


class MigrationRule(ABC):
    """A migration-probability function ``mu(l_P, l_Q) in [0, 1]``."""

    @abstractmethod
    def probability(self, latency_from: float, latency_to: float) -> float:
        """Return the probability of migrating from latency ``l_P`` to ``l_Q``."""

    def matrix(self, path_latencies: np.ndarray) -> np.ndarray:
        """Return the matrix ``mu[p, q] = mu(l_p, l_q)`` for posted latencies."""
        size = len(path_latencies)
        result = np.zeros((size, size))
        for p in range(size):
            for q in range(size):
                if p != q:
                    result[p, q] = self.probability(
                        float(path_latencies[p]), float(path_latencies[q])
                    )
        return result

    def matrix_batch(self, path_latencies: np.ndarray) -> np.ndarray:
        """Return a ``(B, P, P)`` stack of migration matrices for ``(B, P)`` latencies.

        The default loops over the batch rows and calls :meth:`matrix`, so
        custom migration rules work in the batched engine unchanged; the
        built-in linear/better-response family overrides this with a
        vectorised implementation matching the scalar arithmetic exactly.
        """
        return np.stack([self.matrix(row) for row in path_latencies])

    @staticmethod
    def _pairwise_improvements(path_latencies: np.ndarray) -> np.ndarray:
        """Return ``diff[b, p, q] = l_p - l_q`` for a ``(B, P)`` latency batch."""
        return path_latencies[:, :, None] - path_latencies[:, None, :]

    @property
    def smoothness(self) -> Optional[float]:
        """Return the smallest known alpha for which the rule is alpha-smooth.

        ``None`` means the rule is not alpha-smooth for any finite alpha
        (e.g. better response).
        """
        return None

    def is_selfish(self) -> bool:
        """Return True if the rule never migrates towards a worse path."""
        return True

    @property
    def name(self) -> str:
        return type(self).__name__


class BetterResponseMigration(MigrationRule):
    """Switch with probability one whenever the sampled path is strictly better.

    The canonical *non-smooth* rule: it is discontinuous at ``l_P = l_Q`` and
    therefore not alpha-smooth for any alpha.  Under stale information the
    combination with (almost) any sampling rule oscillates; the paper uses the
    two-link instance to show this analytically for best response.
    """

    def probability(self, latency_from: float, latency_to: float) -> float:
        return 1.0 if latency_from > latency_to else 0.0

    def matrix_batch(self, path_latencies: np.ndarray) -> np.ndarray:
        diff = self._pairwise_improvements(path_latencies)
        return (diff > 0.0).astype(float)

    @property
    def smoothness(self) -> Optional[float]:
        return None


class LinearMigration(MigrationRule):
    """The paper's linear migration policy ``mu = max(0, (l_P - l_Q) / l_max)``.

    ``l_max`` must be an upper bound on any path latency, which makes the
    probability always lie in ``[0, 1]`` and the rule ``1/l_max``-smooth.
    """

    def __init__(self, max_latency: float):
        if max_latency <= 0:
            raise ValueError("l_max must be positive")
        self.max_latency = float(max_latency)

    def probability(self, latency_from: float, latency_to: float) -> float:
        if latency_from <= latency_to:
            return 0.0
        return min(1.0, (latency_from - latency_to) / self.max_latency)

    def matrix_batch(self, path_latencies: np.ndarray) -> np.ndarray:
        diff = self._pairwise_improvements(path_latencies)
        mu = np.minimum(1.0, diff / self.max_latency)
        mu[diff <= 0.0] = 0.0
        return mu

    @property
    def smoothness(self) -> Optional[float]:
        return 1.0 / self.max_latency

    def __repr__(self) -> str:
        return f"LinearMigration(l_max={self.max_latency})"


class ScaledLinearMigration(MigrationRule):
    """``mu = min(1, alpha * (l_P - l_Q))`` for a chosen smoothness ``alpha``.

    Sweeping ``alpha`` (equivalently, sweeping the effective update period
    against the safe period ``T* = 1/(4 D alpha beta)``) is how the
    staleness-threshold benchmark probes the sharpness of Lemma 4.

    Note the rule is exactly ``alpha``-smooth as long as
    ``alpha * (l_P - l_Q) <= 1`` on the reachable latency range; the cap at 1
    only makes it *smoother*.
    """

    def __init__(self, alpha: float):
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)

    def probability(self, latency_from: float, latency_to: float) -> float:
        if latency_from <= latency_to:
            return 0.0
        return min(1.0, self.alpha * (latency_from - latency_to))

    def matrix_batch(self, path_latencies: np.ndarray) -> np.ndarray:
        diff = self._pairwise_improvements(path_latencies)
        mu = np.minimum(1.0, self.alpha * diff)
        mu[diff <= 0.0] = 0.0
        return mu

    @property
    def smoothness(self) -> Optional[float]:
        return self.alpha

    def __repr__(self) -> str:
        return f"ScaledLinearMigration(alpha={self.alpha})"


class SmoothedBetterResponseMigration(MigrationRule):
    """A steep ramp ``mu = min(1, (l_P - l_Q) / width)`` approximating better response.

    For small ``width`` the rule behaves almost like better response but is
    Lipschitz with constant ``1/width``; it fits the smooth class only with a
    very large smoothness parameter, so the safe update period shrinks like
    ``width`` -- exactly the trade-off the paper describes for smoothed best
    response.
    """

    def __init__(self, width: float):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = float(width)

    def probability(self, latency_from: float, latency_to: float) -> float:
        if latency_from <= latency_to:
            return 0.0
        return min(1.0, (latency_from - latency_to) / self.width)

    def matrix_batch(self, path_latencies: np.ndarray) -> np.ndarray:
        diff = self._pairwise_improvements(path_latencies)
        mu = np.minimum(1.0, diff / self.width)
        mu[diff <= 0.0] = 0.0
        return mu

    @property
    def smoothness(self) -> Optional[float]:
        return 1.0 / self.width

    def __repr__(self) -> str:
        return f"SmoothedBetterResponseMigration(width={self.width})"
