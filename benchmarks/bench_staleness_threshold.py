"""E3 -- Lemma 4 / Corollary 5: the safe update period T* = 1/(4 D alpha beta).

Sweeps the ratio ``T / T*`` for a fixed migration rule.  At or below the safe
period the paper guarantees per-phase potential decrease (``Delta Phi <=
V/2 <= 0``) and convergence; far above it the guarantee is void and an
aggressive rule on a steep instance visibly fails to settle.  The harness
prints, per ratio, the Lemma 4 violation count, the final potential gap and
the tail oscillation amplitude.

All ratios share one network and one policy, so the sweep runs through the
batched engine (:mod:`repro.batch`) as a single stacked integration; the
result table is exported via ``SweepResult.to_csv`` / ``to_jsonl``.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    SweepCase,
    analyse_oscillation,
    phase_potential_stats,
    print_table,
    run_sweep,
)
from repro.core import scaled_policy
from repro.core.smoothness import safe_update_period
from repro.instances import braess_network, lopsided_flow, two_link_network
from repro.solvers import optimal_potential
from repro.wardrop import FlowVector, potential

RATIOS = [0.25, 0.5, 1.0, 2.0, 8.0, 32.0]


def ratio_case(network, policy, alpha, ratio, start, horizon_phases=120, min_horizon=15.0):
    """Build the sweep case for one T/T* ratio (shared network and policy)."""
    safe = safe_update_period(network, alpha)
    period = ratio * safe
    # Give every ratio enough *simulated time* to settle: small ratios mean a
    # tiny update period, so a fixed phase count alone would end far too early.
    horizon = max(horizon_phases * period, min_horizon)
    steps_per_phase = 30 if horizon_phases * period >= min_horizon else 10
    return SweepCase(
        parameters={"T/T*": ratio, "T": period},
        network=network,
        policy=policy,
        update_period=period,
        horizon=horizon,
        initial_flow=start,
        steps_per_phase=steps_per_phase,
    )


def threshold_row_builder(optimum):
    """Report the Lemma 4 quantities for one trajectory of the sweep."""

    def build(trajectory):
        stats = phase_potential_stats(trajectory)
        oscillation = analyse_oscillation(trajectory)
        return {
            "lemma4_violations": stats.lemma4_violations,
            "max_phi_increase": stats.max_potential_increase,
            "final_gap": potential(trajectory.final_flow) - optimum,
            "tail_amplitude": oscillation.amplitude,
        }

    return build


@pytest.mark.experiment("E3")
def test_staleness_threshold_two_links(report_header, tmp_path):
    network = two_link_network(beta=8.0)
    alpha = 4.0  # aggressive: safe period is 1/(4*1*4*8) ~ 0.0078
    policy = scaled_policy(alpha)
    optimum = optimal_potential(network)
    start = lopsided_flow(network, 0.9)
    cases = [ratio_case(network, policy, alpha, ratio, start) for ratio in RATIOS]
    result = run_sweep(cases, threshold_row_builder(optimum), engine="batch")
    result.to_csv(tmp_path / "staleness_two_links.csv")
    result.to_jsonl(tmp_path / "staleness_two_links.jsonl")
    print_table(result.rows, title="E3: staleness threshold sweep, two links (beta=8, alpha=4)")
    rows = result.rows
    safe_rows = [row for row in rows if row["T/T*"] <= 1.0]
    unsafe_rows = [row for row in rows if row["T/T*"] >= 8.0]
    for row in safe_rows:
        assert row["lemma4_violations"] == 0
        assert row["final_gap"] < 1e-2
    # Far beyond the threshold the dynamics is visibly worse (larger residual
    # oscillation / potential gap) than in the safe regime.
    worst_safe = max(row["tail_amplitude"] for row in safe_rows)
    worst_unsafe = max(row["tail_amplitude"] for row in unsafe_rows)
    assert worst_unsafe > worst_safe


@pytest.mark.experiment("E3")
def test_staleness_threshold_braess(report_header, tmp_path):
    network = braess_network()
    alpha = 2.0
    policy = scaled_policy(alpha)
    optimum = optimal_potential(network)
    start = FlowVector.single_path(network, {0: 0})
    cases = [
        ratio_case(network, policy, alpha, ratio, start, horizon_phases=200)
        for ratio in [0.5, 1.0, 4.0]
    ]

    def build(trajectory):
        stats = phase_potential_stats(trajectory)
        return {
            "lemma4_violations": stats.lemma4_violations,
            "final_gap": potential(trajectory.final_flow) - optimum,
        }

    result = run_sweep(cases, build, engine="batch")
    result.to_csv(tmp_path / "staleness_braess.csv")
    result.to_jsonl(tmp_path / "staleness_braess.jsonl")
    print_table(result.rows, title="E3: staleness threshold sweep, Braess network (alpha=2)")
    for row in result.rows:
        if row["T/T*"] <= 1.0:
            assert row["lemma4_violations"] == 0


@pytest.mark.experiment("E3")
def test_benchmark_safe_period_run(benchmark, report_header):
    network = two_link_network(beta=8.0)
    policy = scaled_policy(4.0)
    start = lopsided_flow(network, 0.9)

    def run():
        case = ratio_case(network, policy, 4.0, 1.0, start, horizon_phases=40)
        builder = lambda t: {"lemma4_violations": phase_potential_stats(t).lemma4_violations}
        return run_sweep([case], builder, engine="batch")

    result = benchmark(run)
    assert result.rows[0]["lemma4_violations"] == 0
