"""Quickstart: route traffic adaptively on stale information and converge anyway.

This example walks through the whole public API in a few lines:

1. build a Wardrop instance (the paper's two-link network),
2. pick a smooth rerouting policy (the replicator: proportional sampling +
   linear migration),
3. ask the theory for the safe bulletin-board update period
   ``T* = 1/(4 D alpha beta)``,
4. simulate the stale-information dynamics and watch it converge, and
5. contrast it with best response, which oscillates at the same update period.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import analyse_oscillation, print_table
from repro.core import (
    oscillation_amplitude,
    replicator_policy,
    simulate,
    simulate_best_response,
)
from repro.instances import lopsided_flow, oscillation_initial_flow, two_link_network
from repro.wardrop import equilibrium_violation, potential


def main() -> None:
    # 1. The instance: two parallel links with latency max{0, beta (x - 1/2)}.
    beta = 4.0
    network = two_link_network(beta=beta)
    print(network.describe())
    print()

    # 2. The policy: replicator dynamics (proportional sampling + linear migration).
    policy = replicator_policy(network)

    # 3. The safe update period from Lemma 4 of the paper.
    safe_period = policy.safe_update_period(network)
    print(f"smoothness alpha          = {policy.smoothness:.4g}")
    print(f"safe update period T*     = {safe_period:.4g}")
    print()

    # 4. Simulate under stale information with T = T*.
    start = lopsided_flow(network, 0.9)
    trajectory = simulate(
        network, policy, update_period=safe_period, horizon=40.0, initial_flow=start
    )
    rows = []
    for time in [0.0, 5.0, 10.0, 20.0, 40.0]:
        point = trajectory.sample_at(time)
        rows.append(
            {
                "time": point.time,
                "flow_link_1": point.flow.values()[0],
                "flow_link_2": point.flow.values()[1],
                "potential": potential(point.flow),
                "violation": equilibrium_violation(point.flow),
            }
        )
    print_table(rows, title="Replicator policy under stale information (T = T*)")

    # 5. Best response at a much larger update period oscillates forever.
    period = 0.5
    oscillating = simulate_best_response(
        network,
        update_period=period,
        horizon=30.0,
        initial_flow=oscillation_initial_flow(network, period),
    )
    report = analyse_oscillation(oscillating)
    print("Best response with stale information (T = 0.5):")
    print(f"  oscillating            = {report.is_oscillating}")
    print(f"  cycle length (phases)  = {report.period_phases}")
    print(f"  sustained latency      = {report.mean_phase_start_latency:.4g}")
    print(f"  paper's closed form X  = {oscillation_amplitude(beta, period):.4g}")


if __name__ == "__main__":
    main()
