"""Unit tests for WardropNetwork: structure, constants and latency evaluation."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.instances import braess_network, two_link_network
from repro.wardrop import Commodity, LinearLatency, ThresholdLatency, WardropNetwork
from repro.wardrop.network import LATENCY_ATTR


class TestConstruction:
    def test_from_edges_parallel_links(self, two_links):
        assert two_links.num_paths == 2
        assert two_links.num_edges == 2
        assert two_links.num_commodities == 1

    def test_requires_commodities(self):
        graph = nx.MultiDiGraph()
        graph.add_edge("s", "t", **{LATENCY_ATTR: LinearLatency(1.0)})
        with pytest.raises(ValueError):
            WardropNetwork(graph, [])

    def test_requires_latency_attribute(self):
        graph = nx.MultiDiGraph()
        graph.add_edge("s", "t")
        with pytest.raises(ValueError):
            WardropNetwork(graph, [Commodity("s", "t", 1.0)])

    def test_demand_normalisation(self):
        network = WardropNetwork.from_edges(
            [("s", "t", LinearLatency(1.0))],
            [Commodity("s", "t", 5.0)],
            normalise=True,
        )
        assert network.commodities[0].demand == pytest.approx(1.0)

    def test_unnormalised_demands_rejected(self):
        with pytest.raises(ValueError):
            WardropNetwork.from_edges(
                [("s", "t", LinearLatency(1.0))],
                [Commodity("s", "t", 5.0)],
                normalise=False,
            )


class TestConstants:
    def test_two_link_constants(self):
        network = two_link_network(beta=4.0)
        assert network.max_path_length() == 1
        assert network.max_slope() == pytest.approx(4.0)
        # l_max = max latency at full load = beta * (1 - 1/2) = 2.
        assert network.max_latency() == pytest.approx(2.0)

    def test_braess_constants(self, braess):
        assert braess.max_path_length() == 3
        assert braess.max_slope() == pytest.approx(1.0)
        # Longest path s->a->b->t at full load: 1 + 0 + 1 = 2.
        assert braess.max_latency() == pytest.approx(2.0)

    def test_grid_path_length(self, small_grid):
        # Corner-to-corner paths in a 3x3 right/down grid have 4 edges.
        assert small_grid.max_path_length() == 4


class TestLatencyEvaluation:
    def test_edge_flow_aggregation(self, braess):
        flows = np.zeros(braess.num_paths)
        descriptions = braess.paths.describe()
        flows[descriptions.index("s->a->b->t")] = 1.0
        edge_flows = braess.edge_flows(flows)
        index_sa = braess.edge_index(("s", "a", 0))
        index_bt = braess.edge_index(("b", "t", 0))
        assert edge_flows[index_sa] == pytest.approx(1.0)
        assert edge_flows[index_bt] == pytest.approx(1.0)

    def test_path_latency_additive(self, braess):
        flows = np.zeros(braess.num_paths)
        descriptions = braess.paths.describe()
        flows[descriptions.index("s->a->b->t")] = 1.0
        latencies = braess.path_latencies(flows)
        # s->a->b->t carries x(=1) + 0 + x(=1) = 2.
        assert latencies[descriptions.index("s->a->b->t")] == pytest.approx(2.0)
        # s->a->t sees x(=1) + 1 = 2 as well.
        assert latencies[descriptions.index("s->a->t")] == pytest.approx(2.0)

    def test_path_latencies_from_posted_edge_latencies(self, braess):
        flows = np.full(braess.num_paths, 1.0 / braess.num_paths)
        edge_latencies = braess.edge_latencies(braess.edge_flows(flows))
        via_posted = braess.path_latencies_from_edge_latencies(edge_latencies)
        direct = braess.path_latencies(flows)
        assert np.allclose(via_posted, direct)

    def test_incidence_matrix_shape(self, braess):
        assert braess.incidence.shape == (braess.num_edges, braess.num_paths)
        assert set(np.unique(braess.incidence)) <= {0.0, 1.0}


class TestDescriptions:
    def test_describe_mentions_constants(self, two_links):
        text = two_links.describe()
        assert "D (max path length)" in text
        assert "beta" in text

    def test_repr(self, two_links):
        assert "WardropNetwork" in repr(two_links)
