"""Shortest-path oracle over the full graph, and all-or-nothing loading.

Large instances are driven by *oracles* instead of path enumeration: given
the current (or posted) edge costs, a Dijkstra query returns one cheapest
``s -> t`` path, and loading every commodity's whole demand onto its
cheapest path yields the classical all-or-nothing flow -- the direction
oracle of Frank--Wolfe and the column generator of
:class:`~repro.largescale.columns.ActivePathSet`.

The oracle owns the canonical ordering of *all* graph edges (the restricted
network's :attr:`~repro.wardrop.network.WardropNetwork.edges` only lists
edges on enumerated paths) and exposes cost vectors over that order.

First-thru-node semantics (TNTP): road-network files mark the first node
that real traffic may pass *through*; lower-numbered nodes are zone
centroids that can appear only as origins or destinations.  The oracle
enforces this during the Dijkstra expansion.

Backends: the reference implementation is a pure-Python binary-heap Dijkstra
(always available, deterministic tie-breaking).  At road-network sizes the
oracle auto-selects a ``scipy.sparse.csgraph.dijkstra`` backend over a CSR
adjacency matrix: one C-level one-to-many query per origin, with the
first-thru-node rule enforced by pricing the outgoing arcs of every
non-source centroid at ``+inf``.  The scipy backend requires a graph without
parallel edges (CSR holds one entry per node pair); multigraph instances
fall back to the Python backend automatically.  Both backends return true
shortest paths and identical distances -- only tie-breaking between equal
cost paths may differ (see the parity test on Sioux Falls).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..wardrop.commodity import Commodity
from ..wardrop.network import LATENCY_ATTR
from ..wardrop.paths import EdgeKey, Path
from .incidence import have_scipy

INFINITY = float("inf")

# Auto mode switches to the scipy csgraph backend at this edge count --
# road-network territory (the bundled Sioux Falls fixture has 76 links).
SCIPY_BACKEND_MIN_EDGES = 64


@dataclass(frozen=True)
class AllOrNothingLoad:
    """The result of one all-or-nothing assignment.

    ``edge_flows`` is indexed by the oracle's edge order; ``sptt`` is the
    shortest-path travel time ``sum_i r_i * dist(s_i, t_i)`` under the query
    costs -- the lower bound that relative duality gaps are measured against.
    """

    edge_flows: np.ndarray
    sptt: float


class ShortestPathOracle:
    """Dijkstra queries against pluggable edge costs on a fixed multigraph.

    Parameters
    ----------
    graph:
        The full ``networkx.MultiDiGraph`` (parallel edges allowed).
    commodities:
        The OD pairs whose sources group the one-to-many queries.
    first_thru_node:
        Optional TNTP-style centroid bound: integer nodes strictly below it
        may start or end a path but never be passed through.
    backend:
        ``"auto"`` (default), ``"python"`` or ``"scipy"``.  Auto keeps the
        pure-Python heap on small or multigraph instances and switches to
        ``scipy.sparse.csgraph.dijkstra`` at
        :data:`SCIPY_BACKEND_MIN_EDGES` edges; ``"scipy"`` forces the CSR
        backend (raising if scipy is missing or the graph has parallel
        edges).
    """

    def __init__(
        self,
        graph: nx.MultiDiGraph,
        commodities: Sequence[Commodity],
        first_thru_node: Optional[int] = None,
        backend: str = "auto",
    ):
        self.graph = graph
        self.commodities: List[Commodity] = list(commodities)
        self.first_thru_node = first_thru_node
        # Canonical edge order: the same string sort PathSet.edges() uses, so
        # positions are stable across restricted networks of one graph.
        self.edges: List[EdgeKey] = sorted(graph.edges(keys=True), key=str)
        self.edge_index: Dict[EdgeKey, int] = {e: i for i, e in enumerate(self.edges)}
        self._adjacency: Dict[Hashable, List[Tuple[int, Hashable]]] = {
            node: [] for node in graph.nodes
        }
        for index, (u, v, _key) in enumerate(self.edges):
            self._adjacency[u].append((index, v))
        self._sinks_by_source: Dict[Hashable, List[Tuple[int, Hashable]]] = {}
        for i, commodity in enumerate(self.commodities):
            if commodity.source not in self._adjacency or commodity.sink not in self._adjacency:
                raise ValueError(
                    f"commodity endpoints {commodity.source!r}->{commodity.sink!r} "
                    "missing from graph"
                )
            self._sinks_by_source.setdefault(commodity.source, []).append(
                (i, commodity.sink)
            )
        self.backend = self._resolve_backend(backend)
        if self.backend == "scipy":
            self._build_scipy()

    def _has_parallel_edges(self) -> bool:
        return len({(u, v) for u, v, _key in self.edges}) != len(self.edges)

    def _resolve_backend(self, backend: str) -> str:
        if backend == "python":
            return "python"
        if backend == "scipy":
            if not have_scipy():
                raise ValueError("the scipy Dijkstra backend requires scipy")
            if self._has_parallel_edges():
                raise ValueError(
                    "the scipy Dijkstra backend requires a graph without "
                    "parallel edges (CSR holds one entry per node pair)"
                )
            return "scipy"
        if backend != "auto":
            raise ValueError(
                f"unknown oracle backend {backend!r}; use 'auto', 'python' or 'scipy'"
            )
        if (
            have_scipy()
            and len(self.edges) >= SCIPY_BACKEND_MIN_EDGES
            and not self._has_parallel_edges()
        ):
            return "scipy"
        return "python"

    def _build_scipy(self) -> None:
        """Build the CSR adjacency template reused by every scipy query."""
        from scipy import sparse

        self._nodes: List[Hashable] = list(self._adjacency)
        node_index = {node: i for i, node in enumerate(self._nodes)}
        self._node_index = node_index
        num_nodes = len(self._nodes)
        rows = np.array([node_index[u] for u, _v, _key in self.edges], dtype=np.int64)
        cols = np.array([node_index[v] for _u, v, _key in self.edges], dtype=np.int64)
        # Template trick: store 1-based edge positions as data, let tocsr()
        # sort them into CSR slot order, and read the slot -> edge permutation
        # back out (no duplicate coordinates, so nothing is summed).
        template = sparse.coo_matrix(
            (np.arange(1, len(self.edges) + 1, dtype=float), (rows, cols)),
            shape=(num_nodes, num_nodes),
        ).tocsr()
        self._csr_indices = template.indices
        self._csr_indptr = template.indptr
        self._csr_shape = (num_nodes, num_nodes)
        self._slot_edge = template.data.astype(np.int64) - 1
        slot_rows = np.repeat(
            np.arange(num_nodes, dtype=np.int64), np.diff(template.indptr)
        )
        self._slot_rows = slot_rows
        is_centroid = np.array(
            [self._blocked_through(node) for node in self._nodes], dtype=bool
        )
        self._node_is_centroid = is_centroid
        # Slots leaving a centroid: priced at +inf unless the centroid is the
        # query's source (mirroring the Python expansion rule exactly).
        self._centroid_out_slots = is_centroid[slot_rows]
        self._pair_edge: Dict[Tuple[int, int], int] = {
            (int(rows[e]), int(cols[e])): e for e in range(len(self.edges))
        }

    @classmethod
    def for_network(cls, network, backend: str = "auto") -> "ShortestPathOracle":
        """Build an oracle for a network, honouring its TNTP centroid metadata.

        The canonical constructor call (graph + commodities +
        ``first_thru_node`` from the graph metadata) recurs across the CLI,
        the solvers, the scenario toolkit and the benchmarks; this factory is
        the single spelling of it.
        """
        return cls(
            network.graph,
            network.commodities,
            first_thru_node=network.graph.graph.get("first_thru_node"),
            backend=backend,
        )

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def _blocked_through(self, node: Hashable) -> bool:
        """True if ``node`` is a centroid that may not be passed through."""
        return (
            self.first_thru_node is not None
            and isinstance(node, (int, np.integer))
            and node < self.first_thru_node
        )

    # Cost vectors ----------------------------------------------------------

    def free_flow_costs(self, network=None) -> np.ndarray:
        """Return every edge's latency at zero flow (the Dijkstra seed costs).

        With a ``network`` the (override-aware) ``latency_function`` lookup
        is used; without one the latencies are read straight off the graph's
        edge attributes -- the pre-network situation of the TNTP loader and
        of :class:`~repro.largescale.columns.ActivePathSet` seeding.
        """
        if network is not None:
            return np.array(
                [network.latency_function(edge).value(0.0) for edge in self.edges]
            )
        return np.array(
            [
                self.graph[u][v][key][LATENCY_ATTR].value(0.0)
                for (u, v, key) in self.edges
            ]
        )

    def latency_costs(self, network, edge_flows: np.ndarray) -> np.ndarray:
        """Evaluate every graph edge's latency at the given oracle-order flows."""
        edge_flows = np.asarray(edge_flows, dtype=float)
        return np.array(
            [
                network.latency_function(edge).value(edge_flows[i])
                for i, edge in enumerate(self.edges)
            ]
        )

    def network_edge_positions(self, network) -> np.ndarray:
        """Map ``network.edges`` (on-path edges) to oracle edge positions."""
        return np.array([self.edge_index[edge] for edge in network.edges], dtype=np.int64)

    def expand_edge_values(self, network, values: np.ndarray) -> np.ndarray:
        """Scatter per-``network.edges`` values into a full oracle-order vector.

        Off-path edges get zero -- exactly right for edge *flows* of a
        restricted network (no enumerated path crosses them).
        """
        full = np.zeros(self.num_edges)
        full[self.network_edge_positions(network)] = np.asarray(values, dtype=float)
        return full

    # Queries ---------------------------------------------------------------

    def _dijkstra(
        self,
        source: Hashable,
        costs: np.ndarray,
        targets: Optional[set] = None,
    ) -> Tuple[Dict[Hashable, float], Dict[Hashable, int]]:
        """One-to-many Dijkstra on the selected backend.

        Returns distance and predecessor-edge maps covering every reached
        node; unreachable nodes are absent from both.
        """
        costs = self._check_costs(costs)
        if self.backend == "scipy":
            return self._dijkstra_scipy(source, costs)
        return self._dijkstra_python(source, costs, targets)

    def _check_costs(self, costs: np.ndarray) -> np.ndarray:
        costs = np.asarray(costs, dtype=float)
        if len(costs) != self.num_edges:
            raise ValueError(
                f"cost vector has length {len(costs)}, oracle has {self.num_edges} edges"
            )
        # ``costs < 0`` is False for NaN, so a bare negativity check would
        # let NaN costs through and silently corrupt Dijkstra distances.
        # +inf stays legal: the scipy backend prices centroid out-arcs at
        # +inf, and both backends treat an infinite edge as unusable.
        if np.any(np.isnan(costs)):
            raise ValueError("Dijkstra received NaN edge costs")
        if np.any(costs < 0):
            raise ValueError("Dijkstra requires non-negative edge costs")
        return costs

    def _query_commodity_sources(
        self, costs: np.ndarray
    ) -> Dict[Hashable, Tuple[Dict[Hashable, float], Dict[Hashable, int]]]:
        """Return each commodity source's (distance, predecessor) maps.

        The scipy backend answers all sources in as few C calls as possible
        (one, when the graph has no centroids); the Python backend runs one
        early-terminating heap Dijkstra per source.
        """
        costs = self._check_costs(costs)
        if self.backend == "scipy":
            return self._scipy_query_sources(list(self._sinks_by_source), costs)
        return {
            source: self._dijkstra_python(
                source, costs, targets={sink for _, sink in pairs}
            )
            for source, pairs in self._sinks_by_source.items()
        }

    def _maps_from_arrays(
        self, dist: np.ndarray, pred: np.ndarray
    ) -> Tuple[Dict[Hashable, float], Dict[Hashable, int]]:
        """Convert scipy's distance/predecessor arrays into the map contract."""
        distance: Dict[Hashable, float] = {}
        predecessor: Dict[Hashable, int] = {}
        for i in np.flatnonzero(np.isfinite(dist)):
            node_position = int(i)
            distance[self._nodes[node_position]] = float(dist[node_position])
            p = int(pred[node_position])
            if p >= 0:
                predecessor[self._nodes[node_position]] = self._pair_edge[
                    (p, node_position)
                ]
        return distance, predecessor

    def _scipy_query_sources(
        self, sources: Sequence[Hashable], costs: np.ndarray
    ) -> Dict[Hashable, Tuple[Dict[Hashable, float], Dict[Hashable, int]]]:
        """Batched one-to-many queries over the CSR adjacency template.

        Outgoing arcs of every centroid are priced at ``+inf`` (scipy treats
        them as unreachable-through), which is exactly the Python backend's
        expansion rule; explicit zero-cost arcs remain genuine zero-weight
        edges in scipy's sparse convention.  All non-centroid sources share
        one blocked matrix and run as a *single* multi-source C call --
        which, with TNTP's ``first_thru_node`` covering every node (as in
        Sioux Falls), means one call per cost vector.  Centroid sources get
        one call each (their own outgoing arcs must be restored).
        """
        from scipy import sparse
        from scipy.sparse import csgraph

        base = costs[self._slot_edge]
        any_blocked = bool(self._centroid_out_slots.any())
        results: Dict[Hashable, Tuple[Dict[Hashable, float], Dict[Hashable, int]]] = {}
        source_positions = np.array(
            [self._node_index[source] for source in sources], dtype=np.int64
        )
        centroid_source = self._node_is_centroid[source_positions]

        def run(data: np.ndarray, indices: np.ndarray) -> None:
            matrix = sparse.csr_matrix(
                (data, self._csr_indices, self._csr_indptr), shape=self._csr_shape
            )
            dist, pred = csgraph.dijkstra(
                matrix, indices=indices, return_predecessors=True
            )
            dist = np.atleast_2d(dist)
            pred = np.atleast_2d(pred)
            for row, position in enumerate(indices):
                results[self._nodes[int(position)]] = self._maps_from_arrays(
                    dist[row], pred[row]
                )

        plain = source_positions[~centroid_source]
        if len(plain):
            data = np.where(self._centroid_out_slots, np.inf, base) if any_blocked else base
            run(data, plain)
        for position in source_positions[centroid_source]:
            data = np.where(
                self._centroid_out_slots & (self._slot_rows != position), np.inf, base
            )
            run(data, np.array([position], dtype=np.int64))
        return results

    def _dijkstra_scipy(
        self, source: Hashable, costs: np.ndarray
    ) -> Tuple[Dict[Hashable, float], Dict[Hashable, int]]:
        """One-source adapter over :meth:`_scipy_query_sources`."""
        return self._scipy_query_sources([source], costs)[source]

    def _dijkstra_python(
        self,
        source: Hashable,
        costs: np.ndarray,
        targets: Optional[set] = None,
    ) -> Tuple[Dict[Hashable, float], Dict[Hashable, int]]:
        """The reference heap Dijkstra; returns distance/predecessor maps.

        Expansion stops early once every target is settled.  Ties are broken
        by heap insertion order, which is deterministic for fixed costs.
        """
        distance: Dict[Hashable, float] = {source: 0.0}
        predecessor: Dict[Hashable, int] = {}
        settled: set = set()
        remaining = set(targets) if targets is not None else None
        counter = 0
        heap: List[Tuple[float, int, Hashable]] = [(0.0, counter, source)]
        while heap:
            dist, _, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            if node != source and self._blocked_through(node):
                continue
            for edge_position, neighbour in self._adjacency[node]:
                candidate = dist + costs[edge_position]
                if candidate < distance.get(neighbour, INFINITY):
                    distance[neighbour] = candidate
                    predecessor[neighbour] = edge_position
                    counter += 1
                    heapq.heappush(heap, (candidate, counter, neighbour))
        return distance, predecessor

    def _trace(self, source: Hashable, sink: Hashable, predecessor: Dict[Hashable, int]):
        """Backtrack predecessor edges into the source->sink edge sequence."""
        edges: List[EdgeKey] = []
        node = sink
        while node != source:
            edge_position = predecessor[node]
            edge = self.edges[edge_position]
            edges.append(edge)
            node = edge[0]
        edges.reverse()
        return tuple(edges)

    def shortest_path(
        self, source: Hashable, sink: Hashable, costs: np.ndarray
    ) -> Tuple[Tuple[EdgeKey, ...], float]:
        """Return one cheapest ``source -> sink`` edge sequence and its cost."""
        distance, predecessor = self._dijkstra(source, costs, targets={sink})
        if sink not in distance or distance[sink] == INFINITY:
            raise ValueError(f"no path from {source!r} to {sink!r}")
        return self._trace(source, sink, predecessor), float(distance[sink])

    def shortest_commodity_paths(self, costs: np.ndarray) -> List[Path]:
        """Return one cheapest path per commodity (grouped by source)."""
        results: List[Optional[Path]] = [None] * len(self.commodities)
        maps = self._query_commodity_sources(costs)
        for source, pairs in self._sinks_by_source.items():
            distance, predecessor = maps[source]
            for commodity_index, sink in pairs:
                if sink not in distance:
                    raise ValueError(f"no path from {source!r} to {sink!r}")
                results[commodity_index] = Path(
                    self._trace(source, sink, predecessor), commodity_index
                )
        return results  # type: ignore[return-value]

    def commodity_costs(self, costs: np.ndarray) -> np.ndarray:
        """Return each commodity's shortest-path cost under ``costs``.

        The per-OD column of the network report: one one-to-many query per
        distinct source, no path tracing.  Unreachable sinks get ``inf``.
        """
        results = np.full(len(self.commodities), INFINITY)
        maps = self._query_commodity_sources(costs)
        for source, pairs in self._sinks_by_source.items():
            distance, _predecessor = maps[source]
            for commodity_index, sink in pairs:
                if sink in distance:
                    results[commodity_index] = float(distance[sink])
        return results

    def all_or_nothing(
        self, costs: np.ndarray, demands: Optional[np.ndarray] = None
    ) -> AllOrNothingLoad:
        """Load every commodity's demand onto its cheapest path.

        ``demands`` defaults to the commodity demands; the result's
        ``edge_flows`` live on the oracle's edge order and ``sptt`` is the
        demand-weighted shortest-path travel time.
        """
        if demands is None:
            demands = np.array([c.demand for c in self.commodities])
        flows = np.zeros(self.num_edges)
        sptt = 0.0
        maps = self._query_commodity_sources(costs)
        for source, pairs in self._sinks_by_source.items():
            distance, predecessor = maps[source]
            for commodity_index, sink in pairs:
                if sink not in distance:
                    raise ValueError(f"no path from {source!r} to {sink!r}")
                demand = float(demands[commodity_index])
                sptt += distance[sink] * demand
                node = sink
                while node != source:
                    edge_position = predecessor[node]
                    flows[edge_position] += demand
                    node = self.edges[edge_position][0]
        return AllOrNothingLoad(edge_flows=flows, sptt=float(sptt))
