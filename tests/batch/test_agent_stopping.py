"""Early stopping for the finite-population agent engines.

The scalar `AgentBasedSimulator` and the batched `BatchAgentSimulator` now
accept `stop_when`, evaluated at phase boundaries on the realised flows and
mirroring the fluid engine's freezing semantics: a stopping row records the
triggering phase, then issues no further generator draws -- so a batched
stopped row remains bit-identical to a scalar run that breaks at the same
phase.
"""

import numpy as np
import pytest

from repro.batch.agents import BatchAgentConfig, BatchAgentSimulator, simulate_agent_batch
from repro.batch.stopping import distance_stop
from repro.core import replicator_policy, uniform_policy
from repro.core.agents import AgentBasedSimulator, AgentSimulationConfig
from repro.instances import pigou_network, two_link_network
from repro.wardrop import FlowVector


def scalar_run(network, policy, n, period, horizon, seed, stop_when=None, stale=True):
    config = AgentSimulationConfig(
        num_agents=n, update_period=period, horizon=horizon, seed=seed, stale=stale
    )
    simulator = AgentBasedSimulator(network, policy, config)
    trajectory = simulator.run(stop_when=stop_when)
    return trajectory, simulator.final_assignment


class TestScalarStopping:
    def test_stop_ends_the_run_at_the_firing_phase(self):
        network = two_link_network(beta=4.0)
        policy = uniform_policy(network)
        fired = []

        def stop(time, flow):
            fired.append(time)
            return len(fired) == 4

        trajectory, _ = scalar_run(network, policy, 50, 0.2, 5.0, 3, stop_when=stop)
        assert len(trajectory.phases) == 4
        assert trajectory.points[-1].time == pytest.approx(0.8)

    def test_final_state_recorded_even_between_record_interval_samples(self):
        network = two_link_network(beta=4.0)
        policy = uniform_policy(network)
        config = AgentSimulationConfig(
            num_agents=40, update_period=0.1, horizon=5.0, seed=1,
            record_interval=1.0,
        )
        trajectory = AgentBasedSimulator(network, policy, config).run(
            stop_when=lambda time, flow: time >= 0.3
        )
        assert trajectory.points[-1].time == pytest.approx(0.3)

    def test_prefix_of_a_non_stopping_run(self):
        """Stopping only truncates: the prefix matches the unstopped run."""
        network = pigou_network(degree=1)
        policy = replicator_policy(network, exploration=1e-3)
        stopped, _ = scalar_run(
            network, policy, 80, 0.2, 4.0, 7,
            stop_when=lambda time, flow: time >= 1.0,
        )
        full, _ = scalar_run(network, policy, 80, 0.2, 4.0, 7)
        for ours, theirs in zip(stopped.points, full.points):
            assert ours.time == theirs.time
            assert np.array_equal(ours.flow.values(), theirs.flow.values())


class TestBatchStopping:
    @pytest.mark.parametrize("stale", [True, False])
    def test_batch_rows_are_bit_identical_to_stopping_scalar_runs(self, stale):
        network = pigou_network(degree=1)
        policy = uniform_policy(network)
        target = np.array([[0.6, 0.4]] * 3)
        stop = distance_stop(target, tolerance=0.15)
        result = simulate_agent_batch(
            network, policy, [60, 90, 120], 0.2, 4.0,
            seeds=np.array([11, 12, 13]), stale=stale, stop_when=stop,
        )
        for row, (n, seed) in enumerate([(60, 11), (90, 12), (120, 13)]):
            trajectory, assignment = scalar_run(
                network, policy, n, 0.2, 4.0, seed,
                stop_when=stop.scalar(row), stale=stale,
            )
            ours = result.trajectory(row)
            assert len(ours) == len(trajectory)
            for a, b in zip(ours.points, trajectory.points):
                assert np.array_equal(a.flow.values(), b.flow.values())
            assert np.array_equal(result.assignments[row], assignment)
            if result.stop_phases[row] >= 0:
                assert len(trajectory.phases) == result.stop_phases[row] + 1

    def test_stop_phases_report_minus_one_when_never_firing(self):
        network = two_link_network(beta=2.0)
        result = simulate_agent_batch(
            network, uniform_policy(network), [30, 30], 0.25, 1.0,
            seeds=np.array([0, 1]),
            stop_when=lambda times, flows, rows: np.zeros(len(rows), dtype=bool),
        )
        assert np.array_equal(result.stop_phases, np.array([-1, -1]))
        assert not result.stopped_rows().any()

    def test_frozen_rows_stop_consuming_randomness(self):
        """A row frozen early must not disturb its neighbours' streams."""
        network = pigou_network(degree=1)
        policy = uniform_policy(network)

        def stop_row_zero(times, flows, rows):
            return np.asarray(rows) == 0

        stopped = simulate_agent_batch(
            network, policy, [50, 70], 0.2, 3.0, seeds=np.array([5, 6]),
            stop_when=stop_row_zero,
        )
        free = simulate_agent_batch(
            network, policy, [50, 70], 0.2, 3.0, seeds=np.array([5, 6]),
        )
        assert stopped.stop_phases[0] == 0
        assert stopped.num_points[0] == 2  # initial + the stopping phase
        # Row 1 never stopped and is untouched by row 0's freeze.
        assert np.array_equal(stopped.assignments[1], free.assignments[1])
        assert np.array_equal(
            stopped.flow_matrix(1), free.flow_matrix(1)
        )

    def test_bad_mask_shape_raises(self):
        network = two_link_network(beta=2.0)
        config = BatchAgentConfig(
            num_agents=np.array([20, 20]), update_periods=0.2, horizons=1.0,
            seeds=np.array([0, 1]),
        )
        simulator = BatchAgentSimulator(network, uniform_policy(network), config)
        with pytest.raises(ValueError, match="stop_when returned shape"):
            simulator.run(stop_when=lambda times, flows, rows: np.zeros(5, dtype=bool))

    def test_initial_flows_still_respected_with_stopping(self):
        network = two_link_network(beta=2.0)
        start = FlowVector(network, [0.8, 0.2])
        result = simulate_agent_batch(
            network, uniform_policy(network), [40], 0.2, 1.0,
            initial_flows=start,
            stop_when=lambda times, flows, rows: np.ones(len(rows), dtype=bool),
        )
        assert result.flows[0, 0, 0] == pytest.approx(0.8, abs=0.05)
        assert result.stop_phases[0] == 0
