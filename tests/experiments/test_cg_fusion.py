"""Runner fusion of column-generation cases.

Same-network CG cases sharing a phase grid fuse into one batched CG call
under ``engine="batch"``/``"auto"``; rows with an initial flow or a stop
condition stay on the scalar path so the scalar driver's informative
errors surface.  Open-mode fused rows grow one shared (union) restricted
path set, so scalar equality is asserted where it is guaranteed: B=1
groups, and multi-row groups whose rows are identical (union growth then
coincides with each row's own discovery).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import SweepCase
from repro.batch import distance_stop
from repro.core import replicator_policy, uniform_policy
from repro.experiments import group_key, run_cases
from repro.instances import braess_network, grid_network
from repro.largescale import ActivePathSet, simulate_with_column_generation
from repro.scenarios import LinkIncident, Scenario
from repro.wardrop import FlowVector


def flows_row_builder(trajectory):
    """Expose the full sample matrix so bitwise comparisons survive rows."""
    return {
        "times": tuple(point.time for point in trajectory.points),
        "flows": tuple(
            tuple(point.flow.values()) for point in trajectory.points
        ),
    }


def cg_case(network, policy, scenario=None, **overrides):
    settings = dict(update_period=0.25, horizon=2.0, steps_per_phase=5)
    settings.update(overrides)
    return SweepCase(
        parameters={},
        network=network,
        policy=policy,
        column_generation=True,
        scenario=scenario,
        **settings,
    )


def incident(network, edge_index, start=0.5, end=1.25):
    edge = network.edges[edge_index]
    return Scenario(
        incidents=[LinkIncident(edge, start, end, capacity_factor=0.5)]
    )


class TestGroupKeys:
    def test_same_network_and_grid_cases_share_a_key(self):
        network = braess_network()
        a = cg_case(network, uniform_policy(network))
        b = cg_case(network, replicator_policy(network), scenario=incident(network, 0))
        assert group_key(a) == group_key(b)
        assert not group_key(a)[3]  # not serial-only

    def test_different_phase_grids_split_the_group(self):
        network = braess_network()
        base = cg_case(network, uniform_policy(network))
        for overrides in (
            dict(update_period=0.5),
            dict(horizon=4.0),
            dict(steps_per_phase=9),
        ):
            other = cg_case(network, uniform_policy(network), **overrides)
            assert group_key(base) != group_key(other)

    def test_equal_but_distinct_network_objects_split_the_group(self):
        # Fused rows grow ONE shared ActivePathSet, so object identity (not
        # just topology equality) gates CG fusion.
        a = cg_case(braess_network(), uniform_policy(braess_network()))
        b = cg_case(braess_network(), uniform_policy(braess_network()))
        assert group_key(a) != group_key(b)

    def test_initial_flow_and_stop_when_mark_serial_only(self):
        network = braess_network()
        flowed = cg_case(
            network,
            uniform_policy(network),
            initial_flow=FlowVector.uniform(network),
        )
        stopped = cg_case(
            network,
            uniform_policy(network),
            stop_when=distance_stop(np.zeros(network.num_paths), 1e-9),
        )
        assert group_key(flowed)[3]
        assert group_key(stopped)[3]


class TestFusedExecution:
    def test_single_case_batch_matches_serial_bitwise(self):
        network = grid_network(2, 3, num_commodities=2, seed=3)
        scenario = incident(network, 1)
        make = lambda: [cg_case(network, replicator_policy(network), scenario=scenario)]
        serial = run_cases(make(), flows_row_builder, engine="serial").rows
        batch = run_cases(make(), flows_row_builder, engine="batch").rows
        assert serial == batch

    def test_identical_rows_fuse_and_match_the_scalar_driver(self):
        # Identical rows make union growth coincide with each row's own
        # discovery, so every fused row must replay the scalar CG run.
        network = braess_network()
        scenario = incident(network, 0)
        cases = [
            cg_case(network, uniform_policy(network), scenario=scenario)
            for _ in range(3)
        ]
        rows = run_cases(cases, flows_row_builder, engine="batch").rows
        scalar = simulate_with_column_generation(
            ActivePathSet.from_network(network),
            uniform_policy(network),
            update_period=0.25,
            horizon=2.0,
            steps_per_phase=5,
            scenario=scenario,
        )
        expected = flows_row_builder(scalar.trajectory)
        assert len(rows) == 3
        for row in rows:
            assert row == expected

    def test_heterogeneous_scenarios_ride_along_per_row(self):
        network = grid_network(2, 3, num_commodities=2, seed=3)
        cases = [
            cg_case(network, uniform_policy(network)),
            cg_case(network, uniform_policy(network), scenario=incident(network, 0)),
            cg_case(network, uniform_policy(network), scenario=incident(network, 2)),
        ]
        rows = run_cases(cases, flows_row_builder, engine="auto").rows
        assert len(rows) == 3
        # The incident rows must actually diverge from the calm row.
        assert rows[0]["flows"] != rows[1]["flows"]
        assert rows[1]["flows"] != rows[2]["flows"]
        # All rows share one union path set, hence one flow dimension.
        widths = {len(row["flows"][0]) for row in rows}
        assert len(widths) == 1

    def test_serial_only_cg_cases_surface_the_scalar_errors(self):
        network = braess_network()
        flowed = cg_case(
            network,
            uniform_policy(network),
            initial_flow=FlowVector.uniform(network),
        )
        with pytest.raises(ValueError, match="column-generation"):
            run_cases([flowed], flows_row_builder, engine="batch")
