"""Scenario-aware column generation: forced refreshes, evictions, detours."""

import numpy as np
import pytest

from repro.core import uniform_policy
from repro.instances import braess_network, get_instance
from repro.largescale import ActivePathSet, simulate_with_column_generation
from repro.scenarios import LinkIncident, Scenario, get_scenario


class TestClosureInvalidation:
    def test_braess_closure_evicts_and_reseeds(self):
        """The seed path runs over the shortcut; closing it must (1) move the
        flow off the crossing column in the closure instant and (2) discover a
        detour column in the same refresh."""
        network = braess_network()
        scenario = get_scenario("braess-closure", network)
        result = simulate_with_column_generation(
            ActivePathSet.from_network(network),
            uniform_policy(network),
            update_period=0.5,
            horizon=25.0,
            scenario=scenario,
            steps_per_phase=10,
        )
        # phase 20 starts at t = 10.0, the closure onset
        assert result.eviction_events, "closure must evict crossing columns"
        eviction_phase, moved = result.eviction_events[0]
        assert eviction_phase == 20
        assert moved == pytest.approx(1.0)  # the whole demand sat on the shortcut
        descriptions = result.network.paths.describe()
        assert "s->a->t" in descriptions or "s->b->t" in descriptions
        # During the closure the shortcut path must stay (essentially) empty.
        shortcut = descriptions.index("s->a->b->t")
        for point in result.trajectory.points:
            if 10.0 < point.time <= 20.0:
                assert point.flow.values()[shortcut] < 0.05

    def test_invalidate_columns_lists_crossing_paths(self):
        network = braess_network()
        active = ActivePathSet.from_network(network, closed=True)
        restricted = active.network
        crossing = active.invalidate_columns(restricted, {("a", "b", 0)})
        descriptions = restricted.paths.describe()
        assert [descriptions[i] for i in crossing] == ["s->a->b->t"]
        assert active.invalidate_columns(restricted, set()) == []

    def test_capacity_drop_triggers_forced_refresh(self):
        """A scenario change forces a refresh even when the board schedule
        would not refresh -- the growth/eviction machinery reacts in the
        incident's phase, not one phase late."""
        network = get_instance("sioux-falls-mini")
        scenario = get_scenario("sioux-falls-incident", network)
        result = simulate_with_column_generation(
            ActivePathSet.from_network(network),
            lambda net: uniform_policy(net, max_latency=100.0),
            update_period=0.5,
            horizon=6.0,
            scenario=scenario,
            steps_per_phase=5,
        )
        # The incident starts at t=4.0 (phase 8): the drop makes the loaded
        # link expensive, so new columns appear at or after the onset.
        growth_phases = [phase for phase, _ in result.growth_events]
        assert any(phase >= 8 for phase in growth_phases)

    def test_stationary_scenario_matches_plain_run(self):
        network = braess_network()
        scenario = Scenario(
            incidents=[
                LinkIncident(("a", "b", 0), 50.0, 60.0, capacity_factor=0.5)
            ]
        )  # incident entirely beyond the horizon
        plain = simulate_with_column_generation(
            ActivePathSet.from_network(network), uniform_policy(network),
            update_period=0.5, horizon=5.0, steps_per_phase=10,
        )
        wrapped = simulate_with_column_generation(
            ActivePathSet.from_network(network), uniform_policy(network),
            update_period=0.5, horizon=5.0, steps_per_phase=10, scenario=scenario,
        )
        np.testing.assert_array_equal(
            np.array([p.flow.values() for p in plain.trajectory.points]),
            np.array([p.flow.values() for p in wrapped.trajectory.points]),
        )
        assert wrapped.eviction_events == []
