"""The Braess network: the smallest instance with genuinely multi-edge paths.

The classical Braess graph has four nodes (s, a, b, t), edges

    s->a : x        a->t : 1
    s->b : 1        b->t : x
    a->b : 0        (the "shortcut")

and unit demand from s to t.  It has three paths (s-a-t, s-b-t, s-a-b-t), so
the maximum path length is ``D = 3`` -- which matters for the safe update
period ``T* = 1/(4 D alpha beta)`` -- and exhibits the Braess paradox: adding
the shortcut raises the equilibrium latency from 3/2 to 2.

The reproduction uses it wherever a small instance with ``D > 1`` and
overlapping paths is needed (the Lemma 3/4 potential decomposition is only
interesting when paths share edges).
"""

from __future__ import annotations

from ..wardrop.commodity import Commodity
from ..wardrop.flow import FlowVector
from ..wardrop.latency import ConstantLatency, LinearLatency
from ..wardrop.network import WardropNetwork


def braess_network(with_shortcut: bool = True, shortcut_latency: float = 0.0) -> WardropNetwork:
    """Build the Braess network, optionally without the zero-latency shortcut."""
    edges = [
        ("s", "a", LinearLatency(1.0)),
        ("a", "t", ConstantLatency(1.0)),
        ("s", "b", ConstantLatency(1.0)),
        ("b", "t", LinearLatency(1.0)),
    ]
    if with_shortcut:
        edges.append(("a", "b", ConstantLatency(shortcut_latency)))
    return WardropNetwork.from_edges(edges, [Commodity("s", "t", 1.0, name="braess")])


def braess_equilibrium(network: WardropNetwork) -> FlowVector:
    """Return the exact equilibrium of the (unit-demand) Braess network.

    With the shortcut present all traffic uses the path s-a-b-t (latency 2);
    without it the demand splits evenly between the two two-edge paths
    (latency 3/2 each).
    """
    descriptions = network.paths.describe()
    flows = [0.0] * network.num_paths
    if "s->a->b->t" in descriptions:
        flows[descriptions.index("s->a->b->t")] = 1.0
    else:
        flows[descriptions.index("s->a->t")] = 0.5
        flows[descriptions.index("s->b->t")] = 0.5
    return FlowVector(network, flows)


def braess_equilibrium_latency(with_shortcut: bool = True) -> float:
    """Return the known equilibrium latency: 2 with the shortcut, 3/2 without."""
    return 2.0 if with_shortcut else 1.5
