"""Random multi-commodity instances for stress and property-based tests.

The generator draws a random directed acyclic graph in layers (so that path
enumeration stays bounded), attaches random polynomial latencies and picks
commodities between the first and last layers.  With a fixed seed the
instance is fully reproducible, which the hypothesis-based tests rely on.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np

from ..wardrop.commodity import Commodity
from ..wardrop.latency import PolynomialLatency
from ..wardrop.network import LATENCY_ATTR, WardropNetwork


def random_layered_network(
    num_layers: int = 3,
    width: int = 3,
    num_commodities: int = 2,
    max_degree: int = 2,
    edge_probability: float = 0.7,
    seed: Optional[int] = 0,
    max_paths: int = 5_000,
) -> WardropNetwork:
    """Build a random layered DAG instance.

    Nodes are arranged in ``num_layers`` layers of ``width`` nodes; edges only
    go from one layer to the next, each present with ``edge_probability`` and
    carrying a random polynomial latency of degree at most ``max_degree`` with
    non-negative coefficients.  A source node feeds the first layer and a sink
    collects the last layer, guaranteeing that every commodity is routable.
    """
    if num_layers < 1 or width < 1:
        raise ValueError("need at least one layer of width one")
    rng = np.random.default_rng(seed)
    graph = nx.MultiDiGraph()
    source, sink = "source", "sink"

    def random_latency() -> PolynomialLatency:
        degree = int(rng.integers(1, max_degree + 1))
        coefficients = [float(rng.uniform(0.0, 0.3))] + [
            float(rng.uniform(0.1, 1.0)) for _ in range(degree)
        ]
        return PolynomialLatency(coefficients)

    layers: List[List[str]] = [
        [f"n{layer}_{i}" for i in range(width)] for layer in range(num_layers)
    ]
    for node in layers[0]:
        graph.add_edge(source, node, **{LATENCY_ATTR: random_latency()})
    for node in layers[-1]:
        graph.add_edge(node, sink, **{LATENCY_ATTR: random_latency()})
    for upper, lower in zip(layers, layers[1:]):
        connected_pairs = 0
        for u in upper:
            for v in lower:
                if rng.random() < edge_probability:
                    graph.add_edge(u, v, **{LATENCY_ATTR: random_latency()})
                    connected_pairs += 1
        if connected_pairs == 0:
            # Guarantee connectivity layer to layer.
            graph.add_edge(upper[0], lower[0], **{LATENCY_ATTR: random_latency()})

    commodities = [
        Commodity(source, sink, 1.0 / num_commodities, name=f"random-{i}")
        for i in range(num_commodities)
    ]
    return WardropNetwork(graph, commodities, normalise=True, max_paths=max_paths)
