"""Batched vectorized simulation: whole ensembles as one stacked integration.

This subpackage is the execution layer behind the parameter sweeps: instead
of running ``B`` independent scalar simulations through Python loops, a
:class:`BatchSimulator` evolves all replicas as a single ``(B, P)`` array
with vectorised right-hand sides, per-row bulletin-board clocks (rows may
have different update periods ``T``) and per-row horizons.  Row ``r``
reproduces the scalar :class:`~repro.core.simulator.ReroutingSimulator`
trajectory of the same configuration exactly; see
``tests/batch/test_batch_equivalence.py``.
"""

from .board import BatchBulletinBoard
from .engine import BatchConfig, BatchResult, BatchSimulator, simulate_batch

__all__ = [
    "BatchBulletinBoard",
    "BatchConfig",
    "BatchResult",
    "BatchSimulator",
    "simulate_batch",
]
