"""E1 -- Section 3.2: best response under stale information oscillates.

Reproduces the paper's worked example: on the two-link instance with latency
``max{0, beta (x - 1/2)}`` the stale best-response dynamics started from
``f_1(0) = 1/(e^{-T}+1)`` cycles with period ``2T`` and sustains a phase-start
latency of exactly ``X = beta (1 - e^{-T}) / (2 e^{-T} + 2)``.  The harness
sweeps ``beta`` and ``T``, prints predicted vs measured amplitude, and checks
the ``T = O(eps/beta)`` threshold by inverting the formula.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import analyse_oscillation, phase_start_latency_trace, print_table
from repro.core import (
    max_update_period_for_latency,
    oscillation_amplitude,
    oscillation_fixed_point,
    simulate_best_response,
)
from repro.instances import oscillation_initial_flow, two_link_network

BETAS = [1.0, 2.0, 4.0, 8.0]
PERIODS = [0.05, 0.1, 0.25, 0.5, 1.0]


def run_oscillation(beta: float, period: float, phases: int = 40):
    network = two_link_network(beta=beta)
    return simulate_best_response(
        network,
        update_period=period,
        horizon=phases * period,
        initial_flow=oscillation_initial_flow(network, period),
    )


@pytest.mark.experiment("E1")
def test_oscillation_amplitude_table(report_header):
    rows = []
    for beta in BETAS:
        for period in PERIODS:
            trajectory = run_oscillation(beta, period)
            measured = float(np.mean(phase_start_latency_trace(trajectory)))
            predicted = oscillation_amplitude(beta, period)
            report = analyse_oscillation(trajectory)
            rows.append(
                {
                    "beta": beta,
                    "T": period,
                    "predicted_X": predicted,
                    "measured_X": measured,
                    "rel_error": abs(measured - predicted) / predicted,
                    "period_phases": report.period_phases,
                    "oscillating": report.is_oscillating,
                }
            )
    print_table(rows, title="E1: stale best response oscillation (Section 3.2)")
    for row in rows:
        assert row["oscillating"]
        assert row["rel_error"] < 1e-6
        assert row["period_phases"] == 2


@pytest.mark.experiment("E1")
def test_oscillation_threshold_table(report_header):
    # Largest T keeping the sustained latency below eps: T = O(eps/beta).
    rows = []
    epsilon = 0.05
    for beta in BETAS:
        threshold = max_update_period_for_latency(beta, epsilon)
        at_threshold = oscillation_amplitude(beta, threshold)
        above = oscillation_amplitude(beta, 2 * threshold)
        rows.append(
            {
                "beta": beta,
                "eps": epsilon,
                "T_max(pred)": threshold,
                "4*eps/beta": 4 * epsilon / beta,
                "X(T_max)": at_threshold,
                "X(2*T_max)": above,
            }
        )
    print_table(rows, title="E1: update-period threshold T = O(eps/beta)")
    for row in rows:
        assert row["X(T_max)"] == pytest.approx(epsilon, rel=1e-9)
        assert row["X(2*T_max)"] > epsilon


@pytest.mark.experiment("E1")
def test_benchmark_best_response_simulation(benchmark, report_header):
    result = benchmark(run_oscillation, 4.0, 0.25)
    assert len(result.phases) == 40


@pytest.mark.experiment("E1")
def test_fixed_point_is_period_two(report_header):
    rows = []
    for period in PERIODS:
        network = two_link_network(beta=2.0)
        trajectory = run_oscillation(2.0, period, phases=20)
        starts = np.array([flow.values()[0] for flow in trajectory.phase_start_flows()])
        rows.append(
            {
                "T": period,
                "f1_start(pred)": oscillation_fixed_point(period),
                "f1_start(measured)": float(starts[::2].mean()),
                "cycle_error": float(np.abs(starts[::2] - starts[0]).max()),
            }
        )
    print_table(rows, title="E1: oscillation fixed point f1(0) = 1/(exp(-T)+1)")
    for row in rows:
        assert row["cycle_error"] < 1e-9
        assert row["f1_start(measured)"] == pytest.approx(row["f1_start(pred)"], rel=1e-9)
