"""Unified machine-readable timing records for the benchmark harness.

Every benchmark used to hand-roll ``time.perf_counter()`` pairs and print
its own ad-hoc numbers; CI then scraped free-text tables.  This module is
the one shared replacement (re-exported by ``benchmarks/conftest.py``):

    from repro.telemetry.bench import bench_timer

    with bench_timer("bench_fluid_limit", "batched sweep",
                     engine="agents-batch", instance="two-links",
                     cases=16) as timer:
        result = simulate_agent_batch(...)
    print(timer.seconds, timer.rate)   # rate = cases / seconds

Each timed block emits one record of the ``repro-bench/1`` schema::

    {"schema": "repro-bench/1", "bench": ..., "section": ...,
     "engine": ..., "instance": ..., "cases": N,
     "seconds": ..., "rate": ..., ...extra}

Records accumulate in-process (:func:`collected_records`) and, when the
``REPRO_BENCH_RECORDS`` environment variable names a file, append to that
JSONL file -- that is what the CI smoke jobs upload as artifacts and
aggregate into the engine x instance throughput matrix
(:func:`throughput_matrix_rows` / ``repro report --bench``).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.reporting import render_table

__all__ = [
    "BENCH_SCHEMA",
    "RECORDS_ENV",
    "BenchTimer",
    "bench_timer",
    "emit_record",
    "collected_records",
    "clear_records",
    "load_records",
    "throughput_matrix_rows",
    "render_throughput_matrix",
    "gap_matrix_rows",
    "render_gap_matrix",
]

BENCH_SCHEMA = "repro-bench/1"
RECORDS_ENV = "REPRO_BENCH_RECORDS"

_records: List[Dict[str, Any]] = []


class BenchTimer:
    """Context manager timing one benchmark block and emitting its record."""

    def __init__(
        self,
        bench: str,
        section: str,
        engine: str = "-",
        instance: str = "-",
        cases: int = 1,
        **extra: Any,
    ):
        self.bench = bench
        self.section = section
        self.engine = engine
        self.instance = instance
        self.cases = cases
        self.extra = extra
        self.seconds = 0.0
        self._begin = 0.0

    @property
    def rate(self) -> float:
        """Cases per second of the timed block.

        ``nan`` before exit, on a zero-elapsed block (timer granularity), or
        when the block timed zero items -- never a division error or a
        misleading infinite rate.
        """
        if self.seconds <= 0 or self.cases <= 0:
            return float("nan")
        return self.cases / self.seconds

    def __enter__(self) -> "BenchTimer":
        self._begin = time.perf_counter()
        return self

    def __exit__(self, exc_type, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._begin
        if exc_type is None:
            emit_record(self.record())

    def record(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "bench": self.bench,
            "section": self.section,
            "engine": self.engine,
            "instance": self.instance,
            "cases": self.cases,
            "seconds": self.seconds,
            "rate": self.rate,
            **self.extra,
        }


def bench_timer(
    bench: str,
    section: str,
    engine: str = "-",
    instance: str = "-",
    cases: int = 1,
    **extra: Any,
) -> BenchTimer:
    """Return a :class:`BenchTimer`; the conventional entry point."""
    return BenchTimer(bench, section, engine=engine, instance=instance, cases=cases, **extra)


def emit_record(record: Dict[str, Any]) -> None:
    """Collect one record in-process, append it to the records file, and
    ledger it when a run ledger is configured."""
    _records.append(record)
    path = os.environ.get(RECORDS_ENV)
    if path:
        with open(path, "a") as handle:
            handle.write(json.dumps(record, default=str) + "\n")
    from .ledger import record_bench

    record_bench(record)


def collected_records() -> List[Dict[str, Any]]:
    """Return the records emitted by this process so far."""
    return list(_records)


def clear_records() -> None:
    """Forget the in-process records (tests use this for isolation)."""
    _records.clear()


def load_records(path) -> List[Dict[str, Any]]:
    """Load a JSONL bench-records file, skipping non-bench lines."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            if record.get("schema") == BENCH_SCHEMA:
                records.append(record)
    return records


def throughput_matrix_rows(
    records: Sequence[Dict[str, Any]]
) -> List[Dict[str, object]]:
    """Pivot records into an engine x instance throughput matrix.

    One row per engine; one column per instance holding the best observed
    rate (cases/second) of that engine on that instance.  Repeated
    measurements keep the fastest, which is the usual benchmarking
    convention for throughput.
    """
    instances: List[str] = []
    best: Dict[str, Dict[str, float]] = {}
    for record in records:
        engine = str(record.get("engine", "-"))
        instance = str(record.get("instance", "-"))
        rate = record.get("rate")
        if rate is None or rate != rate:
            continue
        if instance not in instances:
            instances.append(instance)
        row = best.setdefault(engine, {})
        row[instance] = max(row.get(instance, float("-inf")), float(rate))
    rows: List[Dict[str, object]] = []
    for engine in sorted(best):
        row: Dict[str, object] = {"engine": engine}
        for instance in instances:
            if instance in best[engine]:
                row[instance] = best[engine][instance]
        rows.append(row)
    return rows


def render_throughput_matrix(
    records: Sequence[Dict[str, Any]],
    title: str = "engine x instance throughput (cases/sec, best of run)",
) -> str:
    """Render the matrix as an aligned table (the CI job-summary artifact)."""
    rows = throughput_matrix_rows(records)
    if not rows:
        return f"{title}\n(no bench records)"
    columns = ["engine"]
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return render_table(rows, columns=columns, title=title)


def gap_matrix_rows(records: Sequence[Dict[str, Any]]) -> List[Dict[str, object]]:
    """Pivot solver records into a method x instance gap-vs-time matrix.

    Solver benchmarks (``bench_solvers``, the tracking ground truth) emit
    records carrying ``method``, ``gap`` and ``seconds``; each cell reports
    the best (smallest) relative gap that method reached on that instance
    and the wall time of that run, as ``gap @ seconds``.  Records without a
    ``method`` or ``gap`` field (throughput records) are skipped.
    """
    instances: List[str] = []
    best: Dict[str, Dict[str, tuple]] = {}
    for record in records:
        method = record.get("method")
        gap = record.get("gap")
        if method is None or gap is None or gap != gap:
            continue
        instance = str(record.get("instance", "-"))
        seconds = float(record.get("seconds", float("nan")))
        if instance not in instances:
            instances.append(instance)
        row = best.setdefault(str(method), {})
        current = row.get(instance)
        if current is None or float(gap) < current[0]:
            row[instance] = (float(gap), seconds)
    rows: List[Dict[str, object]] = []
    for method in sorted(best):
        row: Dict[str, object] = {"method": method}
        for instance in instances:
            if instance in best[method]:
                gap, seconds = best[method][instance]
                row[instance] = f"{gap:.2e} @ {seconds:.2f}s"
        rows.append(row)
    return rows


def render_gap_matrix(
    records: Sequence[Dict[str, Any]],
    title: str = "method x instance relative gap (best gap @ wall time)",
) -> str:
    """Render the solver gap matrix as an aligned table."""
    rows = gap_matrix_rows(records)
    if not rows:
        return f"{title}\n(no solver records)"
    columns = ["method"]
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return render_table(rows, columns=columns, title=title)
