"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "braess", "--policy", "uniform", "--period", "0.1", "--fresh"]
        )
        assert args.command == "simulate"
        assert args.policy == "uniform"
        assert args.period == "0.1"
        assert args.fresh


class TestCommands:
    def test_list_instances(self, capsys):
        assert main(["list-instances"]) == 0
        output = capsys.readouterr().out
        assert "braess" in output
        assert "two-links" in output

    def test_describe(self, capsys):
        assert main(["describe", "braess"]) == 0
        output = capsys.readouterr().out
        assert "D (max path length)" in output
        assert "safe update period" in output

    def test_solve(self, capsys):
        assert main(["solve", "pigou-linear"]) == 0
        output = capsys.readouterr().out
        assert "Wardrop equilibrium" in output
        assert "duality gap" in output

    def test_solve_honours_explicit_zero_tolerance(self, capsys):
        # --tolerance 0 means "run to the iteration cap (or an exact gap)",
        # not "silently substitute the default tolerance".
        assert main(["solve", "parallel-8-affine", "--tolerance", "0"]) == 0
        output = capsys.readouterr().out
        assert "iterations = 2000" in output
        assert "converged = False" in output

    def test_solve_edge_flow_reports_raw_tstt(self, capsys):
        assert main(["solve", "sioux-falls-mini", "--edge-flow"]) == 0
        output = capsys.readouterr().out
        assert "Edge-flow equilibrium" in output
        assert "TSTT (raw TNTP units)" in output
        assert "relative duality gap" in output
        # raw TSTT must be in vehicle-minutes territory, not normalised units
        tstt_line = next(line for line in output.splitlines() if "TSTT (raw" in line)
        assert float(tstt_line.split("=")[1]) > 1e4

    def test_simulate_with_scenario(self, capsys):
        assert main([
            "simulate", "braess", "--policy", "uniform", "--period", "0.25",
            "--horizon", "3", "--scenario", "morning-peak",
        ]) == 0
        output = capsys.readouterr().out
        assert "scenario: morning-peak" in output

    def test_simulate_rejects_unknown_scenario(self, capsys):
        assert main([
            "simulate", "braess", "--period", "0.25", "--scenario", "nope",
        ]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_simulate_rejects_mismatched_scenario(self, capsys):
        # braess-closure needs the Braess shortcut edge
        assert main([
            "simulate", "pigou-linear", "--period", "0.25",
            "--scenario", "braess-closure",
        ]) == 2
        assert "braess" in capsys.readouterr().err

    def test_sweep_with_scenario_echoes_column(self, capsys):
        assert main([
            "sweep", "braess", "--policy", "uniform", "--periods", "0.2,0.4",
            "--horizon", "2", "--steps-per-phase", "10",
            "--scenario", "morning-peak",
        ]) == 0
        output = capsys.readouterr().out
        assert "scenario" in output
        assert "morning-peak" in output

    def test_simulate_auto_period(self, capsys):
        assert main(["simulate", "two-links", "--policy", "replicator",
                     "--horizon", "10"]) == 0
        output = capsys.readouterr().out
        assert "update period" in output
        assert "final eq. violation" in output

    def test_simulate_explicit_period_fresh(self, capsys):
        assert main(["simulate", "pigou-linear", "--policy", "uniform",
                     "--period", "0.1", "--horizon", "5", "--fresh"]) == 0
        assert "fresh info" in capsys.readouterr().out

    def test_simulate_rejects_auto_for_non_smooth_policy(self, capsys):
        assert main(["simulate", "two-links", "--policy", "better-response",
                     "--horizon", "5"]) == 2

    def test_simulate_rejects_non_positive_period(self):
        assert main(["simulate", "two-links", "--period", "0", "--horizon", "5"]) == 2

    def test_oscillate(self, capsys):
        assert main(["oscillate", "--beta", "2", "--period", "0.5", "--phases", "10"]) == 0
        output = capsys.readouterr().out
        assert "predicted phase-start latency" in output
        assert "measured" in output

    def test_unknown_instance_raises(self):
        with pytest.raises(KeyError):
            main(["describe", "not-an-instance"])
