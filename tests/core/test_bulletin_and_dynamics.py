"""Unit tests for the bulletin board and the numerical integrators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BulletinBoard,
    FreshInformationBoard,
    euler_step,
    integrate,
    integration_step_for,
    rk4_step,
)
from repro.wardrop import FlowVector


class TestBulletinBoard:
    def test_requires_positive_period(self, two_links):
        with pytest.raises(ValueError):
            BulletinBoard(two_links, 0.0)

    def test_snapshot_before_post_raises(self, two_links):
        board = BulletinBoard(two_links, 0.5)
        with pytest.raises(RuntimeError):
            _ = board.snapshot

    def test_phase_start_floor(self, two_links):
        board = BulletinBoard(two_links, 0.5)
        assert board.phase_start(0.74) == pytest.approx(0.5)
        assert board.phase_start(1.0) == pytest.approx(1.0)

    def test_posted_latencies_are_frozen(self, two_links):
        board = BulletinBoard(two_links, 1.0)
        lopsided = FlowVector(two_links, [0.9, 0.1])
        board.post(0.0, lopsided.values())
        posted = board.snapshot.path_latencies.copy()
        # The flow changes, but within the phase the board must not.
        assert not board.maybe_update(0.5, np.array([0.5, 0.5]))
        assert np.allclose(board.snapshot.path_latencies, posted)

    def test_update_at_phase_boundary(self, two_links):
        board = BulletinBoard(two_links, 1.0)
        board.post(0.0, np.array([0.9, 0.1]))
        assert board.maybe_update(1.0, np.array([0.5, 0.5]))
        assert board.phase_index == 1
        assert np.allclose(board.snapshot.path_flows, [0.5, 0.5])

    def test_needs_update_initially(self, two_links):
        board = BulletinBoard(two_links, 1.0)
        assert board.needs_update(0.0)

    def test_path_latencies_consistent_with_edge_latencies(self, braess):
        board = BulletinBoard(braess, 0.5)
        flow = FlowVector.uniform(braess)
        snapshot = board.post(0.0, flow.values())
        expected = braess.path_latencies(flow.values())
        assert np.allclose(snapshot.path_latencies, expected)

    def test_fresh_board_always_updates(self, two_links):
        board = FreshInformationBoard(two_links)
        board.post(0.0, np.array([0.9, 0.1]))
        assert board.needs_update(1e-9)
        assert board.phase_start(0.123) == pytest.approx(0.123)


class TestIntegrators:
    def test_euler_linear_decay(self):
        # dx/dt = -x, x(0)=1: Euler with small steps approximates exp(-1).
        field = lambda t, x: -x
        state = np.array([1.0])
        result = integrate(field, state, 0.0, 1.0, max_step=1e-3, method="euler")
        assert result[0] == pytest.approx(np.exp(-1.0), rel=1e-2)

    def test_rk4_linear_decay_high_accuracy(self):
        field = lambda t, x: -x
        state = np.array([1.0])
        result = integrate(field, state, 0.0, 1.0, max_step=0.05, method="rk4")
        assert result[0] == pytest.approx(np.exp(-1.0), rel=1e-7)

    def test_rk4_more_accurate_than_euler(self):
        field = lambda t, x: -x
        state = np.array([1.0])
        exact = np.exp(-1.0)
        euler = integrate(field, state, 0.0, 1.0, max_step=0.05, method="euler")[0]
        rk4 = integrate(field, state, 0.0, 1.0, max_step=0.05, method="rk4")[0]
        assert abs(rk4 - exact) < abs(euler - exact)

    def test_single_steps(self):
        field = lambda t, x: np.array([2.0])
        assert euler_step(field, 0.0, np.array([0.0]), 0.5)[0] == pytest.approx(1.0)
        assert rk4_step(field, 0.0, np.array([0.0]), 0.5)[0] == pytest.approx(1.0)

    def test_time_dependent_field(self):
        # dx/dt = t  ->  x(1) = 1/2.
        field = lambda t, x: np.array([t])
        result = integrate(field, np.array([0.0]), 0.0, 1.0, max_step=0.01, method="rk4")
        assert result[0] == pytest.approx(0.5, rel=1e-6)

    def test_zero_duration_returns_copy(self):
        state = np.array([1.0, 2.0])
        result = integrate(lambda t, x: -x, state, 1.0, 1.0, max_step=0.1)
        assert np.allclose(result, state)
        assert result is not state

    def test_invalid_arguments(self):
        field = lambda t, x: -x
        with pytest.raises(ValueError):
            integrate(field, np.array([1.0]), 1.0, 0.0, 0.1)
        with pytest.raises(ValueError):
            integrate(field, np.array([1.0]), 0.0, 1.0, -0.1)
        with pytest.raises(ValueError):
            integrate(field, np.array([1.0]), 0.0, 1.0, 0.1, method="leapfrog")

    def test_integration_step_for(self):
        assert integration_step_for(0.5, 50) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            integration_step_for(0.0, 50)
