"""Parameter-sweep harness shared by the benchmarks and examples.

Every experiment in EXPERIMENTS.md is a sweep: run the same dynamics while
varying one or two parameters (update period, smoothness, number of links,
approximation target delta, population size ...) and collect one summary row
per setting.  The harness here removes the boilerplate so each benchmark
focuses on what it varies and what it measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..core.policy import ReroutingPolicy
from ..core.simulator import simulate
from ..core.trajectory import Trajectory
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .convergence import ConvergenceSummary, count_bad_phases

RowBuilder = Callable[[Trajectory], Mapping[str, object]]


@dataclass
class SweepCase:
    """One parameter setting of a sweep.

    ``parameters`` are echoed into the result row; the remaining fields
    define the run.
    """

    parameters: Dict[str, object]
    network: WardropNetwork
    policy: ReroutingPolicy
    update_period: float
    horizon: float
    initial_flow: Optional[FlowVector] = None
    stale: bool = True
    steps_per_phase: int = 50


@dataclass
class SweepResult:
    """The collected rows of a sweep, one per case."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def append(self, row: Mapping[str, object]) -> None:
        self.rows.append(dict(row))

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def run_sweep(cases: Iterable[SweepCase], row_builder: RowBuilder) -> SweepResult:
    """Run every case and collect ``parameters | row_builder(trajectory)`` rows."""
    result = SweepResult()
    for case in cases:
        trajectory = simulate(
            case.network,
            case.policy,
            update_period=case.update_period,
            horizon=case.horizon,
            initial_flow=case.initial_flow,
            stale=case.stale,
            steps_per_phase=case.steps_per_phase,
        )
        row: Dict[str, object] = dict(case.parameters)
        row.update(row_builder(trajectory))
        result.append(row)
    return result


def convergence_row_builder(delta: float, epsilon: float) -> RowBuilder:
    """Return a row builder reporting the Theorem 6/7 bad-phase counts."""

    def build(trajectory: Trajectory) -> Mapping[str, object]:
        summary: ConvergenceSummary = count_bad_phases(trajectory, delta, epsilon)
        return {
            "phases": summary.total_phases,
            "bad_phases": summary.bad_phases,
            "weak_bad_phases": summary.weak_bad_phases,
            "last_bad_phase": summary.last_bad_phase,
        }

    return build


def cartesian(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Return the cartesian product of named parameter axes as dicts.

    ``cartesian(T=[0.1, 0.2], beta=[1, 2])`` yields four dictionaries; the
    benches use this to spell out their grids declaratively.
    """
    names = list(axes)
    combos: List[Dict[str, object]] = [{}]
    for name in names:
        combos = [dict(combo, **{name: value}) for combo in combos for value in axes[name]]
    return combos
