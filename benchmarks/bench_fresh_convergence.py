"""E2 -- Theorem 2: smooth policies converge under up-to-date information.

Runs uniform-sampling and proportional-sampling (replicator) policies with
the linear migration rule on several instances with continuously refreshed
information and reports the final potential gap, the final equilibrium
violation and whether the potential trace was monotone (as the Lyapunov
argument of Theorem 2 requires).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import print_table
from repro.core import replicator_policy, simulate, uniform_policy
from repro.instances import braess_network, get_instance, pigou_network, two_link_network
from repro.solvers import optimal_potential
from repro.wardrop import FlowVector, equilibrium_violation, potential, unsatisfied_volume

INSTANCES = {
    "two-links(beta=4)": lambda: two_link_network(beta=4.0),
    "pigou-quadratic": lambda: pigou_network(degree=2),
    "braess": braess_network,
    "grid-3x3": lambda: get_instance("grid-3x3"),
}

POLICIES = {
    "uniform+linear": uniform_policy,
    "replicator": replicator_policy,
}


def run_fresh(network, make_policy, horizon=60.0):
    policy = make_policy(network)
    # Start far from equilibrium but with every path slightly populated, so
    # that proportional sampling can discover alternatives (the paper requires
    # sigma_PQ > 0 for exactly this reason).
    lopsided = FlowVector.single_path(network, {i: 0 for i in range(network.num_commodities)})
    start = lopsided.blend(FlowVector.uniform(network), 0.05)
    return simulate(
        network, policy, update_period=0.05, horizon=horizon,
        initial_flow=start, stale=False, steps_per_phase=10,
    )


@pytest.mark.experiment("E2")
def test_fresh_information_convergence_table(report_header):
    rows = []
    for instance_name, make_instance in INSTANCES.items():
        network = make_instance()
        optimum = optimal_potential(network)
        for policy_name, make_policy in POLICIES.items():
            trajectory = run_fresh(network, make_policy)
            trace = trajectory.potential_trace()
            rows.append(
                {
                    "instance": instance_name,
                    "policy": policy_name,
                    "final_gap": potential(trajectory.final_flow) - optimum,
                    "final_violation": equilibrium_violation(trajectory.final_flow),
                    "unsatisfied(0.1)": unsatisfied_volume(trajectory.final_flow, 0.1),
                    "monotone_potential": bool(np.all(np.diff(trace) <= 1e-8)),
                }
            )
    print_table(rows, title="E2: convergence under up-to-date information (Theorem 2)")
    for row in rows:
        assert row["monotone_potential"]
        assert row["final_gap"] < 0.05
        # A vanishing fraction of agents may still sit on expensive paths
        # (convergence is asymptotic); the volume of noticeably unsatisfied
        # agents must be essentially zero.
        assert row["unsatisfied(0.1)"] < 0.05


@pytest.mark.experiment("E2")
def test_benchmark_fresh_simulation(benchmark, report_header):
    network = braess_network()
    result = benchmark(run_fresh, network, uniform_policy, 10.0)
    assert len(result.phases) > 0
