"""Unit tests for the exact parallel-link solver and the line-search helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances import (
    braess_network,
    identical_linear_links,
    parallel_links_network,
    pigou_like_links,
    two_link_network,
)
from repro.solvers import (
    bisection_root,
    equilibrium_latency_level,
    golden_section_minimise,
    solve_parallel_links,
)
from repro.wardrop import AffineLatency, ConstantLatency, is_wardrop_equilibrium


class TestLineSearch:
    def test_golden_section_quadratic(self):
        minimiser = golden_section_minimise(lambda x: (x - 0.3) ** 2)
        assert minimiser == pytest.approx(0.3, abs=1e-6)

    def test_golden_section_boundary_minimum(self):
        assert golden_section_minimise(lambda x: x) == pytest.approx(0.0, abs=1e-6)

    def test_bisection_interior_root(self):
        minimiser = bisection_root(lambda x: 2 * (x - 0.7))
        assert minimiser == pytest.approx(0.7, abs=1e-9)

    def test_bisection_clamps_to_bounds(self):
        assert bisection_root(lambda x: 1.0) == 0.0
        assert bisection_root(lambda x: -1.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            golden_section_minimise(lambda x: x, lo=1.0, hi=0.0)
        with pytest.raises(ValueError):
            bisection_root(lambda x: x, lo=1.0, hi=0.0)


class TestParallelLinkSolver:
    def test_two_links_even_split(self):
        network = two_link_network(beta=5.0)
        flow = solve_parallel_links(network)
        assert flow.values() == pytest.approx([0.5, 0.5], abs=1e-6)

    def test_identical_links(self):
        network = identical_linear_links(8)
        flow = solve_parallel_links(network)
        assert flow.values() == pytest.approx([0.125] * 8, abs=1e-6)

    def test_affine_asymmetric_links(self):
        # l1 = x, l2 = x + 0.5: equilibrium at l1(f1) = l2(f2) when both used:
        # f1 = f2 + 0.5, f1 + f2 = 1 -> f1 = 0.75.
        network = parallel_links_network([AffineLatency(1.0, 0.0), AffineLatency(1.0, 0.5)])
        flow = solve_parallel_links(network)
        assert flow.values() == pytest.approx([0.75, 0.25], abs=1e-4)
        assert is_wardrop_equilibrium(flow, tolerance=1e-3)

    def test_unused_expensive_link(self):
        # The constant link is so expensive it should receive no flow.
        network = parallel_links_network([AffineLatency(1.0, 0.0), ConstantLatency(5.0)])
        flow = solve_parallel_links(network)
        assert flow.values()[1] == pytest.approx(0.0, abs=1e-6)

    def test_pigou_like_instance_is_equilibrium(self):
        network = pigou_like_links(5, degree=2)
        flow = solve_parallel_links(network)
        assert is_wardrop_equilibrium(flow, tolerance=1e-3)

    def test_equilibrium_latency_level(self):
        network = parallel_links_network([AffineLatency(1.0, 0.0), AffineLatency(1.0, 0.5)])
        assert equilibrium_latency_level(network) == pytest.approx(0.75, abs=1e-3)

    def test_rejects_non_parallel_network(self):
        with pytest.raises(ValueError):
            solve_parallel_links(braess_network())
