"""Equilibrium tracking: per-interval ground truth and the three metrics."""

import numpy as np
import pytest

from repro.core import replicator_policy, simulate, uniform_policy
from repro.instances import braess_network, pigou_network
from repro.scenarios import (
    LinkIncident,
    PiecewiseConstantSchedule,
    Scenario,
    interval_equilibria,
    time_to_reequilibrate,
    tracking_error,
    tracking_regret,
)


def demand_step_scenario():
    return Scenario(demand=PiecewiseConstantSchedule([4.0], [1.0, 1.8]))


class TestIntervalEquilibria:
    def test_one_equilibrium_per_interval(self):
        network = pigou_network(degree=1)
        track = interval_equilibria(network, demand_step_scenario(), horizon=8.0)
        assert track.space == "path"
        np.testing.assert_array_equal(track.times, [0.0, 4.0])
        assert len(track.equilibria) == 2
        assert all(entry.converged for entry in track.equilibria)
        # Pigou with l(x) = x vs constant 1: equilibrium puts everything on
        # the nonlinear link; stretched demand raises its latency, so the
        # post-step equilibrium shifts mass to the constant link.
        before, after = track.equilibria
        assert not np.allclose(before.flow_values, after.flow_values)
        assert track.equilibrium_at(3.9) is before
        assert track.equilibrium_at(4.0) is after

    def test_cache_shared_across_rows(self):
        network = pigou_network(degree=1)
        cache = {}
        scenarios = [
            Scenario(demand=PiecewiseConstantSchedule([t], [1.0, 1.8]))
            for t in (2.0, 3.0, 5.0)
        ]
        solves = []
        for scenario in scenarios:
            track = interval_equilibria(network, scenario, horizon=8.0, cache=cache)
            solves.append(track.solves)
        # Three rows revisit the same two environment states: two solves for
        # the first row, zero fresh solves afterwards.
        assert solves == [2, 0, 0]

    def test_cache_distinguishes_networks(self):
        # Regression: the cache key used to be (modulation, space, tolerance)
        # only, so two *different* networks sharing one cache dict would
        # silently reuse each other's equilibria.  The key must carry the
        # network's identity.
        cache = {}
        linear = pigou_network(degree=1)
        quadratic = pigou_network(degree=2)
        track_linear = interval_equilibria(
            linear, demand_step_scenario(), horizon=8.0, cache=cache
        )
        track_quadratic = interval_equilibria(
            quadratic, demand_step_scenario(), horizon=8.0, cache=cache
        )
        # The second network must not be answered from the first one's cache:
        assert track_linear.solves == 2
        assert track_quadratic.solves == 2
        # ...and the equilibria are genuinely the two instances' own: both
        # saturate the nonlinear link, but its Beckmann potential differs
        # (integral of x vs x^2).
        assert (
            abs(
                track_linear.equilibria[0].potential
                - track_quadratic.equilibria[0].potential
            )
            > 0.05
        )

    def test_warm_start_and_method_are_threaded(self):
        network = braess_network()
        scenario = Scenario(
            incidents=[
                LinkIncident(("a", "b", 0), 3.0, 6.0, capacity_factor=0.0, closure_penalty=10.0)
            ]
        )
        cold = interval_equilibria(
            network, scenario, horizon=10.0, space="edge", tolerance=1e-6,
            warm_start=False,
        )
        warm = interval_equilibria(
            network, scenario, horizon=10.0, space="edge", tolerance=1e-6,
        )
        # Warm starting changes the iterates, never the answer.  (Whether it
        # *saves* iterations depends on the instance -- the Sioux Falls
        # acceptance benchmark in bench_solvers.py pins the saving.)
        assert cold.total_iterations > 0
        assert warm.total_iterations > 0
        for a, b in zip(cold.equilibria, warm.equilibria):
            assert a.converged and b.converged
            assert a.potential == pytest.approx(b.potential, abs=1e-6)
        accelerated = interval_equilibria(
            network, scenario, horizon=10.0, space="edge", tolerance=1e-6,
            method="bfw",
        )
        assert accelerated.method == "bfw"
        assert accelerated.equilibria[0].potential == pytest.approx(
            warm.equilibria[0].potential, abs=1e-6
        )
        # The per-interval iteration budget is honoured.
        budgeted = interval_equilibria(
            network, scenario, horizon=10.0, space="edge", tolerance=1e-12,
            max_iterations=2,
        )
        assert all(entry.iterations <= 2 for entry in budgeted.equilibria)

    def test_method_is_validated_against_the_resolved_space(self):
        network = braess_network()
        with pytest.raises(ValueError, match="pg"):
            interval_equilibria(
                network, demand_step_scenario(), horizon=8.0, space="edge",
                method="pg",
            )
        with pytest.raises(ValueError, match="bfw"):
            interval_equilibria(
                network, demand_step_scenario(), horizon=8.0, space="path",
                method="bfw",
            )

    def test_edge_space_on_request(self):
        network = braess_network()
        track = interval_equilibria(
            network, demand_step_scenario(), horizon=8.0, space="edge", tolerance=1e-5
        )
        assert track.space == "edge"
        assert track.oracle is not None
        for entry in track.equilibria:
            assert entry.edge_flows is not None
            assert entry.flow_values is None


class TestMetrics:
    def test_tracking_error_spikes_then_recovers(self):
        network = pigou_network(degree=1)
        policy = uniform_policy(network)
        # interior equilibria on both sides of the step: (1/6, 5/6) -> (4/9, 5/9)
        scenario = Scenario(demand=PiecewiseConstantSchedule([6.0], [1.2, 1.8]))
        trajectory = simulate(
            network, policy, update_period=0.1, horizon=12.0,
            scenario=scenario, steps_per_phase=20,
        )
        track = interval_equilibria(network, scenario, horizon=12.0)
        times, errors = tracking_error(trajectory, track)
        assert times.shape == errors.shape
        before = errors[(times > 5.5) & (times < 6.0)]
        spike = errors[(times >= 6.0) & (times < 6.3)]
        tail = errors[times > 11.0]
        # approaching the first target, jolted at the step, re-converged after
        assert before.max() < 0.25
        assert spike.max() > 0.3
        assert tail.max() < 0.05
        recovery = time_to_reequilibrate(times, errors, 6.0, tolerance=0.2)
        assert 0.0 < recovery < 4.0
        # an impossible tolerance never recovers
        assert time_to_reequilibrate(times, errors, 6.0, tolerance=-1.0) == float("inf")

    def test_tracking_regret_is_positive_and_bounded(self):
        network = pigou_network(degree=1)
        policy = uniform_policy(network)
        scenario = demand_step_scenario()
        trajectory = simulate(
            network, policy, update_period=0.2, horizon=8.0,
            scenario=scenario, steps_per_phase=10,
        )
        track = interval_equilibria(network, scenario, horizon=8.0)
        regret = tracking_regret(trajectory, track)
        # The equilibrium minimises the Beckmann potential, so the lagging
        # dynamics accumulate a strictly positive (but modest) potential gap.
        assert 0.0 < regret < 2.0

    def test_regret_vanishes_on_the_equilibrium(self):
        network = pigou_network(degree=1)
        scenario = demand_step_scenario()
        track = interval_equilibria(network, scenario, horizon=8.0)
        # A "trajectory" that sits on the instantaneous equilibrium of every
        # interval accrues (essentially) zero regret.
        from repro.core.trajectory import Trajectory
        from repro.wardrop.flow import FlowVector

        trajectory = Trajectory(network=network, policy_name="oracle", update_period=0.5)
        for t in np.arange(0.0, 8.01, 0.5):
            reference = track.equilibrium_at(float(t))
            trajectory.record(
                float(t), FlowVector(network, reference.flow_values, validate=False), 0
            )
        assert abs(tracking_regret(trajectory, track)) < 1e-6

    def test_incident_track_on_braess(self):
        network = braess_network()
        scenario = Scenario(
            incidents=[
                LinkIncident(("a", "b", 0), 3.0, 6.0, capacity_factor=0.0, closure_penalty=10.0)
            ]
        )
        track = interval_equilibria(network, scenario, horizon=10.0)
        np.testing.assert_array_equal(track.times, [0.0, 3.0, 6.0])
        # closing the shortcut lowers the equilibrium latency from 2 to 1.5
        assert track.equilibria[0].average_latency == pytest.approx(2.0, abs=1e-3)
        assert track.equilibria[1].average_latency == pytest.approx(1.5, abs=1e-3)
        assert track.equilibria[2].average_latency == pytest.approx(2.0, abs=1e-3)


class TestMetricEdgeCases:
    def test_reequilibration_on_empty_samples_never_recovers(self):
        assert time_to_reequilibrate(
            np.array([]), np.array([]), 0.0, tolerance=1.0
        ) == float("inf")

    def test_reequilibration_on_a_singleton_sample(self):
        times = np.array([5.0])
        assert time_to_reequilibrate(times, np.array([0.0]), 5.0, 0.1) == 0.0
        assert time_to_reequilibrate(times, np.array([0.5]), 5.0, 0.1) == float("inf")

    def test_reequilibration_breakpoint_past_the_recorded_range(self):
        times = np.arange(0.0, 5.0, 0.5)
        errors = np.zeros_like(times)
        assert time_to_reequilibrate(times, errors, 10.0, 0.1) == float("inf")

    def test_reequilibration_when_the_error_never_recovers(self):
        times = np.arange(0.0, 5.0, 0.5)
        errors = np.full_like(times, 2.0)
        assert time_to_reequilibrate(times, errors, 1.0, tolerance=1.0) == float("inf")

    def test_regret_of_empty_and_singleton_trajectories_is_zero(self):
        from repro.core.trajectory import Trajectory
        from repro.wardrop.flow import FlowVector

        network = pigou_network(degree=1)
        scenario = demand_step_scenario()
        track = interval_equilibria(network, scenario, horizon=8.0)
        empty = Trajectory(network=network, policy_name="none", update_period=0.5)
        assert tracking_regret(empty, track) == 0.0
        singleton = Trajectory(network=network, policy_name="one", update_period=0.5)
        singleton.record(0.0, FlowVector.uniform(network), 0)
        # One sample spans no time, so the trapezoid integral is empty.
        assert tracking_regret(singleton, track) == 0.0
