"""E4 -- Theorem 6: convergence time of uniform sampling + linear migration.

Measures, on parallel-link families of growing size, the number of update
periods that do *not* start at a (delta, eps)-equilibrium and compares it
with the Theorem 6 bound ``O(|P| / (eps T) * (l_max/delta)^2)``.  The measured
count must stay below the bound, and its growth with ``|P|`` and ``1/delta^2``
should be visible.

The sweep runs through the experiment runner: each link count is its own
network, so the cases are heterogeneous and dispatch case by case, while the
per-delta evaluation happens in a multi-row builder on the single trajectory
(one simulation per network, one result row per delta).  The table is
exported via ``SweepResult.to_csv`` / ``to_jsonl``.
"""

from __future__ import annotations

import pytest

from repro.analysis import SweepCase, count_bad_phases, print_table, run_sweep
from repro.core import uniform_policy
from repro.core.bounds import uniform_convergence_bound
from repro.instances import heterogeneous_affine_links
from repro.wardrop import FlowVector

LINK_COUNTS = [2, 4, 8, 16]
DELTAS = [0.4, 0.2, 0.1]
EPSILON = 0.1


def uniform_case(num_links, horizon=120.0):
    """Build the sweep case for one parallel-link family size."""
    network = heterogeneous_affine_links(num_links, seed=7)
    policy = uniform_policy(network)
    period = min(policy.safe_update_period(network), 1.0)
    start = FlowVector.single_path(network, {0: 0})
    return SweepCase(
        parameters={"links(|P|)": num_links},
        network=network,
        policy=policy,
        update_period=period,
        horizon=horizon,
        initial_flow=start,
        steps_per_phase=20,
    )


def per_delta_rows(trajectory):
    """Return one row per target delta for a single uniform-sampling run."""
    rows = []
    for delta in DELTAS:
        summary = count_bad_phases(trajectory, delta, EPSILON)
        bound = uniform_convergence_bound(
            trajectory.network, trajectory.update_period, delta, EPSILON
        )
        rows.append(
            {
                "delta": delta,
                "T": trajectory.update_period,
                "bad_phases": summary.bad_phases,
                "thm6_bound": bound,
                "within_bound": summary.bad_phases <= bound,
                "total_phases": summary.total_phases,
            }
        )
    return rows


@pytest.mark.experiment("E4")
def test_uniform_sampling_bad_phase_counts(report_header, tmp_path):
    cases = [uniform_case(num_links) for num_links in LINK_COUNTS]
    result = run_sweep(cases, per_delta_rows, engine="auto")
    result.to_csv(tmp_path / "uniform_convergence.csv")
    result.to_jsonl(tmp_path / "uniform_convergence.jsonl")
    print_table(result.rows, title="E4: Theorem 6 -- uniform sampling convergence time")
    for row in result.rows:
        assert row["within_bound"]
    # Tightening delta by 2x must not shrink the bad-phase count: the
    # (delta, eps) requirement is strictly harder to satisfy.
    for num_links in LINK_COUNTS:
        counts = [row["bad_phases"] for row in result.rows if row["links(|P|)"] == num_links]
        assert counts == sorted(counts)


@pytest.mark.experiment("E4")
def test_benchmark_uniform_policy_run(benchmark, report_header):
    def run():
        return run_sweep([uniform_case(8, horizon=30.0)], per_delta_rows, engine="auto")

    result = benchmark(run)
    assert result.rows[0]["total_phases"] > 0
