"""Property-based tests for latency functions, policies and theory bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LinearMigration,
    ProportionalSampling,
    ScaledLinearMigration,
    SoftmaxSampling,
    UniformSampling,
    oscillation_amplitude,
    oscillation_fixed_point,
    safe_update_period,
    two_link_best_response_flow,
    uniform_policy,
    replicator_policy,
)
from repro.instances import identical_linear_links, two_link_network
from repro.wardrop import (
    AffineLatency,
    FlowVector,
    MonomialLatency,
    PolynomialLatency,
    ThresholdLatency,
)

PARALLEL = identical_linear_links(4)


class TestLatencyProperties:
    @given(slope=st.floats(min_value=0.0, max_value=10.0),
           intercept=st.floats(min_value=0.0, max_value=5.0),
           x=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_affine_integral_derivative_consistency(self, slope, intercept, x):
        latency = AffineLatency(slope, intercept)
        # d/dx integral = value, checked by a small finite difference.
        step = 1e-6
        hi = min(1.0, x + step)
        lo = max(0.0, x - step)
        if hi > lo:
            numeric = (latency.integral(hi) - latency.integral(lo)) / (hi - lo)
            assert numeric == pytest.approx(latency.value(x), abs=1e-4, rel=1e-3)

    @given(coefficients=st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=1, max_size=5),
           x=st.floats(min_value=0.0, max_value=1.0),
           y=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_polynomial_monotone(self, coefficients, x, y):
        latency = PolynomialLatency(coefficients)
        lo, hi = min(x, y), max(x, y)
        assert latency.value(lo) <= latency.value(hi) + 1e-9

    @given(coefficient=st.floats(min_value=0.01, max_value=5.0),
           degree=st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_monomial_slope_bound_is_tight_at_one(self, coefficient, degree):
        latency = MonomialLatency(coefficient, degree)
        assert latency.max_slope() == pytest.approx(coefficient * degree)

    @given(beta=st.floats(min_value=0.0, max_value=20.0),
           x=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=80, deadline=None)
    def test_threshold_latency_matches_max_form(self, beta, x):
        latency = ThresholdLatency(beta)
        assert latency.value(x) == pytest.approx(max(0.0, beta * (x - 0.5)), abs=1e-9)


class TestSamplingProperties:
    @given(shares=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_sampling_matrices_are_stochastic(self, shares):
        array = np.asarray(shares, dtype=float)
        total = array.sum()
        flow = FlowVector(PARALLEL, array / total if total > 0 else np.full(4, 0.25))
        latencies = flow.path_latencies()
        for rule in [UniformSampling(), ProportionalSampling(), SoftmaxSampling(2.0)]:
            sigma = rule.probabilities(PARALLEL, flow.values(), latencies)
            rule.validate(sigma, PARALLEL)


class TestMigrationProperties:
    @given(l_max=st.floats(min_value=0.1, max_value=10.0),
           high=st.floats(min_value=0.0, max_value=10.0),
           low=st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_linear_migration_is_alpha_smooth_and_selfish(self, l_max, high, low):
        rule = LinearMigration(l_max)
        probability = rule.probability(high, low)
        assert 0.0 <= probability <= 1.0
        if high <= low:
            assert probability == 0.0
        else:
            assert probability <= (1.0 / l_max) * (high - low) + 1e-12

    @given(alpha=st.floats(min_value=0.01, max_value=50.0),
           gap=st.floats(min_value=0.0, max_value=5.0))
    @settings(max_examples=100, deadline=None)
    def test_scaled_linear_respects_definition_2(self, alpha, gap):
        rule = ScaledLinearMigration(alpha)
        assert rule.probability(1.0 + gap, 1.0) <= alpha * gap + 1e-12


class TestPolicyProperties:
    @given(shares=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_growth_rates_conserve_demand_and_point_downhill(self, shares):
        array = np.asarray(shares, dtype=float)
        total = array.sum()
        flow = FlowVector(PARALLEL, array / total if total > 0 else np.full(4, 0.25))
        latencies = flow.path_latencies()
        for policy in [uniform_policy(PARALLEL), replicator_policy(PARALLEL)]:
            rates = policy.growth_rates(PARALLEL, flow.values(), flow.values(), latencies)
            assert np.sum(rates) == pytest.approx(0.0, abs=1e-10)
            # The instantaneous potential change sum_P l_P * df_P must be <= 0
            # (Theorem 2's selfishness argument).
            assert float(np.dot(latencies, rates)) <= 1e-10


class TestBoundProperties:
    @given(beta=st.floats(min_value=0.01, max_value=50.0),
           period=st.floats(min_value=0.01, max_value=3.0))
    @settings(max_examples=100, deadline=None)
    def test_oscillation_amplitude_below_half_beta(self, beta, period):
        amplitude = oscillation_amplitude(beta, period)
        assert 0.0 < amplitude < beta / 2.0

    @given(period=st.floats(min_value=0.01, max_value=3.0))
    @settings(max_examples=100, deadline=None)
    def test_fixed_point_really_is_periodic(self, period):
        start = oscillation_fixed_point(period)
        assert 0.5 < start < 1.0
        assert two_link_best_response_flow(start, period, 2 * period) == pytest.approx(
            start, abs=1e-9
        )

    @given(beta=st.floats(min_value=0.01, max_value=20.0),
           alpha=st.floats(min_value=0.01, max_value=20.0))
    @settings(max_examples=80, deadline=None)
    def test_safe_period_formula(self, beta, alpha):
        network = two_link_network(beta=beta)
        assert safe_update_period(network, alpha) == pytest.approx(1.0 / (4.0 * alpha * beta))
