"""Unit tests for the Frank--Wolfe Wardrop-equilibrium solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.instances import (
    braess_network,
    heterogeneous_affine_links,
    identical_linear_links,
    pigou_network,
    two_link_network,
)
from repro.solvers import (
    all_or_nothing_flow,
    duality_gap,
    optimal_potential,
    solve_wardrop_equilibrium,
)
from repro.solvers.parallel_links import solve_parallel_links
from repro.wardrop import FlowVector, is_wardrop_equilibrium, potential


class TestAllOrNothing:
    def test_routes_to_cheapest_path(self, pigou):
        latencies = np.array([1.0, 0.2])
        target = all_or_nothing_flow(pigou, latencies)
        assert target[1] == pytest.approx(1.0)
        assert target[0] == pytest.approx(0.0)

    def test_respects_commodity_demands(self, layered):
        flow = FlowVector.uniform(layered)
        target = all_or_nothing_flow(layered, flow.path_latencies())
        FlowVector(layered, target).check_feasible()


class TestSolver:
    def test_two_links_even_split(self):
        network = two_link_network(beta=3.0)
        result = solve_wardrop_equilibrium(network)
        assert result.converged
        assert result.flow.values() == pytest.approx([0.5, 0.5], abs=1e-4)

    def test_pigou_equilibrium(self):
        result = solve_wardrop_equilibrium(pigou_network(degree=1))
        assert result.flow.values()[1] == pytest.approx(1.0, abs=1e-3)
        assert is_wardrop_equilibrium(result.flow, tolerance=1e-3)

    def test_braess_equilibrium_latency_two(self):
        result = solve_wardrop_equilibrium(braess_network())
        assert result.flow.max_used_latency() == pytest.approx(2.0, abs=1e-3)

    def test_identical_links_split_evenly(self):
        network = identical_linear_links(5)
        result = solve_wardrop_equilibrium(network)
        assert result.flow.values() == pytest.approx([0.2] * 5, abs=1e-4)

    def test_duality_gap_certificate(self):
        # Frank--Wolfe converges sublinearly, so ask for a realistic gap and
        # check the certificate honestly reflects the final iterate.
        network = heterogeneous_affine_links(6, seed=2)
        result = solve_wardrop_equilibrium(network, tolerance=1e-9, max_iterations=4000)
        assert result.duality_gap <= 1e-3
        assert result.duality_gap == duality_gap(network, result.flow.values())
        # Frank--Wolfe may leave crumbs of flow on slightly suboptimal paths;
        # the volume of agents noticeably above the minimum must be tiny.
        from repro.wardrop import unsatisfied_volume

        assert unsatisfied_volume(result.flow, delta=0.05) < 0.01

    def test_gap_history_is_recorded(self):
        result = solve_wardrop_equilibrium(braess_network())
        assert len(result.gap_history) == result.iterations
        assert result.gap_history[-1] <= result.gap_history[0] + 1e-12

    def test_warm_start(self):
        network = pigou_network(degree=2)
        warm = FlowVector(network, [0.0, 1.0])
        result = solve_wardrop_equilibrium(network, initial=warm)
        assert result.converged
        assert result.iterations <= 3

    def test_warm_start_at_the_equilibrium_is_exact(self):
        # Started exactly at the equilibrium, the very first duality-gap
        # check certifies convergence: no solver iteration moves the flow.
        network = pigou_network(degree=2)
        equilibrium = solve_wardrop_equilibrium(network, tolerance=1e-10).flow
        for method in ("fw", "pg"):
            result = solve_wardrop_equilibrium(
                network, tolerance=1e-8, initial=equilibrium, method=method
            )
            assert result.converged
            assert result.iterations == 1
            assert np.allclose(result.flow.values(), equilibrium.values(), atol=1e-9)

    def test_warm_start_survives_degenerate_truthiness(self):
        # Regression: the warm start used to be dropped by `initial or
        # uniform` whenever the FlowVector's __len__-based truthiness was
        # falsy.  The check must be an explicit `is None`.
        network = pigou_network(degree=2)
        equilibrium = solve_wardrop_equilibrium(network, tolerance=1e-10).flow

        class _LenZeroFlow(FlowVector):
            def __len__(self):
                return 0

        warm = _LenZeroFlow(network, equilibrium.values())
        assert not warm  # the degenerate truthiness the `or` would trip on
        result = solve_wardrop_equilibrium(network, tolerance=1e-8, initial=warm)
        assert result.iterations == 1

    def test_rejects_edge_space_methods(self):
        with pytest.raises(ValueError, match="cfw"):
            solve_wardrop_equilibrium(pigou_network(degree=1), method="cfw")

    def test_potential_at_solution_is_minimal(self):
        network = heterogeneous_affine_links(4, seed=9)
        result = solve_wardrop_equilibrium(network, tolerance=1e-10)
        rng = np.random.default_rng(1)
        for _ in range(10):
            candidate = FlowVector.random(network, rng)
            assert result.potential_value <= potential(candidate) + 1e-6

    def test_matches_exact_parallel_link_solver(self):
        network = heterogeneous_affine_links(8, seed=4)
        fw = solve_wardrop_equilibrium(network, tolerance=1e-10)
        exact = solve_parallel_links(network)
        assert np.allclose(fw.flow.values(), exact.values(), atol=1e-3)

    def test_optimal_potential_helper(self):
        network = two_link_network(beta=2.0)
        assert optimal_potential(network) == pytest.approx(0.0, abs=1e-8)

    def test_duality_gap_function(self, pigou):
        equilibrium = solve_wardrop_equilibrium(pigou).flow
        assert duality_gap(pigou, equilibrium.values()) <= 1e-6
        assert duality_gap(pigou, np.array([1.0, 0.0])) > 0.0
