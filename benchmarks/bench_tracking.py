"""E11 -- tracking a moving equilibrium on Sioux Falls (nonstationary scenarios).

A batched ensemble of >= 32 replicas runs the stale-information dynamics on
the Sioux Falls road network while a link incident (a capacity drop on the
busiest link) hits at a *different time in every row* -- one
:class:`~repro.scenarios.scenario.Scenario` per row, all integrated as a
single :class:`~repro.batch.engine.BatchSimulator` ensemble.  The benchmark
verifies three things:

* **exactness** -- every batched row is bit-identical to a scalar
  ``simulate(..., scenario=...)`` run of the same configuration,
* **throughput** -- the ensemble runs an order of magnitude faster than the
  equivalent loop of scalar runs (the acceptance bar is 10x),
* **tracking** -- per-interval ground-truth equilibria (edge-flow
  Frank--Wolfe through the shortest-path oracle; two solves cover all rows,
  because the distinct environment states are shared) quantify how the
  dynamics chase the moving equilibrium: during the incident the error to
  the *incident* equilibrium decays (the dynamics adapt to the disruption),
  the clearance jolts the error back up (the target jumps), and the tail
  re-converges -- the jolt and the re-equilibration time are the tracking
  metrics the stationary benchmarks cannot measure.

Route choice needs routes: the TNTP loader seeds one free-flow shortest path
per OD pair, so the benchmark first *grows* the strategy sets by querying the
oracle under free-flow, equilibrium and incident-priced costs (column
generation as a preprocessing step), then freezes the grown path set for the
fixed-dimension batched sweep.

Run as a script (the CI smoke job does) or through pytest:

    PYTHONPATH=src python benchmarks/bench_tracking.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_tracking.py -q
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import print_table
from repro.telemetry import telemetry_session
from repro.telemetry.bench import bench_timer
from repro.batch.engine import BatchConfig, BatchSimulator
from repro.core import ReroutingPolicy, ScaledLinearMigration, UniformSampling, simulate
from repro.instances import sioux_falls_network
from repro.largescale import ActivePathSet, ShortestPathOracle
from repro.scenarios import (
    LinkIncident,
    Scenario,
    interval_equilibria,
    time_to_reequilibrate,
    tracking_error,
    tracking_regret,
)
from repro.solvers import solve_edge_flow_equilibrium

# Capacity drop severity: the remaining capacity fraction while an incident
# is active.  The route-growing preprocessing always prices the drop at the
# full-size value so detours are in the strategy set either way.
INCIDENT_FACTOR = 0.35
SMOKE_INCIDENT_FACTOR = 0.15


def grown_network(max_od_pairs: int):
    """Sioux Falls with oracle-grown strategy sets (fixed, multi-route).

    The loader's restricted sets hold one free-flow path per OD; augmenting
    under equilibrium and incident-priced costs adds the routes the dynamics
    need to react to congestion and to the incident, after which the set is
    frozen so the sweep batches at a fixed path dimension.
    """
    network = sioux_falls_network(max_od_pairs=max_od_pairs)
    oracle = ShortestPathOracle.for_network(network)
    active = ActivePathSet.from_network(network)
    equilibrium = solve_edge_flow_equilibrium(network, tolerance=1e-3, oracle=oracle)
    active.augment(oracle.latency_costs(network, equilibrium.edge_flows))
    incident_edge = oracle.edges[int(np.argmax(equilibrium.edge_flows))]
    incident_costs = Scenario(
        incidents=[LinkIncident(incident_edge, 0.0, 1.0, capacity_factor=INCIDENT_FACTOR)]
    ).network_at(network, 0.5)
    active.augment(oracle.latency_costs(incident_costs, equilibrium.edge_flows))
    return active.network, oracle, incident_edge


def incident_scenarios(
    incident_edge, starts, duration: float, factor: float = INCIDENT_FACTOR
) -> List[Scenario]:
    return [
        Scenario(
            name=f"incident@{start:g}",
            incidents=[
                LinkIncident(
                    incident_edge, float(start), float(start) + duration,
                    capacity_factor=factor,
                )
            ],
        )
        for start in starts
    ]


def run_benchmark(
    smoke: bool = False, scalar_rows: Optional[int] = None, method: str = "fw"
) -> dict:
    if smoke:
        max_od_pairs, batch = 20, 8
        horizon, period, steps = 12.0, 0.1, 5
        duration, first_start, last_start = 3.0, 3.0, 6.0
        factor = SMOKE_INCIDENT_FACTOR
    else:
        max_od_pairs, batch = 40, 32
        horizon, period, steps = 20.0, 0.1, 10
        duration, first_start, last_start = 4.0, 5.0, 10.0
        factor = INCIDENT_FACTOR
    if scalar_rows is None:
        scalar_rows = batch

    network, oracle, incident_edge = grown_network(max_od_pairs)
    # Congestion-scale smoothness: fast enough to adapt within the incident
    # window, still a valid (capped) migration probability.
    alpha = 2.0 / float(np.max(oracle.free_flow_costs(network)))
    policy = ReroutingPolicy(
        UniformSampling(), ScaledLinearMigration(alpha), name="uniform+scaled"
    )
    starts = np.linspace(first_start, last_start, batch)
    scenarios = incident_scenarios(incident_edge, starts, duration, factor=factor)

    config = BatchConfig(
        update_periods=np.full(batch, period),
        horizons=horizon,
        steps_per_phase=steps,
    )
    with bench_timer(
        "bench_tracking", "E11 scenario ensemble",
        engine="fluid-batch", instance="sioux-falls-incident", cases=batch,
    ) as batched_timer:
        result = BatchSimulator(network, policy, config, scenarios=scenarios).run()
    batched_seconds = batched_timer.seconds

    scalar_flows = []
    with bench_timer(
        "bench_tracking", "E11 scalar loop",
        engine="fluid-scalar", instance="sioux-falls-incident", cases=scalar_rows,
    ) as scalar_timer:
        for row in range(scalar_rows):
            trajectory = simulate(
                network, policy, update_period=period, horizon=horizon,
                steps_per_phase=steps, scenario=scenarios[row],
            )
            scalar_flows.append(np.array([p.flow.values() for p in trajectory.points]))
    scalar_seconds = scalar_timer.seconds
    # Normalise the scalar timing to the full batch when only a subset ran.
    scalar_seconds_full = scalar_seconds * batch / scalar_rows

    exact = all(
        np.array_equal(scalar_flows[row], result.flow_matrix(row))
        for row in range(scalar_rows)
    )
    speedup = scalar_seconds_full / batched_seconds

    # Tracking: two distinct environment states across all rows -> the shared
    # cache solves exactly two edge-flow equilibria.
    cache: dict = {}
    rows = []
    total_iterations = 0
    with bench_timer(
        "bench_tracking", "E11 ground truth",
        engine=f"edge-{method}", instance="sioux-falls-incident", cases=3,
        method=method,
    ) as tracking_timer:
        for row in (0, batch // 2, batch - 1):
            scenario = scenarios[row]
            track = interval_equilibria(
                network, scenario, horizon=horizon, space="edge",
                tolerance=1e-3, oracle=oracle, cache=cache, method=method,
            )
            total_iterations += track.total_iterations
            trajectory = result.trajectory(row)
            times, errors = tracking_error(trajectory, track)
            incident_start = float(starts[row])
            incident_end = incident_start + duration
            during = errors[(times >= incident_start) & (times < incident_end)]
            after = errors[(times >= incident_end) & (times < incident_end + 1.0)]
            err_onset = float(errors[times < incident_start][-1])
            err_peak = float(during.max()) if len(during) else float("nan")
            jolt = float(after.max()) if len(after) else float("nan")
            rows.append(
                {
                    "row": row,
                    "incident": f"[{incident_start:g}, {incident_end:g})",
                    "err_onset": err_onset,
                    "err_peak": err_peak,
                    "jolt_at_clear": jolt,
                    "err_final": float(errors[-1]),
                    "reequilibrate": time_to_reequilibrate(
                        times, errors, incident_end, 1.5 * err_onset
                    ),
                    "regret": tracking_regret(trajectory, track),
                }
            )
    tracking_seconds = tracking_timer.seconds

    print_table(
        rows,
        title=(
            f"E11: equilibrium tracking on Sioux Falls ({max_od_pairs} OD pairs, "
            f"{network.num_paths} routes), incident on {incident_edge[0]}->{incident_edge[1]} "
            f"at {batch} staggered times, T={period}"
        ),
    )
    summary = {
        "batch": batch,
        "paths": network.num_paths,
        "bit_identical": exact,
        "scalar_rows_checked": scalar_rows,
        "batched_seconds": round(batched_seconds, 2),
        "scalar_seconds_full": round(scalar_seconds_full, 2),
        "speedup": round(speedup, 1),
        "equilibrium_solves": sum(1 for _ in cache),
        "tracking_method": method,
        "tracking_iterations": total_iterations,
        "tracking_seconds": round(tracking_seconds, 2),
        "tracking_rows": rows,
    }
    print(
        f"batched: {batch} scenario rows in {batched_seconds:.2f}s; scalar loop "
        f"({scalar_rows} rows measured): {scalar_seconds:.2f}s "
        f"(~{scalar_seconds_full:.2f}s for all {batch}) -> {speedup:.1f}x"
    )
    print(
        f"bit-identical rows: {'yes' if exact else 'NO'}; "
        f"ground truth: {summary['equilibrium_solves']} edge-flow solves "
        f"({method}, {total_iterations} iterations, shared across rows) "
        f"in {tracking_seconds:.2f}s"
    )
    return summary


def test_tracking_smoke():
    """Pytest entry: the smoke ensemble is exact and tracks the incident."""
    summary = run_benchmark(smoke=True)
    assert summary["bit_identical"]
    assert summary["equilibrium_solves"] == 2
    for row in summary["tracking_rows"]:
        disruption = max(row["err_peak"], row["jolt_at_clear"])
        # the moving target visibly perturbs tracking (onset or clearance)...
        assert disruption > 1.4 * row["err_onset"]
        # ...the tail re-approaches the restored equilibrium...
        assert row["err_final"] < disruption
        # ...within a finite re-equilibration time after the clearance
        assert np.isfinite(row["reequilibrate"])
        assert row["regret"] > 0.0
    # The batched ensemble must clearly outrun the scalar loop even in the
    # small smoke configuration (the full configuration clears 10x).
    assert summary["speedup"] > 3.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast 8-row / 20-OD-pair variant (CI-friendly)",
    )
    parser.add_argument(
        "--scalar-rows",
        type=int,
        default=None,
        help="measure only this many scalar counterpart rows (extrapolated)",
    )
    parser.add_argument(
        "--method",
        choices=["fw", "cfw", "bfw"],
        default="fw",
        help="edge-space solver method for the ground-truth equilibria",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry session and write its JSONL trace here",
    )
    args = parser.parse_args(argv)
    if args.trace is not None:
        with telemetry_session(trace_path=args.trace):
            run_benchmark(
                smoke=args.smoke, scalar_rows=args.scalar_rows, method=args.method
            )
        print(f"wrote trace {args.trace}")
    else:
        run_benchmark(smoke=args.smoke, scalar_rows=args.scalar_rows, method=args.method)
    return 0


if __name__ == "__main__":
    sys.exit(main())
