"""The edge-flow Frank--Wolfe solver against the path-based ground truth."""

import numpy as np
import pytest

from repro.instances import braess_network, grid_network, pigou_network
from repro.largescale import ShortestPathOracle
from repro.solvers import (
    relative_duality_gap,
    solve_edge_flow_equilibrium,
    solve_wardrop_equilibrium,
)


@pytest.mark.parametrize(
    "factory",
    [
        braess_network,
        lambda: pigou_network(degree=2),
        lambda: grid_network(3, 3, num_commodities=2, seed=3),
    ],
)
def test_edge_flows_match_the_path_based_solver(factory):
    network = factory()
    path_result = solve_wardrop_equilibrium(network, tolerance=1e-12)
    edge_result = solve_edge_flow_equilibrium(network, tolerance=1e-10)
    assert edge_result.converged
    oracle = ShortestPathOracle(network.graph, network.commodities)
    positions = oracle.network_edge_positions(network)
    reference = network.edge_flows(path_result.flow.values())
    assert np.abs(edge_result.edge_flows[positions] - reference).max() < 1e-6
    # Off-path graph edges (if any) carry no equilibrium flow here.
    off_path = np.setdiff1d(np.arange(oracle.num_edges), positions)
    assert np.all(edge_result.edge_flows[off_path] <= 1e-9)


def test_result_diagnostics_are_consistent():
    network = braess_network()
    result = solve_edge_flow_equilibrium(network, tolerance=1e-8)
    assert result.relative_gap <= 1e-8
    assert result.sptt <= result.tstt + 1e-12
    assert result.iterations >= 1
    assert len(result.gap_history) == result.iterations
    assert result.potential_value == pytest.approx(
        solve_wardrop_equilibrium(network, tolerance=1e-12).potential_value, abs=1e-8
    )


def test_warm_start_accepts_and_validates_shapes():
    network = braess_network()
    oracle = ShortestPathOracle(network.graph, network.commodities)
    cold = solve_edge_flow_equilibrium(network, tolerance=1e-8, oracle=oracle)
    warm = solve_edge_flow_equilibrium(
        network, tolerance=1e-8, oracle=oracle, initial_edge_flows=cold.edge_flows
    )
    assert warm.iterations <= cold.iterations
    assert np.abs(warm.edge_flows - cold.edge_flows).max() < 1e-6
    with pytest.raises(ValueError, match="initial edge flows"):
        solve_edge_flow_equilibrium(
            network, oracle=oracle, initial_edge_flows=np.ones(3)
        )


def test_dijkstra_rejects_negative_costs():
    network = braess_network()
    oracle = ShortestPathOracle(network.graph, network.commodities)
    with pytest.raises(ValueError, match="non-negative"):
        oracle.all_or_nothing(-np.ones(oracle.num_edges))


def test_cap_exit_diagnostics_describe_the_returned_flows():
    # Regression: on an iteration-cap exit the loop's last gap measured the
    # *pre-step* iterate while the caller received the post-step flows, so
    # unconverged results reported stale diagnostics.  The certificate must
    # be recomputed from the returned flows.
    network = grid_network(3, 3, num_commodities=2, seed=3)
    oracle = ShortestPathOracle(network.graph, network.commodities)
    result = solve_edge_flow_equilibrium(
        network, tolerance=1e-12, max_iterations=3, oracle=oracle
    )
    assert not result.converged
    assert result.relative_gap == pytest.approx(
        relative_duality_gap(network, oracle, result.edge_flows), rel=1e-12, abs=0.0
    )
    # The recomputed certificate is appended to the history: one trailing
    # entry beyond the per-iteration gaps.
    assert len(result.gap_history) == result.iterations + 1
    assert result.gap_history[-1] == pytest.approx(result.relative_gap)
    # TSTT/SPTT describe the same (returned) flows.
    costs = oracle.latency_costs(network, result.edge_flows)
    assert result.tstt == pytest.approx(float(np.dot(costs, result.edge_flows)))
    assert result.relative_gap == pytest.approx(result.tstt / result.sptt - 1.0)


@pytest.mark.parametrize("method", ["cfw", "bfw"])
def test_conjugate_methods_reach_the_same_equilibrium(method):
    network = grid_network(3, 3, num_commodities=2, seed=3)
    oracle = ShortestPathOracle(network.graph, network.commodities)
    plain = solve_edge_flow_equilibrium(network, tolerance=1e-10, oracle=oracle)
    accelerated = solve_edge_flow_equilibrium(
        network, tolerance=1e-10, oracle=oracle, method=method
    )
    assert accelerated.converged
    assert accelerated.method == method
    assert np.abs(accelerated.edge_flows - plain.edge_flows).max() < 1e-5
    assert accelerated.potential_value == pytest.approx(
        plain.potential_value, abs=1e-9
    )
    # The conjugate direction correction must never be slower than plain FW
    # on this instance (the 5x Sioux Falls bar lives in bench_solvers.py).
    assert accelerated.iterations <= plain.iterations


def test_edge_solver_rejects_path_space_methods():
    network = braess_network()
    with pytest.raises(ValueError, match="pg"):
        solve_edge_flow_equilibrium(network, method="pg")
    with pytest.raises(ValueError, match="newton"):
        solve_edge_flow_equilibrium(network, method="newton")
