"""Unit tests for exact and approximate Wardrop-equilibrium predicates."""

from __future__ import annotations

import pytest

from repro.instances import braess_equilibrium, pigou_equilibrium
from repro.wardrop import (
    FlowVector,
    equilibrium_violation,
    is_approximate_equilibrium,
    is_wardrop_equilibrium,
    is_weak_approximate_equilibrium,
    report,
    support,
    unsatisfied_volume,
    weakly_unsatisfied_volume,
)


class TestExactEquilibrium:
    def test_two_link_even_split_is_equilibrium(self, two_links):
        assert is_wardrop_equilibrium(FlowVector(two_links, [0.5, 0.5]))

    def test_two_link_lopsided_is_not(self, two_links):
        flow = FlowVector(two_links, [0.9, 0.1])
        assert not is_wardrop_equilibrium(flow)
        assert equilibrium_violation(flow) == pytest.approx(0.4)

    def test_pigou_equilibrium(self, pigou):
        assert is_wardrop_equilibrium(pigou_equilibrium(pigou))

    def test_braess_equilibrium(self, braess):
        assert is_wardrop_equilibrium(braess_equilibrium(braess))

    def test_violation_zero_at_equilibrium(self, braess):
        assert equilibrium_violation(braess_equilibrium(braess)) == pytest.approx(0.0, abs=1e-9)

    def test_unused_expensive_path_does_not_violate(self, pigou):
        # All flow on the variable link (latency 1); the constant link also has
        # latency 1, so even the all-variable flow is an equilibrium, whereas
        # flow sitting on the constant link with the variable link empty is not.
        all_variable = FlowVector(pigou, [0.0, 1.0])
        assert is_wardrop_equilibrium(all_variable)
        all_constant = FlowVector(pigou, [1.0, 0.0])
        assert not is_wardrop_equilibrium(all_constant)


class TestApproximateEquilibria:
    def test_unsatisfied_volume_two_links(self, two_links):
        flow = FlowVector(two_links, [0.8, 0.2])
        # Link 1 latency 0.3, link 2 latency 0; 0.8 agents are 0.25-unsatisfied.
        assert unsatisfied_volume(flow, delta=0.25) == pytest.approx(0.8)
        assert unsatisfied_volume(flow, delta=0.35) == pytest.approx(0.0)

    def test_weak_volume_is_smaller_or_equal(self, two_links):
        flow = FlowVector(two_links, [0.8, 0.2])
        for delta in [0.05, 0.1, 0.2, 0.3]:
            assert weakly_unsatisfied_volume(flow, delta) <= unsatisfied_volume(flow, delta) + 1e-12

    def test_every_equilibrium_is_weak_equilibrium(self, two_links):
        flow = FlowVector(two_links, [0.8, 0.2])
        delta, eps = 0.25, 0.5
        if is_approximate_equilibrium(flow, delta, eps):
            assert is_weak_approximate_equilibrium(flow, delta, eps)

    def test_equilibrium_flow_is_approx_equilibrium_for_any_delta(self, two_links):
        flow = FlowVector(two_links, [0.5, 0.5])
        assert is_approximate_equilibrium(flow, delta=1e-6, eps=0.0)
        assert is_weak_approximate_equilibrium(flow, delta=1e-6, eps=0.0)

    def test_volume_monotone_in_delta(self, braess):
        flow = FlowVector.uniform(braess)
        volumes = [unsatisfied_volume(flow, d) for d in [0.01, 0.1, 0.5, 1.0]]
        assert all(b <= a + 1e-12 for a, b in zip(volumes, volumes[1:]))


class TestReporting:
    def test_report_fields(self, two_links):
        flow = FlowVector(two_links, [0.8, 0.2])
        summary = report(flow, delta=0.1)
        assert summary.violation == pytest.approx(0.3)
        assert summary.unsatisfied == pytest.approx(0.8)
        assert "violation" in summary.describe()

    def test_support(self, pigou):
        assert support(FlowVector(pigou, [0.0, 1.0])) == [1]
        assert support(FlowVector(pigou, [0.5, 0.5])) == [0, 1]
