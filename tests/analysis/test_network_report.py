"""Network-level reports: link/OD/summary content and the TSTT reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import network_report
from repro.instances import get_instance
from repro.instances.tntp import SIOUX_FALLS_REFERENCE_TSTT
from repro.largescale.shortest import ShortestPathOracle
from repro.solvers import solve_edge_flow_equilibrium, solve_wardrop_equilibrium


@pytest.fixture(scope="module")
def sioux_falls_solution():
    network = get_instance("sioux-falls")
    oracle = ShortestPathOracle.for_network(network)
    result = solve_edge_flow_equilibrium(
        network, oracle=oracle, tolerance=1e-4, max_iterations=2000
    )
    return network, oracle, result


class TestSiouxFallsReference:
    def test_tstt_matches_recorded_reference_within_half_percent(
        self, sioux_falls_solution
    ):
        network, oracle, result = sioux_falls_solution
        report = network_report(
            network, edge_flows=result.edge_flows, oracle=oracle
        )
        tstt = report.summary["tstt"]
        assert abs(tstt - SIOUX_FALLS_REFERENCE_TSTT) / SIOUX_FALLS_REFERENCE_TSTT < 0.005

    def test_summary_shape(self, sioux_falls_solution):
        network, oracle, result = sioux_falls_solution
        report = network_report(network, edge_flows=result.edge_flows, oracle=oracle)
        assert report.summary["instance"] == "sioux-falls"
        assert report.summary["links"] == 76
        assert report.summary["od_pairs"] == len(network.commodities)
        assert report.summary["relative_gap"] < 1e-3
        assert report.summary["sptt"] <= report.summary["tstt"]

    def test_link_rows_sorted_by_congestion(self, sioux_falls_solution):
        network, oracle, result = sioux_falls_solution
        report = network_report(
            network, edge_flows=result.edge_flows, oracle=oracle, top_links=5
        )
        ratios = [row["v/c"] for row in report.link_rows]
        assert ratios == sorted(ratios, reverse=True)
        assert report.truncated_links > 0
        for row in report.link_rows:
            assert row["latency"] >= row["free_flow"] > 0
            assert row["delay"] >= 1.0


class TestPathFlowReports:
    def test_flow_vector_report_includes_od_detail(self):
        network = get_instance("braess")
        result = solve_wardrop_equilibrium(network, tolerance=1e-6)
        report = network_report(network, flow=result.flow)
        (od_row,) = report.od_rows
        assert od_row["active_paths"] >= 1
        assert od_row["avg_latency"] == pytest.approx(
            od_row["shortest_cost"], rel=1e-3
        )

    def test_render_contains_all_sections(self):
        network = get_instance("braess")
        result = solve_wardrop_equilibrium(network, tolerance=1e-6)
        text = network_report(network, flow=result.flow).render()
        assert "network report: braess: summary" in text
        assert "most congested links" in text
        assert "largest OD pairs" in text
        assert "relative duality gap" in text


class TestInputValidation:
    def test_exactly_one_flow_input_required(self):
        network = get_instance("two-links")
        with pytest.raises(ValueError, match="exactly one"):
            network_report(network)

    def test_network_order_edge_flows_are_expanded(self):
        network = get_instance("braess")
        oracle = ShortestPathOracle.for_network(network)
        result = solve_wardrop_equilibrium(network, tolerance=1e-6)
        network_order = result.flow.edge_flows()
        by_network = network_report(network, edge_flows=network_order, oracle=oracle)
        by_oracle = network_report(
            network,
            edge_flows=oracle.expand_edge_values(network, network_order),
            oracle=oracle,
        )
        assert by_network.summary["tstt"] == pytest.approx(by_oracle.summary["tstt"])

    def test_wrong_length_edge_flows_rejected(self):
        network = get_instance("two-links")
        with pytest.raises(ValueError, match="length"):
            network_report(network, edge_flows=np.zeros(99))
