"""Regression: ``initial_flow or default`` silently replaced falsy flows.

``FlowVector`` defines ``__len__``, so ``bool(flow)`` is ``len(flow) > 0``.
The drivers used ``initial_flow or FlowVector.uniform(...)``, which would
swap a falsy (zero-length-reporting) flow for the uniform default instead of
using it -- or, for a flow from the wrong network, instead of rejecting it.
The drivers now test ``is None`` explicitly; these tests pin that down with
a flow vector whose ``__len__`` lies."""

import numpy as np

from repro.core import simulate, simulate_best_response, uniform_policy
from repro.instances import braess_network
from repro.largescale import ActivePathSet, simulate_with_column_generation
from repro.wardrop import FlowVector


class _FalsyFlow(FlowVector):
    """A valid flow vector that reports length 0 (and is therefore falsy)."""

    def __len__(self):
        return 0


def falsy_single_path_flow(network):
    flow = FlowVector.single_path(network, {0: 1})
    falsy = _FalsyFlow(network, flow.values())
    assert not falsy  # the precondition the regression is about
    return falsy


def test_simulator_uses_a_falsy_initial_flow():
    network = braess_network()
    start = falsy_single_path_flow(network)
    trajectory = simulate(
        network, uniform_policy(network), update_period=0.25, horizon=0.5,
        initial_flow=start, steps_per_phase=5,
    )
    assert np.array_equal(trajectory.points[0].flow.values(), start.values())


def test_best_response_uses_a_falsy_initial_flow():
    network = braess_network()
    start = falsy_single_path_flow(network)
    trajectory = simulate_best_response(
        network, update_period=0.25, horizon=0.5, initial_flow=start
    )
    assert np.array_equal(trajectory.points[0].flow.values(), start.values())


def test_column_generation_uses_a_falsy_initial_flow():
    network = braess_network()
    active = ActivePathSet.from_network(network, closed=True)
    start = falsy_single_path_flow(active.network)
    result = simulate_with_column_generation(
        active, uniform_policy(network), update_period=0.25, horizon=0.5,
        initial_flow=start, steps_per_phase=5,
    )
    assert np.array_equal(
        result.trajectory.points[0].flow.values(), start.values()
    )
