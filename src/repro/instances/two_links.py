"""The paper's two-link oscillation instance (Section 3.2).

Two parallel links between a single source and sink, each with latency
``l(x) = max{0, beta * (x - 1/2)}`` and unit demand.  The Wardrop equilibrium
splits the demand evenly, ``f_1 = f_2 = 1/2``, at latency zero.

Under the best-response dynamics with bulletin-board updates every ``T`` time
units the paper shows that the initial condition

    f_1(0) = 1 / (exp(-T) + 1),    f_2(0) = exp(-T) / (exp(-T) + 1)

is a period-``2T`` oscillation: the flow overshoots the equilibrium in every
phase and returns exactly to its starting point every other phase.  The
latency observed at the start of each phase is

    X = beta * (1 - exp(-T)) / (2 * exp(-T) + 2),

which can only be pushed below ``eps`` by making ``T = O(eps / beta)``.
These closed forms live in :mod:`repro.core.bounds`; this module builds the
instance and its special starting flows.
"""

from __future__ import annotations

import math

from ..wardrop.commodity import Commodity
from ..wardrop.flow import FlowVector
from ..wardrop.latency import ThresholdLatency
from ..wardrop.network import WardropNetwork


def two_link_network(beta: float = 1.0, threshold: float = 0.5) -> WardropNetwork:
    """Build the two-parallel-link instance with slope ``beta``.

    Both links carry the latency ``max{0, beta * (x - threshold)}``; the
    default ``threshold = 1/2`` is the paper's construction.
    """
    latency_a = ThresholdLatency(beta=beta, threshold=threshold)
    latency_b = ThresholdLatency(beta=beta, threshold=threshold)
    return WardropNetwork.from_edges(
        [("s", "t", latency_a), ("s", "t", latency_b)],
        [Commodity("s", "t", 1.0, name="oscillation")],
    )


def oscillation_initial_flow(network: WardropNetwork, update_period: float) -> FlowVector:
    """Return the paper's oscillating initial condition for update period ``T``.

    ``f_1(0) = 1 / (e^{-T} + 1)`` on the first link and the remainder on the
    second.  Starting best response from this flow produces a cycle of period
    exactly ``2T``.
    """
    if update_period <= 0:
        raise ValueError("update period must be positive")
    decayed = math.exp(-update_period)
    first = 1.0 / (decayed + 1.0)
    return FlowVector(network, [first, 1.0 - first])


def equilibrium_flow(network: WardropNetwork) -> FlowVector:
    """Return the exact Wardrop equilibrium of the two-link instance."""
    return FlowVector(network, [0.5, 0.5])


def lopsided_flow(network: WardropNetwork, fraction_on_first: float = 0.9) -> FlowVector:
    """Return a flow placing ``fraction_on_first`` of the demand on link one.

    A convenient non-equilibrium starting point for convergence experiments.
    """
    if not 0.0 <= fraction_on_first <= 1.0:
        raise ValueError("fraction must lie in [0, 1]")
    return FlowVector(network, [fraction_on_first, 1.0 - fraction_on_first])
