"""Structured tracing: nested spans with wall time and attributes.

A :class:`Tracer` records a tree of *spans* -- named intervals with a wall
clock start/end and a flat attribute dict (op counts, array shapes, byte
sizes) -- plus zero-duration *events*.  Every engine in the repo opens an
``engine_run`` root span and nests ``phase`` / ``bulletin_refresh`` /
``field_eval`` / ``integrate`` / ``column_generation_round`` /
``fw_iteration`` spans under it; the recorded tree is what
``repro report`` renders into per-engine and per-phase timing tables.

The default tracer is the module-level :data:`NULL_TRACER`, whose ``span``
returns one shared no-op context manager and whose ``event`` does nothing:
instrumented hot paths cost a dict construction and two method calls *per
phase boundary* (never per integration sub-step) when tracing is disabled,
which is unmeasurable next to a phase's numerical work -- the overhead
guarantee is checked by ``benchmarks/bench_batch_throughput.py --smoke``.
Tracing must never change numerical results: spans only *read* values, so
the bit-identity suites run unmodified whether or not a tracer is active.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]


class Span:
    """One named, timed interval in a trace (attribute bag included).

    ``duration`` is ``end - start`` in seconds (``0.0`` for events and for
    spans still open).  ``parent_id`` is the id of the enclosing span
    (``None`` at the root), which lets the report rebuild the tree.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attributes", "kind")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attributes: Dict[str, Any],
        kind: str = "span",
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes = attributes
        self.kind = kind

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_record(self) -> Dict[str, Any]:
        """Return the span as a flat JSON-serialisable dict (trace schema)."""
        record: Dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "t0": self.start,
        }
        if self.kind == "span":
            record["t1"] = self.end if self.end is not None else self.start
            record["dur"] = self.duration
        if self.attributes:
            record["attrs"] = self.attributes
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur={self.duration:.6f}, "
            f"attrs={self.attributes!r})"
        )


class _SpanContext:
    """Context manager closing one open span on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    @property
    def span(self) -> Span:
        return self._span

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the span while it is running."""
        self._span.attributes.update(attributes)

    def close(self) -> None:
        """Imperatively end the span (for loop-shaped code without ``with``).

        The span opens when :meth:`Tracer.span` creates it, so pairing the
        call with ``close()`` is equivalent to a ``with`` block.
        """
        self._tracer._close(self._span)

    def __enter__(self) -> "_SpanContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Records nested spans and events against a monotonic wall clock.

    The clock is :func:`time.perf_counter` by default; all recorded times
    are relative to the tracer's creation instant, so traces from one
    session share one time base.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._origin = clock()
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # Recording --------------------------------------------------------------

    def _now(self) -> float:
        return self._clock() - self._origin

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span("phase", index=k):``."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, self._now(), attributes)
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        span.end = self._now()
        # Spans close in LIFO order under normal with-statement use; tolerate
        # out-of-order closes (generators, early exits) by searching down.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self.spans.append(span)

    def event(self, name: str, **attributes: Any) -> Span:
        """Record a zero-duration event under the current span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, self._now(), attributes, kind="event")
        span.end = span.start
        self._next_id += 1
        self.spans.append(span)
        return span

    def annotate(self, **attributes: Any) -> None:
        """Attach attributes to the innermost open span (no-op at the root)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    # Export -----------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Return every finished span/event as a dict, in start-time order."""
        return [span.to_record() for span in sorted(self.spans, key=lambda s: s.start)]

    def write_jsonl(self, path, extra_records=()) -> None:
        """Write the trace as JSON Lines: one span/event per line.

        ``extra_records`` (e.g. the metrics snapshot) are appended after the
        spans; a leading ``meta`` line makes the file self-describing.
        """
        with open(path, "w") as handle:
            handle.write(
                json.dumps(
                    {
                        "kind": "meta",
                        "schema": "repro-trace/1",
                        "spans": len(self.spans),
                        "created_unix": time.time(),
                    }
                )
                + "\n"
            )
            for record in self.records():
                handle.write(json.dumps(record, default=str) + "\n")
            for record in extra_records:
                handle.write(json.dumps(record, default=str) + "\n")


class _NullSpanContext:
    """The shared do-nothing span context of the :class:`NullTracer`."""

    __slots__ = ()

    span = None

    def annotate(self, **attributes: Any) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a near-free no-op.

    A single module-level instance (:data:`NULL_TRACER`) is the default
    telemetry target, so instrumented engines pay only the cost of building
    the keyword dict and returning the shared context manager -- and they do
    that at phase boundaries only, never inside integration loops.
    """

    enabled = False
    spans: List[Span] = []

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def annotate(self, **attributes: Any) -> None:
        return None

    def records(self) -> List[Dict[str, Any]]:
        return []


NULL_TRACER = NullTracer()
