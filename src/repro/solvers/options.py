"""Shared solver configuration and the method dispatch table.

The equilibrium suite now offers several interchangeable algorithms behind
the two solver interfaces:

========  =====================  ===========================================
method    space                  algorithm
========  =====================  ===========================================
``fw``    path + edge            classical Frank--Wolfe (all-or-nothing
                                 direction, exact line search)
``cfw``   edge                   conjugate-direction Frank--Wolfe
                                 (Mitradjieva--Lindberg): the direction
                                 endpoint is a Hessian-conjugate convex
                                 combination of the new all-or-nothing point
                                 and the previous endpoint
``bfw``   edge                   biconjugate Frank--Wolfe: conjugate to the
                                 *two* previous search directions
``pg``    path                   path-based projection gradient
                                 (Newton-scaled flow shifts onto each
                                 commodity's cheapest path)
========  =====================  ===========================================

:class:`SolverOptions` bundles the choices every caller threads through --
the CLI ``solve --method``, :func:`repro.scenarios.tracking.interval_equilibria`
and the benchmarks -- so new knobs do not ripple through every signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Methods available to the edge-flow (oracle-driven) solver.
EDGE_METHODS = ("fw", "cfw", "bfw")

#: Methods available to the path-based solver on enumerable instances.
PATH_METHODS = ("fw", "pg")

#: Every method the suite knows, in display order.
ALL_METHODS = ("fw", "cfw", "bfw", "pg")


def check_method(method: str, space: str) -> str:
    """Validate ``method`` against a solver space (``"path"`` or ``"edge"``).

    Returns the method unchanged so calls can inline the check.
    """
    known = EDGE_METHODS if space == "edge" else PATH_METHODS
    if method not in known:
        raise ValueError(
            f"unknown {space}-space solver method {method!r}; "
            f"use one of {', '.join(known)}"
        )
    return method


@dataclass(frozen=True)
class SolverOptions:
    """One bundle of solver choices shared by every equilibrium interface.

    Attributes
    ----------
    method:
        ``"fw"``, ``"cfw"``, ``"bfw"`` (edge space) or ``"fw"``, ``"pg"``
        (path space); see the module table.
    tolerance:
        Convergence target, or ``None`` for the solver's default (absolute
        duality gap ``1e-8`` in path space, relative duality gap ``1e-6`` in
        edge space).
    max_iterations:
        Iteration cap per solve -- the *per-interval solve budget* when the
        tracking layer threads these options through
        :func:`~repro.scenarios.tracking.interval_equilibria`.
    warm_start:
        Whether sequential callers (interval tracking, continuation sweeps)
        should seed each solve from the previous solution.
    """

    method: str = "fw"
    tolerance: Optional[float] = None
    max_iterations: int = 2000
    warm_start: bool = True

    def __post_init__(self) -> None:
        if self.method not in ALL_METHODS:
            raise ValueError(
                f"unknown solver method {self.method!r}; "
                f"use one of {', '.join(ALL_METHODS)}"
            )
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.tolerance is not None and self.tolerance <= 0:
            raise ValueError("tolerance must be positive")

    def tolerance_or(self, default: float) -> float:
        """Return the configured tolerance, or ``default`` if unset."""
        return default if self.tolerance is None else self.tolerance
