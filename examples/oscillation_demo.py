"""Oscillation demo: why naive load-adaptive routing breaks with stale data.

Reproduces the paper's Section 3.2 story as an ASCII time-series: the
best-response dynamics on two identical links keeps overshooting the
equilibrium because every agent reacts to the same outdated bulletin-board
snapshot, while an alpha-smooth policy at the same update period damps the
overshoot and settles.

Run with::

    python examples/oscillation_demo.py [update_period] [beta]
"""

from __future__ import annotations

import sys

from repro.analysis import phase_start_latency_trace, print_table
from repro.core import (
    max_update_period_for_latency,
    oscillation_amplitude,
    scaled_policy,
    simulate,
    simulate_best_response,
)
from repro.core.smoothness import max_safe_alpha
from repro.instances import lopsided_flow, two_link_network


def ascii_series(values, width: int = 48) -> str:
    """Render a series of values in [0, 1] as one ASCII sparkline per row."""
    lines = []
    for index, value in enumerate(values):
        filled = int(round(value * width))
        lines.append(f"  phase {index:3d} |{'#' * filled}{'.' * (width - filled)}| {value:.3f}")
    return "\n".join(lines)


def main() -> None:
    update_period = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    beta = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    network = two_link_network(beta=beta)
    start = lopsided_flow(network, 0.85)
    horizon = 20 * update_period

    print(f"Two-link instance, beta={beta}, bulletin-board period T={update_period}\n")

    # Naive: best response against the posted latencies.
    best_response = simulate_best_response(
        network, update_period=update_period, horizon=horizon, initial_flow=start
    )
    shares = [flow.values()[0] for flow in best_response.phase_start_flows()]
    print("Best response -- share of traffic on link 1 at each phase start:")
    print(ascii_series(shares))
    print()

    # Smooth: the most aggressive alpha-smooth policy that is still safe at T.
    # It needs more phases than best response (it moves deliberately slowly),
    # so simulate longer and plot the first 20 phases for comparison.
    alpha = max_safe_alpha(network, update_period)
    smooth = simulate(
        network,
        scaled_policy(alpha),
        update_period=update_period,
        horizon=max(horizon, 150 * update_period),
        initial_flow=start,
    )
    smooth_shares = [flow.values()[0] for flow in smooth.phase_start_flows()]
    print(f"alpha-smooth policy (alpha={alpha:.4g}) -- first 20 phases of the same plot:")
    print(ascii_series(smooth_shares[:20]))
    print()

    rows = [
        {
            "policy": "best response",
            "sustained latency": float(phase_start_latency_trace(best_response)[-5:].mean()),
            "paper X(T, beta)": oscillation_amplitude(beta, update_period),
        },
        {
            "policy": f"smooth (alpha={alpha:.3g})",
            "sustained latency": float(phase_start_latency_trace(smooth)[-5:].mean()),
            "paper X(T, beta)": 0.0,
        },
    ]
    print_table(rows, title="Latency sustained at phase starts (tail of the run)")

    epsilon = 0.05
    threshold = max_update_period_for_latency(beta, epsilon)
    print(
        f"To keep best response below latency {epsilon} the update period would "
        f"have to shrink to T <= {threshold:.4g} (paper: T = O(eps/beta)); the smooth "
        "policy achieves it at the current T by slowing migration down instead."
    )


if __name__ == "__main__":
    main()
