"""Batched column generation: closed-mode bit-identity, union growth,
in-place buffer growth, per-row eviction and the certificate surface."""

import numpy as np
import pytest

from repro.core import replicator_policy, uniform_policy
from repro.instances import braess_network, grid_network
from repro.largescale import (
    ActivePathSet,
    simulate_with_column_generation,
    simulate_with_column_generation_batch,
)
from repro.largescale.columns import _evict_closed_columns
from repro.scenarios import LinkIncident, Scenario, get_scenario


def trajectory_matrix(trajectory):
    """Stack a scalar trajectory's samples into an ``(S, P)`` array."""
    return np.array([point.flow.values() for point in trajectory.points])


def scalar_run(network, policy, closed=True, scenario=None, **kwargs):
    return simulate_with_column_generation(
        ActivePathSet.from_network(network, closed=closed),
        policy,
        scenario=scenario,
        **kwargs,
    )


class TestClosedModeBitIdentity:
    """Closed-mode batched rows reproduce the scalar driver bit for bit."""

    SETTINGS = dict(update_period=0.125, horizon=2.0, steps_per_phase=7)

    @pytest.mark.parametrize("policy_builder", [uniform_policy, replicator_policy])
    @pytest.mark.parametrize(
        "factory",
        [braess_network, lambda: grid_network(2, 3, num_commodities=2, seed=3)],
    )
    def test_rows_match_scalar_closed_runs(self, policy_builder, factory):
        network = factory()
        policy = policy_builder(network)
        batched = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network, closed=True),
            policy,
            batch=3,
            **self.SETTINGS,
        )
        scalar = scalar_run(network, policy, **self.SETTINGS)
        reference = trajectory_matrix(scalar.trajectory)
        assert batched.growth_events == []
        assert np.array_equal(batched.times, [p.time for p in scalar.trajectory.points])
        for row in range(3):
            assert np.array_equal(reference, batched.flow_matrix(row))

    def test_rows_with_distinct_scenarios_match_scalar(self):
        """Per-row incidents (capacity drops at different times) must leave
        every closed-mode row bit-identical to its own scalar run."""
        network = grid_network(2, 3, num_commodities=2, seed=3)
        policy = uniform_policy(network)
        edge = network.edges[0]
        scenarios = [
            None,
            Scenario(incidents=[LinkIncident(edge, 0.5, 1.25, capacity_factor=0.5)]),
            Scenario(incidents=[LinkIncident(edge, 1.0, 1.75, capacity_factor=0.3)]),
        ]
        batched = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network, closed=True),
            policy,
            scenarios=scenarios,
            **self.SETTINGS,
        )
        for row, scenario in enumerate(scenarios):
            scalar = scalar_run(network, policy, scenario=scenario, **self.SETTINGS)
            assert np.array_equal(
                trajectory_matrix(scalar.trajectory), batched.flow_matrix(row)
            )

    def test_closure_scenario_rows_match_scalar_including_eviction(self):
        """A closure evicts crossing columns per row at the onset phase; the
        repaired states must still replay the scalar driver exactly."""
        network = braess_network()
        policy = uniform_policy(network)
        scenarios = [get_scenario("braess-closure", network), None]
        settings = dict(update_period=0.5, horizon=14.0, steps_per_phase=5)
        batched = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network, closed=True),
            policy,
            scenarios=scenarios,
            **settings,
        )
        assert batched.eviction_events, "the closure must evict crossing columns"
        assert all(row == 0 for _, row, _ in batched.eviction_events)
        for row, scenario in enumerate(scenarios):
            scalar = scalar_run(network, policy, scenario=scenario, **settings)
            assert np.array_equal(
                trajectory_matrix(scalar.trajectory), batched.flow_matrix(row)
            )

    def test_closed_rows_on_a_grown_network_match_scalar(self):
        """The regression behind the 1-ulp projection bug: freeze a set that
        *grew* (commodity blocks at shifted offsets) and require closed-mode
        rows to stay bit-identical on the grown geometry."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        policy = uniform_policy(network)
        open_result = simulate_with_column_generation(
            ActivePathSet.from_network(network),
            policy,
            update_period=0.125,
            horizon=5.0,
            steps_per_phase=10,
        )
        assert open_result.total_columns_added > 0
        grown = open_result.network
        batched = simulate_with_column_generation_batch(
            ActivePathSet.from_network(grown, closed=True),
            policy,
            batch=4,
            **self.SETTINGS,
        )
        scalar = scalar_run(grown, policy, **self.SETTINGS)
        reference = trajectory_matrix(scalar.trajectory)
        for row in range(4):
            assert np.array_equal(reference, batched.flow_matrix(row))


class TestOpenModeGrowth:
    SETTINGS = dict(update_period=0.125, horizon=5.0, steps_per_phase=10)

    def test_single_row_batch_reproduces_scalar_driver(self):
        """B=1 has nothing to union: growth events, final path set and every
        sample must match the scalar open-mode driver bit for bit."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        policy = uniform_policy(network)
        batched = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network), policy, batch=1, **self.SETTINGS
        )
        scalar = simulate_with_column_generation(
            ActivePathSet.from_network(network), policy, **self.SETTINGS
        )
        assert scalar.total_columns_added > 0
        assert batched.network.num_paths == scalar.network.num_paths
        assert [phase for phase, _ in batched.growth_events] == [
            phase for phase, _ in scalar.growth_events
        ]
        assert list(batched.network.paths) == list(scalar.network.paths)
        assert np.array_equal(
            trajectory_matrix(scalar.trajectory), batched.flow_matrix(0)
        )

    def test_new_columns_enter_with_zero_flow_on_every_row(self):
        """Union growth: a column discovered by one row joins all rows with
        zero flow at its growth phase (no closures here, so nothing is ever
        moved onto a fresh column)."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        policy = uniform_policy(network)
        edge = network.edges[0]
        scenarios = [
            None,
            Scenario(incidents=[LinkIncident(edge, 1.0, 3.0, capacity_factor=0.3)]),
        ]
        result = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network),
            policy,
            scenarios=scenarios,
            **self.SETTINGS,
        )
        assert result.growth_events
        for phase, paths in result.growth_events:
            indices = [result.network.paths.index_of(path) for path in paths]
            assert np.array_equal(
                result.phase_start_flows[:, phase, :][:, indices],
                np.zeros((len(scenarios), len(indices))),
            )

    def test_union_merges_candidates_from_different_rows(self):
        """The ``add_paths`` union entry point: candidates discovered by two
        rows land in one set, and the permutation maps every old index to
        where its path now lives."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        active = ActivePathSet.from_network(network)
        seed_paths = list(active.network.paths)
        values = np.zeros((2, active.num_paths))
        values[0, 0] = 1.0  # row 0 congests commodity 0's seed...
        values[1, -1] = 1.0  # ...row 1 congests commodity 1's
        candidates = []
        for row in range(2):
            costs = active.posted_costs(active.network, values[row])
            candidates.extend(active.oracle.shortest_commodity_paths(costs))
        added = active.add_paths(candidates)
        assert added
        perm = active.last_permutation
        grown = active.network
        for old_index, path in enumerate(seed_paths):
            assert grown.paths.index_of(path) == perm[old_index]
        for path in added:
            assert path in grown.paths
        # Re-adding the same candidates is a no-op.
        assert active.add_paths(candidates) == []

    def test_growth_reposts_every_row(self):
        """Growth is a shared information event: the sample right after a
        growth phase is defined (and feasible) for every row, including rows
        that did not refresh on their own schedule."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        result = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network),
            uniform_policy(network),
            batch=3,
            **self.SETTINGS,
        )
        assert result.growth_events
        demand = sum(c.demand for c in result.network.commodities)
        totals = result.flows.sum(axis=2)
        assert np.allclose(totals, demand, atol=1e-9)


class TestBufferCapacity:
    def test_tight_capacity_reallocates_and_matches_default(self):
        """``capacity=width`` forces the doubling reallocation on the first
        growth event; the run must stay bitwise equal to the default-padded
        one (growth placement is index arithmetic, not arithmetic on flows)."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        policy = uniform_policy(network)
        settings = dict(update_period=0.125, horizon=5.0, steps_per_phase=10)
        width = ActivePathSet.from_network(network).num_paths
        tight = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network),
            policy,
            batch=2,
            capacity=width,
            **settings,
        )
        padded = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network), policy, batch=2, **settings
        )
        assert tight.network.num_paths > width
        assert np.array_equal(tight.flows, padded.flows)
        assert np.array_equal(tight.phase_start_flows, padded.phase_start_flows)


class TestEvictionHelpers:
    def build(self):
        network = braess_network()
        closed = ActivePathSet.from_network(network, closed=True)
        return closed, closed.network

    def test_fully_closed_commodity_keeps_its_flow(self):
        """A commodity whose every column crosses a closure has nothing open
        to route onto: the flow stays put and nothing counts as moved."""
        _, network = self.build()
        values = np.array([0.25, 0.25, 0.5])
        latencies = network.path_latencies(values)
        repaired, moved = _evict_closed_columns(
            network, values, list(range(network.num_paths)), latencies
        )
        assert moved == 0.0
        assert np.array_equal(repaired, values)

    def test_zero_volume_on_closed_columns_moves_nothing(self):
        _, network = self.build()
        descriptions = network.paths.describe()
        shortcut = descriptions.index("s->a->b->t")
        values = np.zeros(network.num_paths)
        values[descriptions.index("s->a->t")] = 1.0
        latencies = network.path_latencies(values)
        repaired, moved = _evict_closed_columns(network, values, [shortcut], latencies)
        assert moved == 0.0
        assert np.array_equal(repaired, values)

    def test_empty_crossing_list_is_the_fast_path(self):
        _, network = self.build()
        values = np.array([0.2, 0.3, 0.5])
        repaired, moved = _evict_closed_columns(
            network, values, [], network.path_latencies(values)
        )
        assert moved == 0.0
        assert repaired is values  # no copy on the fast path

    def test_flow_moves_to_the_cheapest_open_column(self):
        _, network = self.build()
        descriptions = network.paths.describe()
        shortcut = descriptions.index("s->a->b->t")
        values = np.zeros(network.num_paths)
        values[shortcut] = 1.0
        latencies = network.path_latencies(values)
        repaired, moved = _evict_closed_columns(network, values, [shortcut], latencies)
        open_indices = [i for i in range(network.num_paths) if i != shortcut]
        best = min(open_indices, key=lambda p: (latencies[p], p))
        assert moved == pytest.approx(1.0)
        assert repaired[shortcut] == 0.0
        assert repaired[best] == pytest.approx(1.0)

    def test_invalidate_columns_on_a_grown_set(self):
        """Crossing detection must see columns added after the seed build."""
        network = grid_network(2, 3, num_commodities=1, seed=3)
        active = ActivePathSet.from_network(network)
        seed_network = active.network
        values = np.zeros(active.num_paths)
        values[0] = network.commodities[0].demand
        added = active.augment(active.posted_costs(seed_network, values))
        assert added
        grown = active.network
        target_edge = added[0].edges[0]
        crossing = active.invalidate_columns(grown, {target_edge})
        expected = [
            index
            for index, path in enumerate(grown.paths)
            if target_edge in path.edges
        ]
        assert crossing == expected
        assert grown.paths.index_of(added[0]) in crossing


class TestBatchApiSurface:
    def test_duality_gaps_cover_every_row(self):
        network = grid_network(2, 3, num_commodities=2, seed=3)
        result = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network),
            uniform_policy(network),
            update_period=0.25,
            horizon=4.0,
            steps_per_phase=5,
            batch=3,
        )
        assert result.duality_gaps.shape == (3,)
        assert np.all(np.isfinite(result.duality_gaps))
        assert np.all(result.duality_gaps >= 0.0)
        assert result.batch_size == 3
        assert np.array_equal(result.final_flows(), result.flows[:, -1, :])

    def test_trajectory_rows_round_trip_through_the_analysis_surface(self):
        network = braess_network()
        result = simulate_with_column_generation_batch(
            ActivePathSet.from_network(network, closed=True),
            uniform_policy(network),
            update_period=0.25,
            horizon=1.0,
            steps_per_phase=5,
            batch=2,
        )
        trajectory = result.trajectory(1)
        assert len(trajectory) == len(result.times)
        assert np.array_equal(trajectory_matrix(trajectory), result.flow_matrix(1))
        assert len(trajectory.phases) == len(result.phase_spans)

    def test_inconsistent_batch_sizes_rejected(self):
        network = braess_network()
        policy = uniform_policy(network)
        scenarios = [None, None]
        with pytest.raises(ValueError, match="batch sizes"):
            simulate_with_column_generation_batch(
                ActivePathSet.from_network(network),
                policy,
                update_period=0.25,
                horizon=1.0,
                batch=3,
                scenarios=scenarios,
            )

    def test_missing_batch_size_rejected(self):
        network = braess_network()
        with pytest.raises(ValueError, match="batch size"):
            simulate_with_column_generation_batch(
                ActivePathSet.from_network(network),
                uniform_policy(network),
                update_period=0.25,
                horizon=1.0,
            )

    def test_invalid_settings_rejected(self):
        network = braess_network()
        policy = uniform_policy(network)
        with pytest.raises(ValueError, match="positive"):
            simulate_with_column_generation_batch(
                ActivePathSet.from_network(network),
                policy,
                update_period=0.0,
                horizon=1.0,
                batch=2,
            )
        with pytest.raises(ValueError, match="steps_per_phase"):
            simulate_with_column_generation_batch(
                ActivePathSet.from_network(network),
                policy,
                update_period=0.25,
                horizon=1.0,
                steps_per_phase=0,
                batch=2,
            )

    def test_foreign_initial_flow_rejected(self):
        network = braess_network()
        other = braess_network()
        from repro.wardrop import FlowVector

        with pytest.raises(ValueError, match="different network"):
            simulate_with_column_generation_batch(
                ActivePathSet.from_network(network, closed=True),
                uniform_policy(network),
                update_period=0.25,
                horizon=1.0,
                batch=2,
                initial_flows=FlowVector.uniform(other),
            )
