"""The Wardrop routing substrate: networks, flows, potential and equilibria.

This subpackage implements the model of Section 2.1 of Fischer & Vöcking,
"Adaptive routing with stale information": directed multigraphs with
continuous non-decreasing latency functions, commodities with normalised
demands, path-flow vectors, the Beckmann--McGuire--Winsten potential and the
exact and approximate Wardrop-equilibrium notions used by the convergence
theorems.
"""

from .commodity import Commodity, demands_are_normalised, normalise_demands, total_demand
from .flow import FlowVector
from .latency import (
    AffineLatency,
    BPRLatency,
    ConstantLatency,
    LatencyFunction,
    LatencyStack,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PiecewiseLinearLatency,
    PolynomialLatency,
    ScaledLatency,
    SumLatency,
    ThresholdLatency,
)
from .family import NetworkFamily, topology_signature
from .network import LATENCY_ATTR, WardropNetwork
from .paths import Path, PathSet, build_path_set, enumerate_commodity_paths
from .potential import (
    PotentialDecomposition,
    decompose_phase,
    error_terms,
    potential,
    potential_gap,
    potential_of_edge_flows,
    potential_trace,
    virtual_potential_gain,
)
from .equilibrium import (
    EquilibriumReport,
    equilibrium_violation,
    is_approximate_equilibrium,
    is_wardrop_equilibrium,
    is_weak_approximate_equilibrium,
    report,
    support,
    unsatisfied_volume,
    weakly_unsatisfied_volume,
)
from .social_cost import (
    MarginalCostLatency,
    marginal_cost_network,
    optimal_flow,
    price_of_anarchy,
    social_cost,
)
from .validation import InstanceValidationError, ValidationReport, assert_valid, validate_network

__all__ = [
    "AffineLatency",
    "BPRLatency",
    "Commodity",
    "ConstantLatency",
    "EquilibriumReport",
    "FlowVector",
    "InstanceValidationError",
    "LATENCY_ATTR",
    "LatencyFunction",
    "LatencyStack",
    "LinearLatency",
    "MM1Latency",
    "MarginalCostLatency",
    "MonomialLatency",
    "NetworkFamily",
    "Path",
    "PathSet",
    "PiecewiseLinearLatency",
    "PolynomialLatency",
    "PotentialDecomposition",
    "ScaledLatency",
    "SumLatency",
    "ThresholdLatency",
    "ValidationReport",
    "WardropNetwork",
    "assert_valid",
    "build_path_set",
    "decompose_phase",
    "demands_are_normalised",
    "enumerate_commodity_paths",
    "equilibrium_violation",
    "error_terms",
    "is_approximate_equilibrium",
    "is_wardrop_equilibrium",
    "is_weak_approximate_equilibrium",
    "marginal_cost_network",
    "normalise_demands",
    "optimal_flow",
    "potential",
    "potential_gap",
    "potential_of_edge_flows",
    "potential_trace",
    "price_of_anarchy",
    "report",
    "social_cost",
    "support",
    "topology_signature",
    "total_demand",
    "unsatisfied_volume",
    "validate_network",
    "virtual_potential_gain",
    "weakly_unsatisfied_volume",
]
