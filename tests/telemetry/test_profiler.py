"""The sampling profiler: lifecycle, sample attribution, trace round-trip."""

from __future__ import annotations

import json
import time

from repro.telemetry import telemetry_session
from repro.telemetry.profiler import PROFILE_KIND, SamplingProfiler, profile_rows
from repro.telemetry.report import load_trace


def _busy_wait(seconds: float) -> float:
    deadline = time.perf_counter() + seconds
    total = 0.0
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


class TestLifecycle:
    def test_start_and_stop_are_idempotent(self):
        profiler = SamplingProfiler(interval=0.001)
        profiler.start().start()
        _busy_wait(0.03)
        profiler.stop().stop()
        assert profiler._thread is None
        assert profiler.elapsed > 0

    def test_context_manager_collects_samples(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy_wait(0.05)
        assert profiler.total_samples > 0
        assert sum(profiler.samples.values()) == profiler.total_samples

    def test_stop_without_start_is_a_noop(self):
        profiler = SamplingProfiler()
        profiler.stop()
        assert profiler.total_samples == 0


class TestAttribution:
    def test_samples_carry_location_and_rows_sum_to_total(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy_wait(0.05)
        rows = profiler.rows(top=100)
        assert rows
        assert any("test_profiler" in str(row["location"]) for row in rows)
        assert sum(row["samples"] for row in rows) == profiler.total_samples
        assert abs(sum(row["share"] for row in rows) - 1.0) < 1e-9

    def test_samples_attribute_to_active_span_stack(self):
        with telemetry_session() as tele:
            profiler = SamplingProfiler(interval=0.001, tracer=tele.tracer)
            profiler.start()
            with tele.span("engine_run"):
                with tele.span("phase"):
                    _busy_wait(0.05)
            profiler.stop()
        stacks = {stack for stack, _location in profiler.samples}
        assert ("engine_run", "phase") in stacks

    def test_rows_respect_top_limit(self):
        profiler = SamplingProfiler()
        for i in range(20):
            profiler.samples[((), f"file.py:{i} fn")] = i + 1
            profiler.total_samples += i + 1
        assert len(profiler.rows(top=5)) == 5


class TestTraceRoundTrip:
    def test_profile_record_shape(self):
        with SamplingProfiler(interval=0.001) as profiler:
            _busy_wait(0.03)
        (record,) = profiler.records()
        assert record["kind"] == PROFILE_KIND
        assert record["samples"] == profiler.total_samples
        assert record["elapsed"] > 0
        assert all(
            set(entry) == {"stack", "location", "samples"}
            for entry in record["entries"]
        )

    def test_profile_rows_aggregates_records(self):
        records = [
            {
                "kind": PROFILE_KIND,
                "interval": 0.005,
                "samples": 10,
                "elapsed": 1.0,
                "entries": [
                    {"stack": ["engine_run"], "location": "a.py:1 f", "samples": 6},
                    {"stack": [], "location": "b.py:2 g", "samples": 4},
                ],
            }
        ]
        rows = profile_rows(records)
        assert rows[0]["location"] == "a.py:1 f"
        assert rows[0]["spans"] == "engine_run"
        assert rows[0]["est_seconds"] == 0.6
        assert rows[1]["spans"] == "-"

    def test_profile_rows_empty_without_profile_records(self):
        assert profile_rows([{"kind": "span", "name": "x"}]) == []

    def test_session_writes_profile_record_into_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with telemetry_session(trace_path=trace, profile=True, profile_interval=0.001):
            _busy_wait(0.05)
        records = load_trace(trace)
        profiles = [r for r in records if r.get("kind") == PROFILE_KIND]
        assert len(profiles) == 1
        assert profiles[0]["samples"] > 0
        # And the written line is valid standalone JSON.
        lines = trace.read_text().splitlines()
        assert any(json.loads(line).get("kind") == PROFILE_KIND for line in lines)

    def test_session_without_profile_has_no_profiler(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        with telemetry_session(trace_path=trace) as tele:
            pass
        assert tele.profiler is None
        records = load_trace(trace)
        assert not [r for r in records if r.get("kind") == PROFILE_KIND]
