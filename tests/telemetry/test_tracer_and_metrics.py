"""Unit tests for the tracer and the metrics registry."""

from __future__ import annotations

import json
import math

import pytest

from repro.telemetry import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
)


class FakeClock:
    """A deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_spans_nest_and_record_parentage(self):
        tracer = Tracer()
        with tracer.span("engine_run", engine="fluid-scalar") as run:
            with tracer.span("phase", index=0) as phase:
                tracer.event("bulletin_refresh", rows=3)
            assert phase.span.parent_id == run.span.span_id
        records = tracer.records()
        names = [record["name"] for record in records]
        assert names == ["engine_run", "phase", "bulletin_refresh"]
        by_name = {record["name"]: record for record in records}
        assert by_name["engine_run"]["parent"] is None
        assert by_name["phase"]["parent"] == by_name["engine_run"]["id"]
        assert by_name["bulletin_refresh"]["parent"] == by_name["phase"]["id"]
        assert by_name["bulletin_refresh"]["kind"] == "event"
        assert by_name["bulletin_refresh"]["attrs"] == {"rows": 3}

    def test_imperative_close_is_equivalent_to_with(self):
        tracer = Tracer(clock=FakeClock())
        span = tracer.span("phase", index=1)
        inner = tracer.span("integrate")
        inner.close()
        span.annotate(steps=20)
        span.close()
        records = {record["name"]: record for record in tracer.records()}
        assert records["integrate"]["parent"] == records["phase"]["id"]
        assert records["phase"]["attrs"] == {"index": 1, "steps": 20}
        assert records["phase"]["dur"] > 0
        # After both closes, new spans are roots again.
        root = tracer.span("engine_run")
        root.close()
        assert tracer.records()[-1]["parent"] is None

    def test_durations_come_from_the_injected_clock(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        with tracer.span("phase"):
            pass
        (record,) = tracer.records()
        # Creation consumes one tick for the origin, the span start and end
        # one each: dur == one clock step.
        assert record["dur"] == 0.5
        assert record["t1"] == record["t0"] + 0.5

    def test_annotate_targets_the_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("engine_run"):
            with tracer.span("phase"):
                tracer.annotate(active_rows=7)
        records = {record["name"]: record for record in tracer.records()}
        assert records["phase"]["attrs"] == {"active_rows": 7}
        assert "attrs" not in records["engine_run"]

    def test_write_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("engine_run", engine="agents"):
            tracer.event("stop_when_fired")
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path, extra_records=[{"kind": "metrics", "counters": {}}])
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["schema"] == "repro-trace/1"
        assert lines[0]["spans"] == 2
        assert [line["kind"] for line in lines[1:]] == ["span", "event", "metrics"]

    def test_null_tracer_is_inert(self):
        context = NULL_TRACER.span("phase", index=0)
        with context:
            context.annotate(ignored=True)
        context.close()
        assert NULL_TRACER.event("x") is None
        assert NULL_TRACER.records() == []
        assert not NULL_TRACER.enabled
        # The shared context is one singleton, so disabled spans allocate
        # nothing per call.
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


class TestMetricsRegistry:
    def test_instruments_create_on_first_use_and_persist(self):
        registry = MetricsRegistry()
        registry.counter("phases").add()
        registry.counter("phases").add(2)
        registry.gauge("paths").set(5)
        registry.histogram("group_size").observe(4)
        registry.histogram("group_size").observe(8)
        registry.series_of("gap").append(0.0, 1.0)
        registry.series_of("gap").append(1.0, 0.5)
        assert registry.counter("phases").value == 3
        assert registry.gauge("paths").value == 5.0
        assert registry.histogram("group_size").mean == 6.0
        assert registry.series_of("gap").points[-1] == (1.0, 0.5)

    def test_flatten_expands_histograms_and_series(self):
        registry = MetricsRegistry()
        registry.counter("cg.columns_added").add(3)
        registry.histogram("runner.batch_group_size").observe(16)
        registry.series_of("fw.relative_gap").append(0.1, 0.02)
        flat = registry.flatten(prefix="tele_")
        assert flat["tele_cg.columns_added"] == 3
        assert flat["tele_runner.batch_group_size_count"] == 1
        assert flat["tele_runner.batch_group_size_mean"] == 16.0
        assert flat["tele_runner.batch_group_size_max"] == 16.0
        assert flat["tele_fw.relative_gap_points"] == 1
        assert flat["tele_fw.relative_gap_last"] == 0.02

    def test_empty_histogram_flattens_to_nan_not_inf(self):
        registry = MetricsRegistry()
        registry.histogram("unused")
        flat = registry.flatten()
        assert flat["unused_count"] == 0
        assert math.isnan(flat["unused_mean"])
        assert math.isnan(flat["unused_max"])

    def test_rows_render_one_line_per_instrument(self):
        registry = MetricsRegistry()
        registry.counter("b.count").add()
        registry.counter("a.count").add(2)
        registry.gauge("g").set(1.5)
        rows = registry.rows()
        # Sorted within each instrument type, counters first.
        assert [row["metric"] for row in rows] == ["a.count", "b.count", "g"]
        assert rows[0] == {"metric": "a.count", "type": "counter", "value": 2.0}

    def test_to_record_snapshot_is_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("runs").add()
        registry.histogram("h").observe(2.0)
        registry.series_of("s").append(0.0, 3.0)
        record = registry.to_record()
        assert record["kind"] == "metrics"
        assert json.loads(json.dumps(record)) == json.loads(json.dumps(record))
        assert record["histograms"]["h"]["count"] == 1
        assert record["series"]["s"] == [(0.0, 3.0)]

    def test_series_attributes_export_without_touching_the_points(self):
        registry = MetricsRegistry()
        registry.series_of("gap").append(0.0, 1.0)
        registry.series_of("gap").annotate(method="cfw")
        registry.series_of("gap").annotate(method="bfw", instance="sioux-falls")
        registry.series_of("bare").append(0.0, 2.0)
        record = registry.to_record()
        # Re-annotation overwrites per key; unannotated series stay out.
        assert record["series_attrs"] == {
            "gap": {"method": "bfw", "instance": "sioux-falls"}
        }
        # The points payload keeps its original schema.
        assert record["series"]["gap"] == [(0.0, 1.0)]
        assert json.loads(json.dumps(record)) == json.loads(json.dumps(record))

    def test_null_metrics_shares_one_inert_instrument(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")
        NULL_METRICS.counter("a").add(100)
        NULL_METRICS.gauge("g").set(1)
        NULL_METRICS.series_of("s").append(0, 1)
        assert NULL_METRICS.counter("a").value == 0.0
        assert NULL_METRICS.flatten() == {}
        assert NULL_METRICS.rows() == []


class TestHistogramPercentiles:
    def test_percentile_interpolates_sorted_samples(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]:
            histogram.observe(value)
        assert histogram.percentile(0.0) == 1.0
        assert histogram.percentile(100.0) == 10.0
        assert histogram.percentile(50.0) == 5.5
        assert histogram.percentile(95.0) == pytest.approx(9.55)

    def test_percentile_of_empty_histogram_is_nan(self):
        registry = MetricsRegistry()
        assert math.isnan(registry.histogram("unused").percentile(50.0))

    def test_single_sample_is_every_percentile(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        histogram.observe(7.0)
        assert histogram.percentile(1.0) == 7.0
        assert histogram.percentile(99.0) == 7.0

    def test_rows_and_record_carry_p50_p95(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for value in range(1, 101):
            histogram.observe(float(value))
        (row,) = registry.rows()
        assert row["p50"] == pytest.approx(50.5)
        assert row["p95"] == pytest.approx(95.05)
        record = registry.to_record()
        assert record["histograms"]["h"]["p50"] == pytest.approx(50.5)
        assert record["histograms"]["h"]["p95"] == pytest.approx(95.05)

    def test_empty_histogram_record_has_null_percentiles(self):
        registry = MetricsRegistry()
        registry.histogram("unused")
        record = registry.to_record()
        assert record["histograms"]["unused"]["p50"] is None
        assert record["histograms"]["unused"]["p95"] is None
