"""The ambient-session plumbing: install, restore, export, listeners."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)


class TestAmbientSession:
    def test_disabled_null_session_is_the_default(self):
        tele = get_telemetry()
        assert tele is NULL_TELEMETRY
        assert not tele.enabled
        # Every hook is inert out of the box.
        with tele.span("engine_run", engine="x"):
            tele.counter("c").add()
            tele.event("e")
        assert tele.metrics.flatten() == {}

    def test_session_installs_and_restores(self):
        assert get_telemetry() is NULL_TELEMETRY
        with telemetry_session() as session:
            assert get_telemetry() is session
            assert session.enabled
        assert get_telemetry() is NULL_TELEMETRY

    def test_sessions_nest_and_restore_the_outer_one(self):
        with telemetry_session() as outer:
            with telemetry_session() as inner:
                assert get_telemetry() is inner
            assert get_telemetry() is outer

    def test_set_telemetry_none_restores_the_null_default(self):
        previous = set_telemetry(Telemetry())
        assert previous is NULL_TELEMETRY
        set_telemetry(None)
        assert get_telemetry() is NULL_TELEMETRY

    def test_trace_written_on_exit(self, tmp_path):
        path = tmp_path / "out.jsonl"
        with telemetry_session(trace_path=path) as tele:
            with tele.span("engine_run", engine="fluid-scalar"):
                tele.counter("fluid.phases_integrated").add(4)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert any(line["kind"] == "span" for line in lines)
        metrics = next(line for line in lines if line["kind"] == "metrics")
        assert metrics["counters"]["fluid.phases_integrated"] == 4

    def test_trace_written_even_when_the_block_raises(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with telemetry_session(trace_path=path) as tele:
                tele.event("case_started")
                raise RuntimeError("boom")
        assert get_telemetry() is NULL_TELEMETRY
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert any(
            line.get("name") == "case_started" for line in lines
        ), "aborted runs keep their partial trace"

    def test_progress_listener_sees_events_and_detaches_on_exit(self):
        seen = []
        with telemetry_session(progress=lambda name, attrs: seen.append((name, attrs))) as tele:
            tele.event("case_finished", seconds=0.5)
        assert seen == [("case_finished", {"seconds": 0.5})]
        assert tele.listeners == []

    def test_null_session_export_is_an_error(self, tmp_path):
        with pytest.raises(RuntimeError):
            NULL_TELEMETRY.write_trace(tmp_path / "never.jsonl")

    def test_shared_session_object_accumulates_across_blocks(self):
        session = Telemetry()
        with telemetry_session(telemetry=session) as tele:
            tele.counter("runs").add()
        with telemetry_session(telemetry=session) as tele:
            tele.counter("runs").add()
        assert session.metrics.counter("runs").value == 2
