"""Parallel-link instance families.

Parallel-link networks with ``m`` edges are the natural testbed for the
convergence-time theorems: the number of paths ``|P|`` equals the number of
links, so sweeping ``m`` directly exercises the ``|P|`` factor that separates
Theorem 6 (uniform sampling) from Theorem 7 (proportional sampling).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..wardrop.commodity import Commodity
from ..wardrop.latency import AffineLatency, LatencyFunction, LinearLatency, MonomialLatency
from ..wardrop.network import WardropNetwork


def parallel_links_network(latencies: Sequence[LatencyFunction], demand: float = 1.0) -> WardropNetwork:
    """Build a single-commodity network of parallel links with given latencies."""
    if not latencies:
        raise ValueError("need at least one link")
    edges = [("s", "t", latency) for latency in latencies]
    return WardropNetwork.from_edges(edges, [Commodity("s", "t", demand, name="parallel")])


def identical_linear_links(num_links: int, slope: float = 1.0) -> WardropNetwork:
    """``m`` identical links with latency ``slope * x``.

    The equilibrium splits the demand evenly; useful because the equilibrium
    is known in closed form for any ``m``.
    """
    if num_links < 1:
        raise ValueError("need at least one link")
    return parallel_links_network([LinearLatency(slope) for _ in range(num_links)])

def heterogeneous_affine_links(
    num_links: int,
    slope_range: tuple = (0.5, 2.0),
    intercept_range: tuple = (0.0, 0.5),
    seed: Optional[int] = None,
) -> WardropNetwork:
    """``m`` affine links with slopes and intercepts drawn from given ranges.

    With a fixed ``seed`` the instance is reproducible; the benchmark sweeps
    use this family to vary ``|P|`` while keeping the latency class fixed.
    """
    if num_links < 1:
        raise ValueError("need at least one link")
    rng = np.random.default_rng(seed)
    latencies: List[LatencyFunction] = []
    for _ in range(num_links):
        slope = float(rng.uniform(*slope_range))
        intercept = float(rng.uniform(*intercept_range))
        latencies.append(AffineLatency(slope, intercept))
    return parallel_links_network(latencies)


def pigou_like_links(num_links: int, degree: int = 2) -> WardropNetwork:
    """One constant-latency link competing with ``m - 1`` monomial links.

    Generalises the Pigou instance to more links; the non-linear links make
    the slope bound ``beta`` grow with the degree, stressing the safe update
    period ``T* = 1/(4 D alpha beta)``.
    """
    if num_links < 2:
        raise ValueError("need at least two links")
    from ..wardrop.latency import ConstantLatency

    latencies: List[LatencyFunction] = [ConstantLatency(1.0)]
    latencies.extend(MonomialLatency(1.0, degree) for _ in range(num_links - 1))
    return parallel_links_network(latencies)
