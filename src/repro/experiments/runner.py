"""Experiment execution: batched, pooled or serial dispatch of sweep cases.

The runner turns a list of :class:`~repro.analysis.sweeps.SweepCase` objects
into a :class:`~repro.analysis.sweeps.SweepResult` by choosing, per group of
cases, the cheapest execution backend:

* **batch** — cases whose networks share a *topology* (identical paths,
  edges and commodities; latency coefficients may differ) under the same
  information model and integration method are fused into one vectorized
  :class:`~repro.batch.BatchSimulator` integration.  Identical network
  objects batch as before; different same-topology networks are stacked into
  a :class:`~repro.wardrop.family.NetworkFamily`, and per-row policies,
  update periods, horizons, resolutions and initial flows all ride along —
  this is the fast path for the paper's coefficient sweeps;
* **processes** — heterogeneous cases (different topologies) can be fanned
  out over a ``multiprocessing`` pool.  With the ``fork`` start method
  (Linux/macOS default here) workers build the result *rows* in-process and
  return plain dicts, so big sweeps never pickle whole trajectories back to
  the parent; without fork the runner falls back to shipping trajectories;
* **serial** — the original one-case-at-a-time loop, always available as the
  reference backend.

``engine="auto"`` batches every multi-case group and runs the remainder
serially (or on a pool when ``processes > 1`` is requested).  Whatever the
backend, rows are emitted in the original case order and each case's
trajectory is identical to a scalar run, so results never depend on the
dispatch decision — with one documented exception: *open-mode*
column-generation cases fused onto the batched CG driver grow a shared
(union) restricted path set, so a fused row can route over columns another
row discovered.  Closed-mode CG fusions stay bit-identical per row; force
``engine="serial"`` when per-row discovery sets must stay independent.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.sweeps import RowBuilder, SweepCase, SweepResult
from ..telemetry.runtime import get_telemetry
from ..batch.agents import BatchAgentConfig, BatchAgentSimulator
from ..batch.engine import BatchConfig, BatchSimulator, Policies
from ..core.agents import DEFAULT_NUM_AGENTS, AgentBasedSimulator, AgentSimulationConfig
from ..core.simulator import simulate
from ..core.trajectory import Trajectory
from ..wardrop.family import NetworkFamily, topology_signature
from ..wardrop.flow import FlowVector
from .plan import ExperimentPlan

GroupKey = Tuple[Tuple, bool, str, bool, Optional[Tuple]]

Rows = List[Dict[str, object]]


def group_key(case: SweepCase) -> GroupKey:
    """Return the batch-compatibility key of a case.

    Cases batch together when their networks share a topology
    (:func:`~repro.wardrop.family.topology_signature`: identical paths, edges
    and commodities — latency coefficients may differ, in which case the
    group runs as a :class:`~repro.wardrop.family.NetworkFamily` batch), the
    same information model (stale vs fresh) and the same integration method;
    policy, update period, horizon, steps-per-phase, initial flow and
    *scenario* may vary per row (the batched engine stacks per-row
    nonstationary environments).

    Column-generation cases fuse under a stricter signature (the final key
    element): they must share the *same network object* (the rows grow one
    shared restricted path set) and the same update period, horizon and
    steps-per-phase (the batched driver runs one global phase grid).  Only
    policies and scenarios vary per fused CG row.  The ``serial_only`` flag
    (element 3) marks the cases that still run on the scalar path: CG cases
    with an initial flow, a stop condition or the agents method (so the
    scalar driver's informative errors surface), and agent-method cases
    carrying a scenario (they need the scalar agent engine).
    """
    cg_signature: Optional[Tuple] = None
    if case.column_generation:
        serial_only = (
            case.method == "agents"
            or case.initial_flow is not None
            or case.stop_when is not None
        )
        if not serial_only:
            cg_signature = (
                id(case.network),
                case.update_period,
                case.horizon,
                case.steps_per_phase,
            )
    else:
        serial_only = case.method == "agents" and case.scenario is not None
    return (
        topology_signature(case.network),
        case.stale,
        case.method,
        serial_only,
        cg_signature,
    )


def _case_num_agents(case: SweepCase) -> int:
    """Return a case's population size, defaulting only a missing value.

    An explicit (invalid) 0 must reach the config validator rather than be
    silently replaced by the default.
    """
    return case.num_agents if case.num_agents is not None else DEFAULT_NUM_AGENTS


def _simulate_case(case: SweepCase) -> Trajectory:
    """Run one case through the scalar simulator (also the pool worker)."""
    scalar_stop = case.stop_when.scalar(0) if case.stop_when is not None else None
    if case.column_generation:
        # Lazy import: the large-network layer is optional machinery for the
        # runner and pulls in the shortest-path oracle stack.
        from ..largescale.columns import ActivePathSet, simulate_with_column_generation

        if case.method == "agents":
            raise ValueError("column generation supports fluid methods only")
        if case.initial_flow is not None:
            raise ValueError(
                "column-generation cases start from the uniform split on their "
                "seed paths; initial_flow cannot be mapped onto the grown set"
            )
        if case.stop_when is not None:
            raise ValueError(
                "SweepCase.stop_when conditions are authored for the case "
                "network's fixed path dimension; a column-generation run's "
                "restricted path set grows mid-run, so pass a scalar "
                "stop_when to simulate_with_column_generation directly "
                "(it receives the flow on the current restricted network)"
            )
        result = simulate_with_column_generation(
            ActivePathSet.from_network(case.network),
            case.policy,
            update_period=case.update_period,
            horizon=case.horizon,
            stale=case.stale,
            steps_per_phase=case.steps_per_phase,
            method=case.method,
            scenario=case.scenario,
        )
        return result.trajectory
    if case.method == "agents":
        config = AgentSimulationConfig(
            num_agents=_case_num_agents(case),
            update_period=case.update_period,
            horizon=case.horizon,
            seed=case.seed,
            stale=case.stale,
        )
        return AgentBasedSimulator(
            case.network, case.policy, config, scenario=case.scenario
        ).run(case.initial_flow, stop_when=scalar_stop)
    return simulate(
        case.network,
        case.policy,
        update_period=case.update_period,
        horizon=case.horizon,
        initial_flow=case.initial_flow,
        stale=case.stale,
        steps_per_phase=case.steps_per_phase,
        method=case.method,
        stop_when=scalar_stop,
        scenario=case.scenario,
    )


def _case_event_attrs(case: SweepCase) -> Dict[str, object]:
    """Return the JSON-friendly attributes of one case's progress events."""
    attrs: Dict[str, object] = {
        "method": case.method,
        "stale": case.stale,
        "update_period": case.update_period,
        "horizon": case.horizon,
    }
    for key, value in case.parameters.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            attrs.setdefault(key, value)
    return attrs


def _serial_case_rows(case: SweepCase, row_builder: RowBuilder) -> Rows:
    """Run one case serially, emitting started/finished progress events."""
    tele = get_telemetry()
    attrs = _case_event_attrs(case) if tele.enabled else {}
    tele.event("case_started", **attrs)
    begin = time.perf_counter() if tele.enabled else 0.0
    rows = _case_rows(case, _simulate_case(case), row_builder)
    tele.event("case_finished", seconds=time.perf_counter() - begin, **attrs)
    tele.counter("runner.cases_completed").add()
    return rows


def _case_rows(case: SweepCase, trajectory: Trajectory, row_builder: RowBuilder) -> Rows:
    """Build one case's result rows, merged over its echoed parameters."""
    built = row_builder(trajectory)
    rows = built if isinstance(built, (list, tuple)) else [built]
    merged_rows: Rows = []
    for row in rows:
        merged: Dict[str, object] = dict(case.parameters)
        merged.update(row)
        merged_rows.append(merged)
    return merged_rows


def _group_target_and_policies(cases: Sequence[SweepCase]):
    """Return the shared network (or family) and policies of one group."""
    networks = [case.network for case in cases]
    if all(network is networks[0] for network in networks):
        target = networks[0]
    else:
        target = NetworkFamily(networks)
    policies: Policies = [case.policy for case in cases]
    if all(policy is policies[0] for policy in policies):
        policies = policies[0]
    return target, policies


def _group_stop_when(cases: Sequence[SweepCase]):
    """Build the combined batch stopping condition of one fused group.

    Each case's :class:`~repro.batch.stopping.StopCondition` is evaluated on
    its own single-row slice with row index 0 -- exactly what the serial
    backend's ``condition.scalar(0)`` adapter evaluates -- so a case stops in
    the same phase whichever backend runs it.
    """
    conditions = [case.stop_when for case in cases]
    if all(condition is None for condition in conditions):
        return None
    zero = np.zeros(1, dtype=int)

    def combined(times: np.ndarray, flows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        mask = np.zeros(len(rows), dtype=bool)
        for i, row in enumerate(rows):
            condition = conditions[row]
            if condition is not None:
                mask[i] = bool(
                    np.asarray(condition.batch(times[i : i + 1], flows[i : i + 1], zero))[0]
                )
        return mask

    return combined


def _run_batch_cg_group(cases: Sequence[SweepCase]) -> List[Trajectory]:
    """Run one fused column-generation group on the batched CG driver.

    The group key guarantees the cases share one network object, update
    period, horizon, steps-per-phase, information model and method; policies
    and scenarios ride along per row.  Closed-mode rows are bit-identical to
    the scalar driver.  **Open-mode rows are not**: fused rows grow one
    shared (union) restricted path set, so a row can discover columns
    another row's snapshot surfaced — this is the one documented departure
    from "results never depend on the dispatch decision" (force
    ``engine="serial"`` to keep per-row discovery sets independent).
    """
    from ..largescale.batch_columns import simulate_with_column_generation_batch
    from ..largescale.columns import ActivePathSet

    first = cases[0]
    scenarios = [case.scenario for case in cases]
    result = simulate_with_column_generation_batch(
        ActivePathSet.from_network(first.network),
        [case.policy for case in cases],
        update_period=first.update_period,
        horizon=first.horizon,
        scenarios=scenarios if any(s is not None for s in scenarios) else None,
        batch=len(cases),
        stale=first.stale,
        steps_per_phase=first.steps_per_phase,
        method=first.method,
    )
    return [result.trajectory(row) for row in range(len(cases))]


def _run_batch_group(cases: Sequence[SweepCase]) -> List[Trajectory]:
    """Run one compatible group as a single batched integration.

    Cases sharing one network object run on it directly; same-topology
    cases with different networks are stacked into a
    :class:`NetworkFamily` so heterogeneous latency coefficients integrate
    in the same pass.  Groups with ``method="agents"`` run on the batched
    finite-population engine instead of the fluid integrator.
    """
    first = cases[0]
    if first.column_generation:
        return _run_batch_cg_group(cases)
    target, policies = _group_target_and_policies(cases)
    # Passed as FlowVectors (not a raw array) so the engine validates each
    # row's flow against its own network or family member.
    initial_flows = [
        case.initial_flow if case.initial_flow is not None else FlowVector.uniform(case.network)
        for case in cases
    ]
    if first.method == "agents":
        agent_config = BatchAgentConfig(
            num_agents=np.array(
                [_case_num_agents(case) for case in cases], dtype=np.int64
            ),
            update_periods=np.array([case.update_period for case in cases], dtype=float),
            horizons=np.array([case.horizon for case in cases], dtype=float),
            seeds=np.array([case.seed for case in cases], dtype=np.int64),
            stale=first.stale,
        )
        agent_result = BatchAgentSimulator(target, policies, agent_config).run(
            initial_flows, stop_when=_group_stop_when(cases)
        )
        return [agent_result.trajectory(row) for row in range(len(cases))]
    config = BatchConfig(
        update_periods=np.array([case.update_period for case in cases], dtype=float),
        horizons=np.array([case.horizon for case in cases], dtype=float),
        steps_per_phase=np.array([case.steps_per_phase for case in cases], dtype=int),
        method=first.method,
        stale=first.stale,
    )
    scenarios = [case.scenario for case in cases]
    result = BatchSimulator(
        target,
        policies,
        config,
        scenarios=scenarios if any(s is not None for s in scenarios) else None,
    ).run(initial_flows, stop_when=_group_stop_when(cases))
    return [result.trajectory(row) for row in range(len(cases))]


# Workers build result rows in-process so only plain dicts cross the pipe;
# the row builder (often a closure, hence unpicklable) reaches them through
# the fork-inherited pool initializer.
_POOL_ROW_BUILDER: Optional[RowBuilder] = None


def _pool_initializer(row_builder: RowBuilder) -> None:
    global _POOL_ROW_BUILDER
    _POOL_ROW_BUILDER = row_builder


def _pool_worker(case: SweepCase) -> Rows:
    """Simulate one case and return its finished rows (never the trajectory)."""
    return _case_rows(case, _simulate_case(case), _POOL_ROW_BUILDER)


def _run_pool_rows(
    cases: Sequence[SweepCase], processes: int, row_builder: RowBuilder
) -> List[Rows]:
    """Build each case's rows on a worker pool, preserving order.

    Cases carrying a ``stop_when`` condition are simulated serially: stop
    conditions are closures and do not survive the pool's pickling of the
    case arguments (the batched backend is the fast path for them anyway).
    """
    stoppy = [i for i, case in enumerate(cases) if case.stop_when is not None]
    if stoppy:
        results: List[Optional[Rows]] = [None] * len(cases)
        for i in stoppy:
            results[i] = _case_rows(cases[i], _simulate_case(cases[i]), row_builder)
        plain = [i for i in range(len(cases)) if cases[i].stop_when is None]
        for i, rows in zip(
            plain, _run_pool_rows([cases[i] for i in plain], processes, row_builder)
        ):
            results[i] = rows
        return results  # type: ignore[return-value]
    if processes <= 1 or len(cases) <= 1:
        return [_case_rows(case, _simulate_case(case), row_builder) for case in cases]
    try:
        # Prefer fork (cheap, shares the loaded modules, and lets workers
        # inherit the row builder so they return plain rows).
        context = multiprocessing.get_context("fork")
    except ValueError:
        # Without fork the workers cannot inherit an arbitrary (possibly
        # closure) row builder; ship trajectories and build rows here.
        context = multiprocessing.get_context()
        with context.Pool(min(processes, len(cases))) as pool:
            trajectories = pool.map(_simulate_case, cases)
        return [
            _case_rows(case, trajectory, row_builder)
            for case, trajectory in zip(cases, trajectories)
        ]
    with context.Pool(
        min(processes, len(cases)),
        initializer=_pool_initializer,
        initargs=(row_builder,),
    ) as pool:
        return pool.map(_pool_worker, cases)


def _dispatch_rows(
    cases: List[SweepCase],
    row_builder: RowBuilder,
    engine: str,
    processes: Optional[int],
) -> List[Rows]:
    """Return one list of result rows per case, in case order."""
    tele = get_telemetry()
    if engine == "serial":
        return [_serial_case_rows(case, row_builder) for case in cases]
    if engine == "processes":
        pool_size = processes or os.cpu_count() or 1
        if pool_size > 1 and len(cases) > 1:
            # Fork-based workers keep their telemetry in the child process;
            # the parent reports only the dispatch itself.
            tele.event("pool_dispatched", cases=len(cases), processes=pool_size)
        results = _run_pool_rows(cases, pool_size, row_builder)
        tele.counter("runner.cases_completed").add(len(results))
        return results
    if engine not in ("auto", "batch"):
        raise ValueError(
            f"unknown engine {engine!r}; use 'auto', 'batch', 'processes' or 'serial'"
        )

    groups: Dict[GroupKey, List[int]] = {}
    for index, case in enumerate(cases):
        groups.setdefault(group_key(case), []).append(index)

    rows_per_case: List[Optional[Rows]] = [None] * len(cases)
    leftovers: List[int] = []
    for key, indices in groups.items():
        if key[3]:
            # Serial-only cases: CG cases whose configuration the batched CG
            # driver rejects (initial flow, stop condition, agents method)
            # run scalar so the scalar driver's informative errors surface,
            # and scenario-carrying agent cases need the scalar agent engine.
            leftovers.extend(indices)
        elif engine == "batch" or len(indices) > 1:
            tele.event(
                "batch_fused",
                cases=len(indices),
                method=key[2],
                stale=key[1],
            )
            tele.counter("runner.batch_groups").add()
            tele.histogram("runner.batch_group_size").observe(len(indices))
            for index, trajectory in zip(
                indices, _run_batch_group([cases[i] for i in indices])
            ):
                rows_per_case[index] = _case_rows(cases[index], trajectory, row_builder)
                tele.event("case_finished", **_case_event_attrs(cases[index]))
                tele.counter("runner.cases_completed").add()
        else:
            leftovers.extend(indices)
    if leftovers:
        leftovers.sort()
        if processes and processes > 1:
            # Fork-based workers keep their telemetry in the child process;
            # the parent reports only the dispatch itself.
            tele.event("pool_dispatched", cases=len(leftovers), processes=processes)
            results = _run_pool_rows([cases[i] for i in leftovers], processes, row_builder)
            for index, rows in zip(leftovers, results):
                rows_per_case[index] = rows
                tele.counter("runner.cases_completed").add()
        else:
            for index in leftovers:
                rows_per_case[index] = _serial_case_rows(cases[index], row_builder)
    return rows_per_case  # type: ignore[return-value]


def run_cases(
    cases: List[SweepCase],
    row_builder: RowBuilder,
    engine: str = "auto",
    processes: Optional[int] = None,
) -> SweepResult:
    """Execute cases on the selected backend and collect the result rows.

    ``row_builder(trajectory)`` may return a single mapping or a list of
    mappings (e.g. one row per evaluation target); every returned row is
    merged over the case's echoed ``parameters``.
    """
    cases = list(cases)
    tele = get_telemetry()
    with tele.span("sweep", cases=len(cases), engine=engine) as sweep_span:
        if tele.enabled and cases:
            # The sweep's ledger fingerprint keys on which instances it ran.
            names = sorted(
                {
                    str(case.network.graph.graph.get("name") or "-")
                    for case in cases
                }
            )
            sweep_span.annotate(instance=",".join(names))
        result = SweepResult()
        for rows in _dispatch_rows(cases, row_builder, engine, processes):
            for row in rows:
                result.append(row)
    return result


def run_plan(
    plan: ExperimentPlan,
    row_builder: RowBuilder,
    engine: str = "auto",
    processes: Optional[int] = None,
    csv_path=None,
    jsonl_path=None,
    include_seed: bool = False,
) -> SweepResult:
    """Run a whole experiment plan and optionally persist the result rows.

    ``include_seed`` adds each case's deterministic seed as a ``seed`` column
    (rows produced by a multi-row builder share their case's seed).
    """
    if include_seed:
        cases = [
            dataclasses.replace(case, parameters={**case.parameters, "seed": seed})
            for case, seed in zip(plan.cases, plan.seeds)
        ]
    else:
        cases = plan.cases
    result = run_cases(cases, row_builder, engine=engine, processes=processes)
    if csv_path is not None:
        result.to_csv(csv_path)
    if jsonl_path is not None:
        result.to_jsonl(jsonl_path)
    return result
