"""Experiment plans and the parallel experiment runner.

Build an :class:`ExperimentPlan` from parameter axes, then dispatch it with
:func:`run_plan`: same-network case groups become one vectorized
:class:`~repro.batch.BatchSimulator` integration, heterogeneous cases can fan
out over a process pool, and every case carries a deterministic seed so
randomised ingredients reproduce exactly.  Results persist as CSV/JSONL via
:class:`~repro.analysis.sweeps.SweepResult`.
"""

from .plan import CaseBuilder, ExperimentPlan, case_seed
from .runner import group_key, run_cases, run_plan

__all__ = [
    "CaseBuilder",
    "ExperimentPlan",
    "case_seed",
    "group_key",
    "run_cases",
    "run_plan",
]
