"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from EXPERIMENTS.md: it runs the
relevant sweep, prints a table with the paper-predicted quantity next to the
measured one (captured in ``bench_output.txt``) and uses pytest-benchmark to
time the core simulation call so that performance regressions are visible.

Timing blocks go through :func:`repro.telemetry.bench.bench_timer`
(re-exported here so both pytest runs and ``python benchmarks/bench_x.py``
script runs share it): every timed block emits one machine-readable
``repro-bench/1`` record, appended to the JSONL file named by the
``REPRO_BENCH_RECORDS`` environment variable when set.  CI aggregates those
records into the engine x instance throughput matrix via
``repro report --bench``.
"""

from __future__ import annotations

import pytest

# Re-exported so benches use one timing schema in both pytest and script
# mode (`python benchmarks/bench_x.py` puts this directory on sys.path, so
# `from conftest import bench_timer` resolves there too).
from repro.telemetry.bench import (  # noqa: F401
    BENCH_SCHEMA,
    RECORDS_ENV,
    BenchTimer,
    bench_timer,
    clear_records,
    collected_records,
    emit_record,
)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): mark a benchmark with its EXPERIMENTS.md id"
    )


@pytest.fixture(scope="session")
def report_header():
    """Print a one-time header so the captured bench output is self-describing."""
    print()
    print("=" * 78)
    print("Benchmark harness: 'Adaptive routing with stale information' reproduction")
    print("Each section prints paper-predicted vs measured quantities for one")
    print("experiment (see DESIGN.md experiment index and EXPERIMENTS.md).")
    print("=" * 78)
    return True
