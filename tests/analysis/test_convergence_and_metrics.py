"""Unit tests for convergence counting and trajectory metrics."""

from __future__ import annotations

import pytest

from repro.analysis import (
    count_bad_phases,
    final_distance_to,
    final_equilibrium_violation,
    final_potential_gap,
    phase_potential_stats,
    potential_decrease_rate,
    potential_is_monotone,
    time_to_approximate_equilibrium,
    time_to_potential_gap,
    trajectory_summary_row,
)
from repro.core import replicator_policy, simulate, simulate_best_response, uniform_policy
from repro.instances import lopsided_flow, oscillation_initial_flow, two_link_network
from repro.solvers import optimal_potential


@pytest.fixture
def converging_trajectory(two_links_steep):
    policy = replicator_policy(two_links_steep)
    period = policy.safe_update_period(two_links_steep)
    return simulate(
        two_links_steep,
        policy,
        update_period=period,
        horizon=60.0,
        initial_flow=lopsided_flow(two_links_steep, 0.95),
    )


@pytest.fixture
def oscillating_trajectory():
    network = two_link_network(beta=4.0)
    return simulate_best_response(
        network,
        update_period=0.5,
        horizon=30.0,
        initial_flow=oscillation_initial_flow(network, 0.5),
    )


class TestBadPhaseCounting:
    def test_converging_run_has_finitely_many_bad_phases(self, converging_trajectory):
        summary = count_bad_phases(converging_trajectory, delta=0.1, epsilon=0.1)
        assert summary.bad_phases < summary.total_phases
        assert summary.last_bad_phase < summary.total_phases - 1

    def test_oscillating_run_is_bad_forever(self, oscillating_trajectory):
        summary = count_bad_phases(oscillating_trajectory, delta=0.1, epsilon=0.1)
        # The 2T-cycle keeps more than half the agents delta-unsatisfied.
        assert summary.bad_phases == summary.total_phases

    def test_weak_count_never_exceeds_strong_count(self, converging_trajectory):
        summary = count_bad_phases(converging_trajectory, delta=0.05, epsilon=0.2)
        assert summary.weak_bad_phases <= summary.bad_phases

    def test_invalid_arguments(self, converging_trajectory):
        with pytest.raises(ValueError):
            count_bad_phases(converging_trajectory, delta=0.0, epsilon=0.1)
        with pytest.raises(ValueError):
            count_bad_phases(converging_trajectory, delta=0.1, epsilon=0.0)


class TestTimesAndMonotonicity:
    def test_time_to_potential_gap(self, converging_trajectory, two_links_steep):
        optimum = optimal_potential(two_links_steep)
        first = time_to_potential_gap(converging_trajectory, optimum, gap=0.05)
        assert first is not None
        later = time_to_potential_gap(converging_trajectory, optimum, gap=0.005)
        assert later is None or later >= first

    def test_time_to_approximate_equilibrium(self, converging_trajectory):
        t_strong = time_to_approximate_equilibrium(converging_trajectory, 0.1, 0.1)
        t_weak = time_to_approximate_equilibrium(converging_trajectory, 0.1, 0.1, weak=True)
        assert t_strong is not None
        assert t_weak is not None
        assert t_weak <= t_strong

    def test_oscillating_run_never_reaches_equilibrium(self, oscillating_trajectory):
        assert time_to_approximate_equilibrium(oscillating_trajectory, 0.1, 0.1) is None

    def test_monotonicity_flags(self, converging_trajectory):
        assert potential_is_monotone(converging_trajectory)
        # Best response from a lopsided start overshoots the equilibrium, so
        # the potential measured at phase ends goes back up at some point.
        network = two_link_network(beta=4.0)
        overshooting = simulate_best_response(
            network, update_period=0.5, horizon=10.0,
            initial_flow=lopsided_flow(network, 0.9),
        )
        assert not potential_is_monotone(overshooting)

    def test_final_distance(self, converging_trajectory):
        assert final_distance_to(converging_trajectory, [0.5, 0.5]) < 0.05


class TestMetrics:
    def test_lemma4_holds_on_converging_run(self, converging_trajectory):
        stats = phase_potential_stats(converging_trajectory)
        assert stats.phases == len(converging_trajectory.phases)
        assert stats.max_identity_residual < 1e-8
        assert stats.lemma4_violations == 0
        assert stats.max_potential_increase == pytest.approx(0.0, abs=1e-10)

    def test_final_gap_and_violation_small(self, converging_trajectory, two_links_steep):
        optimum = optimal_potential(two_links_steep)
        assert final_potential_gap(converging_trajectory, optimum) < 1e-2
        assert final_equilibrium_violation(converging_trajectory) < 0.05

    def test_potential_decrease_rate_sign(self, converging_trajectory, oscillating_trajectory):
        assert potential_decrease_rate(converging_trajectory) > 0.0
        assert abs(potential_decrease_rate(oscillating_trajectory)) < 1e-6

    def test_summary_row_keys(self, converging_trajectory, two_links_steep):
        row = trajectory_summary_row(converging_trajectory, optimal_potential(two_links_steep))
        assert {"policy", "T", "phases", "final_gap", "final_violation", "avg_latency"} <= set(row)
