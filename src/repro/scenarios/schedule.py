"""Time profiles for nonstationary scenarios: demand and coefficient schedules.

A :class:`Schedule` maps simulation time to a non-negative multiplier.  The
scenario layer samples schedules at *phase boundaries* (the instants at which
new information can reach the system in the paper's model), so a schedule
only needs to answer two questions:

* ``at(t)`` / ``at_batch(times)`` -- the multiplier at one time or at a whole
  array of per-row times (the batched engine evaluates all ensemble rows in
  one call), and
* ``breakpoints(start, end)`` -- the instants inside ``[start, end)`` where
  the profile changes non-smoothly.  The equilibrium-tracking toolkit
  (:mod:`repro.scenarios.tracking`) solves one ground-truth equilibrium per
  breakpoint interval, and the column-generation driver forces a bulletin
  refresh at every breakpoint so route discovery reacts to the change.

``at`` delegates to ``at_batch`` on a length-one array, so the scalar and the
batched engines see the exact same floating-point values -- part of the
bit-equivalence contract between them.

:class:`DemandSchedule` and :class:`CoefficientSchedule` attach a profile to
its physical meaning: rescaling the total demand rate (every edge sees the
stretched flow ``m(t) * x``) or rescaling latency coefficients (selected
edges return ``g(t) * l(x)``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np


class Schedule(ABC):
    """A non-negative multiplier profile over simulation time."""

    @abstractmethod
    def at_batch(self, times: np.ndarray) -> np.ndarray:
        """Return the multiplier at every time of a ``(R,)`` array."""

    @abstractmethod
    def breakpoints(self, start: float, end: float) -> List[float]:
        """Return the non-smooth change instants inside ``[start, end)``.

        ``start`` itself is never included (the caller already evaluates
        there); the list is strictly increasing.
        """

    def at(self, t: float) -> float:
        """Return the multiplier at one time (same arithmetic as the batch)."""
        return float(self.at_batch(np.array([float(t)]))[0])

    def is_constant(self) -> bool:
        """True if the profile never changes (the stationary special case)."""
        return False


class ConstantSchedule(Schedule):
    """The stationary profile ``m(t) = value``."""

    def __init__(self, value: float = 1.0):
        if value < 0:
            raise ValueError("schedule values must be non-negative")
        self.value = float(value)

    def at_batch(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.shape(times), self.value, dtype=float)

    def breakpoints(self, start: float, end: float) -> List[float]:
        return []

    def is_constant(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"ConstantSchedule({self.value})"


class PiecewiseConstantSchedule(Schedule):
    """A step profile: ``values[i]`` on ``[times[i-1], times[i])``.

    ``times`` are the strictly increasing step instants and ``values`` has
    one more entry than ``times`` (the leading value applies before the first
    step).  This is the workhorse of the equivalence tests: applying a
    piecewise-constant schedule through the scenario layer is bit-identical
    to manually restarting a stationary simulation with rescaled latencies at
    every step instant.
    """

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        self.times = np.asarray(list(times), dtype=float)
        self.values = np.asarray(list(values), dtype=float)
        if len(self.values) != len(self.times) + 1:
            raise ValueError(
                f"{len(self.times)} step instants need {len(self.times) + 1} "
                f"values, got {len(self.values)}"
            )
        if len(self.times) and np.any(np.diff(self.times) <= 0):
            raise ValueError("step instants must be strictly increasing")
        if np.any(self.values < 0):
            raise ValueError("schedule values must be non-negative")

    def at_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        return self.values[np.searchsorted(self.times, times, side="right")]

    def breakpoints(self, start: float, end: float) -> List[float]:
        return [float(t) for t in self.times if start < t < end]

    def is_constant(self) -> bool:
        return len(self.times) == 0 or bool(np.all(self.values == self.values[0]))

    def __repr__(self) -> str:
        return f"PiecewiseConstantSchedule(times={self.times.tolist()}, values={self.values.tolist()})"


class PiecewiseLinearSchedule(Schedule):
    """A continuous ramp profile interpolating ``(times[i], values[i])``.

    Clamped outside the knot range (the first/last value extends).  Between
    knots the profile changes every phase, so there are no discontinuity
    breakpoints beyond the knots themselves (reported for the tracking
    toolkit, which refines its interval grid with ``sample_every``).
    """

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        self.times = np.asarray(list(times), dtype=float)
        self.values = np.asarray(list(values), dtype=float)
        if len(self.times) < 2 or len(self.times) != len(self.values):
            raise ValueError("need matching times/values with at least two knots")
        if np.any(np.diff(self.times) <= 0):
            raise ValueError("knot times must be strictly increasing")
        if np.any(self.values < 0):
            raise ValueError("schedule values must be non-negative")

    def at_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        return np.interp(times, self.times, self.values)

    def breakpoints(self, start: float, end: float) -> List[float]:
        return [float(t) for t in self.times if start < t < end]

    def is_constant(self) -> bool:
        return bool(np.all(self.values == self.values[0]))

    def __repr__(self) -> str:
        return f"PiecewiseLinearSchedule(times={self.times.tolist()}, values={self.values.tolist()})"


class PeriodicSchedule(Schedule):
    """A profile repeating every ``period`` time units (daily peak cycles)."""

    def __init__(self, profile: Schedule, period: float):
        if period <= 0:
            raise ValueError("period must be positive")
        self.profile = profile
        self.period = float(period)

    def at_batch(self, times: np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        return self.profile.at_batch(np.mod(times, self.period))

    def breakpoints(self, start: float, end: float) -> List[float]:
        if end <= start:
            return []
        inner = self.profile.breakpoints(0.0, self.period)
        first_cycle = int(np.floor(start / self.period))
        last_cycle = int(np.floor(end / self.period))
        points = []
        for cycle in range(first_cycle, last_cycle + 1):
            base = cycle * self.period
            for t in [0.0] + inner:
                instant = base + t
                if start < instant < end:
                    points.append(float(instant))
        return sorted(set(points))

    def is_constant(self) -> bool:
        return self.profile.is_constant()

    def __repr__(self) -> str:
        return f"PeriodicSchedule({self.profile!r}, period={self.period})"


def peak_schedule(
    base: float,
    peak: float,
    start: float,
    end: float,
    ramp: float,
) -> PiecewiseLinearSchedule:
    """Return a trapezoidal peak profile (the morning-rush shape).

    The multiplier sits at ``base``, ramps linearly to ``peak`` over ``ramp``
    time units starting at ``start``, holds until ``end``, and ramps back
    down over another ``ramp``.
    """
    if end <= start:
        raise ValueError("peak window must have positive length")
    if ramp <= 0:
        raise ValueError("ramp must be positive")
    return PiecewiseLinearSchedule(
        times=[start, start + ramp, end, end + ramp],
        values=[base, peak, peak, base],
    )


class DemandSchedule:
    """A time-varying total demand rate, as a multiplier of the unit demand.

    The paper normalises total demand to one and defines latencies on flow
    *shares*; a demand multiplier ``m(t)`` therefore acts by stretching every
    latency argument -- a share ``x`` experiences the latency of the absolute
    flow ``m(t) * x``.  Multipliers must be strictly positive (a zero-demand
    interval has no routing problem to track).
    """

    def __init__(self, schedule: Schedule):
        self.schedule = schedule

    def multiplier_at(self, t: float) -> float:
        value = self.schedule.at(t)
        if value <= 0:
            raise ValueError(f"demand multiplier must stay positive, got {value} at t={t}")
        return value

    def breakpoints(self, start: float, end: float) -> List[float]:
        return self.schedule.breakpoints(start, end)

    def __repr__(self) -> str:
        return f"DemandSchedule({self.schedule!r})"


class CoefficientSchedule:
    """A time-varying latency-coefficient multiplier on selected edges.

    ``edges`` lists the affected edge triples ``(u, v, key)``; ``None`` means
    every edge of the instance (a network-wide latency rescale, e.g. weather
    slowing all links down).  The multiplier scales latency *values*:
    ``l_e(x) -> g(t) * l_e(x)``.
    """

    def __init__(self, schedule: Schedule, edges: Optional[Sequence[Tuple]] = None):
        self.schedule = schedule
        self.edges = None if edges is None else [tuple(edge) for edge in edges]

    def gain_at(self, t: float) -> float:
        return self.schedule.at(t)

    def breakpoints(self, start: float, end: float) -> List[float]:
        return self.schedule.breakpoints(start, end)

    def __repr__(self) -> str:
        scope = "all edges" if self.edges is None else f"{len(self.edges)} edges"
        return f"CoefficientSchedule({self.schedule!r}, {scope})"
