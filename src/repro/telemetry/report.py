"""Render a recorded trace into per-engine / per-phase summary tables.

``repro report out.jsonl`` loads a JSONL trace written by
:meth:`~repro.telemetry.runtime.Telemetry.write_trace` and prints:

* **engine runs** -- one row per ``engine_run`` root span: engine label,
  wall seconds, phases integrated under it, phase throughput;
* **span breakdown** -- per (engine, span name) aggregates: count, total
  and mean duration, share of the engine's wall time;
* **counters / gauges / histograms** -- the metrics snapshot;
* **events** -- counts per event name (case progress, batch fusion,
  bulletin refreshes).

Everything renders through :mod:`repro.analysis.reporting`, so the report
matches the benchmark harness's table style.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.reporting import render_table
from .profiler import profile_rows

__all__ = [
    "TRACE_SCHEMA",
    "TraceFormatError",
    "load_trace",
    "engine_run_rows",
    "span_breakdown_rows",
    "metrics_rows",
    "event_rows",
    "render_trace_report",
]

TRACE_SCHEMA = "repro-trace/1"

Record = Dict[str, Any]


class TraceFormatError(ValueError):
    """A trace file exists but cannot be understood as a repro trace."""


def load_trace(path) -> List[Record]:
    """Load a JSONL trace file into a list of record dicts.

    Raises :class:`TraceFormatError` (with the offending line number) on an
    empty file, malformed JSON, or a ``meta`` header declaring a different
    trace schema version -- the CLI turns these into one-line errors.
    """
    records: List[Record] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    f"{path}: line {number} is not valid JSON ({error.msg})"
                ) from error
            if not isinstance(record, dict):
                raise TraceFormatError(
                    f"{path}: line {number} is not a JSON object"
                )
            records.append(record)
    if not records:
        raise TraceFormatError(f"{path}: empty trace file")
    first = records[0]
    if first.get("kind") == "meta":
        schema = first.get("schema")
        if schema != TRACE_SCHEMA:
            raise TraceFormatError(
                f"{path}: trace schema {schema!r} is not supported "
                f"(expected {TRACE_SCHEMA!r})"
            )
    return records


def _spans(records: Sequence[Record]) -> List[Record]:
    return [r for r in records if r.get("kind") == "span"]


def _engine_of(record: Record, by_id: Dict[int, Record]) -> Optional[str]:
    """Resolve the engine label of a span via its nearest engine_run ancestor."""
    current: Optional[Record] = record
    while current is not None:
        if current.get("name") == "engine_run":
            return str(current.get("attrs", {}).get("engine", "?"))
        parent = current.get("parent")
        current = by_id.get(parent) if parent is not None else None
    return None


def engine_run_rows(records: Sequence[Record]) -> List[Dict[str, object]]:
    """One row per ``engine_run`` span: wall time and phase throughput."""
    spans = _spans(records)
    by_id = {r["id"]: r for r in spans}
    rows: List[Dict[str, object]] = []
    for record in spans:
        if record.get("name") != "engine_run":
            continue
        attrs = record.get("attrs", {})
        phases = sum(
            1
            for other in spans
            if other.get("name") == "phase"
            and _ancestor_ids(other, by_id).count(record["id"]) > 0
        )
        duration = float(record.get("dur", 0.0))
        row: Dict[str, object] = {
            "engine": attrs.get("engine", "?"),
            "seconds": duration,
            "phases": phases,
            "phases/sec": phases / duration if duration > 0 and phases else float("nan"),
        }
        for key in ("instance", "rows", "paths", "method", "stale", "agents", "edges", "seed"):
            if key in attrs:
                row[key] = attrs[key]
        rows.append(row)
    return rows


def _ancestor_ids(record: Record, by_id: Dict[int, Record]) -> List[int]:
    ids: List[int] = []
    parent = record.get("parent")
    while parent is not None:
        ids.append(parent)
        parent_record = by_id.get(parent)
        parent = parent_record.get("parent") if parent_record is not None else None
    return ids


def span_breakdown_rows(records: Sequence[Record]) -> List[Dict[str, object]]:
    """Aggregate spans by (engine, name): count, total/mean time, share."""
    spans = _spans(records)
    by_id = {r["id"]: r for r in spans}
    engine_totals: Dict[Optional[str], float] = {}
    for record in spans:
        if record.get("name") == "engine_run":
            engine = str(record.get("attrs", {}).get("engine", "?"))
            engine_totals[engine] = engine_totals.get(engine, 0.0) + float(
                record.get("dur", 0.0)
            )
    grouped: Dict[tuple, List[float]] = {}
    for record in spans:
        if record.get("name") == "engine_run":
            continue
        engine = _engine_of(record, by_id)
        grouped.setdefault((engine, record["name"]), []).append(
            float(record.get("dur", 0.0))
        )
    rows: List[Dict[str, object]] = []
    for (engine, name), durations in sorted(
        grouped.items(), key=lambda item: (str(item[0][0]), -sum(item[1]))
    ):
        total = sum(durations)
        wall = engine_totals.get(engine, 0.0)
        rows.append(
            {
                "engine": engine if engine is not None else "-",
                "span": name,
                "count": len(durations),
                "total_s": total,
                "mean_ms": 1000.0 * total / len(durations),
                "share": total / wall if wall > 0 else float("nan"),
            }
        )
    return rows


def metrics_rows(records: Sequence[Record]) -> List[Dict[str, object]]:
    """Flatten the trace's metrics snapshot into table rows."""
    rows: List[Dict[str, object]] = []
    for record in records:
        if record.get("kind") != "metrics":
            continue
        for name in sorted(record.get("counters", {})):
            rows.append(
                {"metric": name, "type": "counter", "value": record["counters"][name]}
            )
        for name in sorted(record.get("gauges", {})):
            rows.append(
                {"metric": name, "type": "gauge", "value": record["gauges"][name]}
            )
        for name in sorted(record.get("histograms", {})):
            histogram = record["histograms"][name]
            count = histogram.get("count", 0)
            mean = histogram.get("total", 0.0) / count if count else float("nan")
            rows.append(
                {
                    "metric": name,
                    "type": "histogram",
                    "value": mean,
                    "count": count,
                    "min": histogram.get("min"),
                    "max": histogram.get("max"),
                    "p50": histogram.get("p50"),
                    "p95": histogram.get("p95"),
                }
            )
        for name in sorted(record.get("series", {})):
            points = record["series"][name]
            rows.append(
                {
                    "metric": name,
                    "type": "series",
                    "value": points[-1][1] if points else float("nan"),
                    "count": len(points),
                }
            )
    return rows


def event_rows(records: Sequence[Record]) -> List[Dict[str, object]]:
    """Count events per name (case progress, fusion decisions, refreshes)."""
    counts: Dict[str, int] = {}
    for record in records:
        if record.get("kind") == "event":
            counts[record["name"]] = counts.get(record["name"], 0) + 1
    return [
        {"event": name, "count": counts[name]} for name in sorted(counts)
    ]


def render_trace_report(records: Sequence[Record], title: str = "trace report") -> str:
    """Render the full report (engine runs, breakdown, metrics, events)."""
    sections: List[str] = []
    engines = engine_run_rows(records)
    if engines:
        sections.append(render_table(engines, title=f"{title}: engine runs"))
    breakdown = span_breakdown_rows(records)
    if breakdown:
        sections.append(render_table(breakdown, title="span breakdown (per engine)"))
    metrics = metrics_rows(records)
    if metrics:
        sections.append(render_table(metrics, title="metrics"))
    events = event_rows(records)
    if events:
        sections.append(render_table(events, title="events"))
    profile = profile_rows(records)
    if profile:
        sections.append(
            render_table(profile, title="sampling profiler (top self-time locations)")
        )
    if not sections:
        sections.append("(empty trace)")
    return "\n\n".join(sections)
