"""Numerical integration of the fluid-limit dynamics.

The paper studies the dynamics in the fluid limit: the population shares
evolve according to the ordinary differential equation (Eq. 1)

    d f_P / dt = sum_Q (rho_QP(f) - rho_PQ(f)),

and, under stale information, its bulletin-board variant (Eq. 3) in which the
sampling/migration probabilities are evaluated at the posted state ``f(t_hat)``.
Within a phase the right-hand side is Lipschitz continuous, so the solution
exists and is unique (Picard--Lindelöf); across phase boundaries it may jump,
which is why the integrator never steps over a boundary.

The integrators here are deliberately simple, explicit schemes (Euler and the
classical Runge--Kutta 4) operating on the path-flow vector.  The growth
rates sum to zero within every commodity by construction, so demand
feasibility is preserved exactly; tiny negative flows from discretisation are
clipped by the simulator via ``FlowVector.projected``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

RateField = Callable[[float, np.ndarray], np.ndarray]


def euler_step(field: RateField, time: float, state: np.ndarray, step: float) -> np.ndarray:
    """Advance the state one explicit-Euler step of size ``step``."""
    return state + step * field(time, state)


def rk4_step(field: RateField, time: float, state: np.ndarray, step: float) -> np.ndarray:
    """Advance the state one classical Runge--Kutta 4 step of size ``step``."""
    k1 = field(time, state)
    k2 = field(time + 0.5 * step, state + 0.5 * step * k1)
    k3 = field(time + 0.5 * step, state + 0.5 * step * k2)
    k4 = field(time + step, state + step * k3)
    return state + (step / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


_STEPPERS = {
    "euler": euler_step,
    "rk4": rk4_step,
}


# Batched steppers ----------------------------------------------------------
#
# The batched engine of :mod:`repro.batch` integrates a whole ensemble of
# independent replicas as one (B, P) state array.  Because every row may have
# its own bulletin-board period, the step size is a per-row column ``(B, 1)``
# (a plain scalar also works); the arithmetic is exactly that of the scalar
# steppers applied row by row, so a batched run reproduces the scalar
# trajectories to the last bit.

def euler_step_batch(field: RateField, time, state: np.ndarray, step) -> np.ndarray:
    """Advance a ``(B, P)`` batch one explicit-Euler step of per-row size ``step``."""
    return state + step * field(time, state)


def rk4_step_batch(field: RateField, time, state: np.ndarray, step) -> np.ndarray:
    """Advance a ``(B, P)`` batch one classical RK4 step of per-row size ``step``."""
    k1 = field(time, state)
    k2 = field(time + 0.5 * step, state + 0.5 * step * k1)
    k3 = field(time + 0.5 * step, state + 0.5 * step * k2)
    k4 = field(time + step, state + step * k3)
    return state + (step / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)


_BATCH_STEPPERS = {
    "euler": euler_step_batch,
    "rk4": rk4_step_batch,
}


def batch_stepper_for(method: str):
    """Return the batched stepper for ``method`` ('euler' or 'rk4')."""
    try:
        return _BATCH_STEPPERS[method]
    except KeyError as error:
        raise ValueError(f"unknown integration method {method!r}; use 'euler' or 'rk4'") from error


def num_integration_steps(duration: float, max_step: float) -> int:
    """Return the number of equal sub-steps ``integrate`` uses for one interval.

    Exposed so the batched engine can mirror the scalar step count exactly
    (floating-point effects can make ``ceil(T / (T / n))`` exceed ``n``).
    """
    return max(1, int(np.ceil(duration / max_step)))


def integrate(
    field: RateField,
    state: np.ndarray,
    start_time: float,
    end_time: float,
    max_step: float,
    method: str = "rk4",
) -> np.ndarray:
    """Integrate ``field`` from ``start_time`` to ``end_time``.

    The interval is divided into equal steps no longer than ``max_step``;
    the final sub-step lands exactly on ``end_time`` so phase boundaries are
    honoured to machine precision.
    """
    if end_time < start_time:
        raise ValueError("end_time must not precede start_time")
    if max_step <= 0:
        raise ValueError("max_step must be positive")
    try:
        stepper = _STEPPERS[method]
    except KeyError as error:
        raise ValueError(f"unknown integration method {method!r}; use 'euler' or 'rk4'") from error
    duration = end_time - start_time
    if duration == 0:
        return state.copy()
    num_steps = num_integration_steps(duration, max_step)
    step = duration / num_steps
    time = start_time
    current = state.copy()
    for _ in range(num_steps):
        current = stepper(field, time, current, step)
        time += step
    return current


def integration_step_for(update_period: float, steps_per_phase: int = 50) -> float:
    """Return a step size resolving each bulletin-board phase into ``steps_per_phase`` steps."""
    if update_period <= 0 or steps_per_phase <= 0:
        raise ValueError("update period and steps per phase must be positive")
    return update_period / steps_per_phase
