"""The edge--path incidence matrix as a first-class evaluation object.

Every path-level quantity of the Wardrop model factors through the 0/1
incidence matrix ``A`` with ``A[e, p] = 1`` iff edge ``e`` lies on path
``p``: edge flows are ``A @ f``, path latencies are ``A.T @ l`` and the
batched engines apply the same two products row by row.  On the paper's toy
instances a dense ``A`` is perfectly fine, but on road networks with
hundreds of OD pairs the matrix is overwhelmingly sparse (a path touches a
handful of the edges), so :class:`SparseIncidence` stores both orientations
in CSR form and evaluates in ``O(nnz)``.

Both backends expose the same four products.  The dense backend performs
*exactly* the expressions the network historically inlined (``A @ x``,
``x @ A.T``, ``A.T @ v``, ``v @ A``), so existing instances keep their
bit-for-bit batch/scalar equivalence; the sparse backend accumulates each
row's nonzeros in one fixed index order for the scalar *and* the batched
product, so the two sparse paths also agree bit for bit with each other.

``scipy`` is an optional dependency: :func:`build_incidence` falls back to
the dense backend when it is missing, so nothing in the library hard-requires
it (``mode="sparse"`` raises a clear error instead).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

try:  # pragma: no cover - exercised implicitly on import
    from scipy import sparse as _sparse

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - scipy is present in CI
    _sparse = None
    _HAVE_SCIPY = False

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..wardrop.paths import EdgeKey, PathSet

# Auto mode switches to the sparse backend once the dense matrix would hold
# this many entries; small instances keep the historical dense arithmetic.
AUTO_SPARSE_THRESHOLD = 200_000

# CSR is the default tier at road-network sizes: auto mode also goes sparse
# once the network has this many edges, regardless of the current path count
# (column generation starts with few paths and grows -- picking the backend
# from the initial dense size would start road networks on the dense tier and
# re-tier them mid-run).  Matches the oracle's scipy-backend threshold.
AUTO_SPARSE_MIN_EDGES = 64


def have_scipy() -> bool:
    """Return ``True`` if the sparse backend is available."""
    return _HAVE_SCIPY


class EdgeIncidence:
    """Common interface of the dense and sparse incidence backends.

    ``shape`` is ``(num_edges, num_paths)``.  The four products are the only
    incidence arithmetic the library performs:

    * :meth:`edge_flows` / :meth:`edge_flows_batch` -- ``A @ f`` on a path
      flow vector ``(P,)`` or batch ``(B, P)``,
    * :meth:`path_totals` / :meth:`path_totals_batch` -- ``A.T @ v`` on an
      edge-value vector ``(E,)`` or batch ``(B, E)`` (posted latencies,
      gradient terms ...).
    """

    shape: tuple

    @property
    def num_edges(self) -> int:
        return self.shape[0]

    @property
    def num_paths(self) -> int:
        return self.shape[1]

    def edge_flows(self, path_flows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def edge_flows_batch(self, path_flows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def path_totals(self, edge_values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def path_totals_batch(self, edge_values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def dense(self) -> np.ndarray:
        """Return (and cache) the dense ``(E, P)`` matrix."""
        raise NotImplementedError

    @property
    def nnz(self) -> int:
        """Number of (edge, path) memberships."""
        raise NotImplementedError


class DenseIncidence(EdgeIncidence):
    """The historical dense backend: plain BLAS products on a 0/1 array.

    Batched inputs are evaluated as one matrix-vector product per row rather
    than a single GEMM: the GEMM kernel may accumulate in a different order
    than the scalar GEMV and land one ulp away, which would break the
    row-wise bit-identity contract of the batched engines.  The dense tier
    only serves small networks (see :data:`AUTO_SPARSE_MIN_EDGES`), so the
    per-row loop costs nothing measurable.
    """

    def __init__(self, matrix: np.ndarray):
        self._matrix = np.asarray(matrix, dtype=float)
        self.shape = self._matrix.shape
        self._dense_view: Optional[np.ndarray] = None

    def edge_flows(self, path_flows: np.ndarray) -> np.ndarray:
        return self._matrix @ np.asarray(path_flows, dtype=float)

    def edge_flows_batch(self, path_flows: np.ndarray) -> np.ndarray:
        flows = np.asarray(path_flows, dtype=float)
        out = np.empty((flows.shape[0], self.shape[0]))
        for row in range(flows.shape[0]):
            out[row] = self._matrix @ flows[row]
        return out

    def path_totals(self, edge_values: np.ndarray) -> np.ndarray:
        return self._matrix.T @ np.asarray(edge_values, dtype=float)

    def path_totals_batch(self, edge_values: np.ndarray) -> np.ndarray:
        values = np.asarray(edge_values, dtype=float)
        out = np.empty((values.shape[0], self.shape[1]))
        for row in range(values.shape[0]):
            out[row] = self._matrix.T @ values[row]
        return out

    def dense(self) -> np.ndarray:
        # A read-only view: handing out the internal matrix itself would let
        # a caller's in-place edit corrupt every later product.
        if self._dense_view is None:
            view = self._matrix.view()
            view.setflags(write=False)
            self._dense_view = view
        return self._dense_view

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._matrix))

    def __repr__(self) -> str:
        return f"DenseIncidence(edges={self.shape[0]}, paths={self.shape[1]})"


class SparseIncidence(EdgeIncidence):
    """CSR incidence in both orientations, ``O(nnz)`` per product.

    The edge-major CSR drives the ``A @ f`` products and the path-major CSR
    the ``A.T @ v`` products; storing both avoids the implicit CSR->CSC
    transpose conversion scipy would otherwise perform per call.  Batched
    inputs are evaluated as ``(M @ X.T).T`` so each output row accumulates
    the same nonzeros in the same order as the scalar product -- the sparse
    scalar and batched paths therefore agree bit for bit.
    """

    def __init__(self, membership_rows: Sequence[np.ndarray], num_paths: int):
        if not _HAVE_SCIPY:
            raise ImportError(
                "SparseIncidence requires scipy; install it or use mode='dense'"
            )
        indptr = np.zeros(len(membership_rows) + 1, dtype=np.int64)
        counts = [len(indices) for indices in membership_rows]
        np.cumsum(counts, out=indptr[1:])
        indices = (
            np.concatenate([np.asarray(row, dtype=np.int64) for row in membership_rows])
            if membership_rows and indptr[-1] > 0
            else np.zeros(0, dtype=np.int64)
        )
        data = np.ones(len(indices), dtype=float)
        self.shape = (len(membership_rows), int(num_paths))
        self._by_edge = _sparse.csr_matrix((data, indices, indptr), shape=self.shape)
        self._by_path = self._by_edge.T.tocsr()
        self._dense_cache: np.ndarray = None

    def edge_flows(self, path_flows: np.ndarray) -> np.ndarray:
        return self._by_edge @ np.asarray(path_flows, dtype=float)

    def edge_flows_batch(self, path_flows: np.ndarray) -> np.ndarray:
        flows = np.asarray(path_flows, dtype=float)
        return (self._by_edge @ flows.T).T

    def path_totals(self, edge_values: np.ndarray) -> np.ndarray:
        return self._by_path @ np.asarray(edge_values, dtype=float)

    def path_totals_batch(self, edge_values: np.ndarray) -> np.ndarray:
        values = np.asarray(edge_values, dtype=float)
        return (self._by_path @ values.T).T

    def dense(self) -> np.ndarray:
        # The cache is handed out read-only so callers cannot corrupt it (the
        # CSR operands themselves are never exposed).
        if self._dense_cache is None:
            cache = self._by_edge.toarray()
            cache.setflags(write=False)
            self._dense_cache = cache
        return self._dense_cache

    @property
    def nnz(self) -> int:
        return int(self._by_edge.nnz)

    def __repr__(self) -> str:
        return (
            f"SparseIncidence(edges={self.shape[0]}, paths={self.shape[1]}, "
            f"nnz={self.nnz})"
        )


def build_incidence(
    paths: "PathSet",
    edges: Sequence["EdgeKey"],
    mode: str = "auto",
) -> EdgeIncidence:
    """Build the incidence backend for a path set over a fixed edge order.

    ``mode`` is ``"dense"``, ``"sparse"`` or ``"auto"``.  Auto picks CSR
    whenever scipy is available and the instance is road-network sized --
    at least :data:`AUTO_SPARSE_MIN_EDGES` edges -- or the dense matrix
    would exceed :data:`AUTO_SPARSE_THRESHOLD` entries; the dense tier is
    the small-network special case.  Both backends consume the path set's
    shared :meth:`~repro.wardrop.paths.PathSet.edge_membership` map, so the
    membership scan over all paths runs exactly once.
    """
    if mode not in ("auto", "dense", "sparse"):
        raise ValueError(f"unknown incidence mode {mode!r}")
    num_paths = len(paths)
    membership: Dict = paths.edge_membership()
    rows: List[np.ndarray] = [
        membership.get(edge, np.zeros(0, dtype=np.int64)) for edge in edges
    ]
    if mode == "sparse" or (
        mode == "auto"
        and _HAVE_SCIPY
        and (
            len(edges) >= AUTO_SPARSE_MIN_EDGES
            or len(edges) * num_paths > AUTO_SPARSE_THRESHOLD
        )
    ):
        return SparseIncidence(rows, num_paths)
    matrix = np.zeros((len(edges), num_paths))
    for edge_index, indices in enumerate(rows):
        matrix[edge_index, indices] = 1.0
    return DenseIncidence(matrix)
