"""Rerouting policies: sampling rule + migration rule.

A :class:`ReroutingPolicy` bundles the two steps of Section 2.2 and exposes
the *migration-rate field*

    rho_PQ(f, f_posted) = f_P * sigma_PQ(f_posted) * mu(l_P(f_posted), l_Q(f_posted))

which drives the fluid-limit differential equation.  Note the asymmetry that
defines the stale-information model: the current flow ``f`` enters only
through the factor ``f_P`` (how many agents are available to leave ``P``),
while sampling and migration probabilities are evaluated on the *posted*
bulletin-board state.

Factory helpers build the named policies of the paper:

* :func:`replicator_policy` -- proportional sampling + linear migration
  (the replicator dynamics, Theorem 7),
* :func:`uniform_policy` -- uniform sampling + linear migration (Theorem 6),
* :func:`better_response_policy` -- the non-smooth negative example,
* :func:`smoothed_best_response_policy` -- softmax sampling + steep ramp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..wardrop.network import WardropNetwork
from .migration import (
    BetterResponseMigration,
    LinearMigration,
    MigrationRule,
    ScaledLinearMigration,
    SmoothedBetterResponseMigration,
)
from .sampling import ProportionalSampling, SamplingRule, SoftmaxSampling, UniformSampling
from .smoothness import safe_update_period_for_rule


@dataclass
class ReroutingPolicy:
    """A two-step (sample, then migrate) rerouting policy.

    Attributes
    ----------
    sampling:
        The sampling rule producing ``sigma_PQ``.
    migration:
        The migration rule producing ``mu(l_P, l_Q)``.
    name:
        Optional display name used in benchmark tables.
    """

    sampling: SamplingRule
    migration: MigrationRule
    name: str = ""

    def label(self) -> str:
        return self.name or f"{self.sampling.name}+{self.migration.name}"

    @property
    def smoothness(self) -> Optional[float]:
        """The smoothness parameter alpha of the migration rule (None if non-smooth)."""
        return self.migration.smoothness

    def safe_update_period(self, network: WardropNetwork) -> float:
        """Return the Lemma 4 safe bulletin-board period for this policy."""
        return safe_update_period_for_rule(network, self.migration)

    def migration_rates(
        self,
        network: WardropNetwork,
        current_flows: np.ndarray,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        """Return the matrix ``rho[p, q]`` of migration rates from p to q.

        ``current_flows`` is the live flow (supplies the factor ``f_P``);
        ``posted_flows`` and ``posted_path_latencies`` are the bulletin-board
        snapshot used for the sampling and migration probabilities.  Under
        up-to-date information callers simply pass the live state for both.
        """
        sigma = self.sampling.probabilities(network, posted_flows, posted_path_latencies)
        mu = self.migration.matrix(posted_path_latencies)
        return current_flows[:, None] * sigma * mu

    def growth_rates(
        self,
        network: WardropNetwork,
        current_flows: np.ndarray,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        """Return ``df_P/dt = sum_Q (rho_QP - rho_PQ)`` for every path.

        This is Eq. (1) of the paper (Eq. (3) when the posted state is stale).
        The result sums to zero within every commodity, so demands are
        conserved exactly.

        The implementation folds ``sigma * mu`` into one transition-rate
        matrix ``M`` and factors the current flow out of the outflow sum
        (``sum_Q rho_PQ = f_P * sum_Q M_PQ``): one elementwise product and
        one reduction per evaluation instead of two of each.  The batched
        kernels and the frozen phase field perform the identical operation
        sequence, so all engines keep agreeing bit for bit.
        """
        sigma = self.sampling.probabilities(network, posted_flows, posted_path_latencies)
        mu = self.migration.matrix(posted_path_latencies)
        rates = sigma * mu
        inflow = np.matmul(current_flows[None, :], rates)[0]
        return inflow - current_flows * rates.sum(axis=1)

    def frozen_growth_field(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ):
        """Return ``field(t, state)`` with sigma and mu precomputed once.

        Within a stale bulletin-board phase the sampling matrix and migration
        probabilities depend only on the posted snapshot, so the combined
        transition-rate matrix (and its outflow row sums) are assembled once
        per phase instead of once per integrator stage.  The returned closure
        performs exactly the arithmetic of :meth:`growth_rates` on the
        precomputed matrices, so trajectories are unchanged bit for bit --
        this is the scalar port of the batched engine's per-phase
        precomputation.
        """
        sigma = self.sampling.probabilities(network, posted_flows, posted_path_latencies)
        mu = self.migration.matrix(posted_path_latencies)
        rates = sigma * mu
        outflow_rates = rates.sum(axis=1)

        def field(_time: float, state: np.ndarray) -> np.ndarray:
            inflow = np.matmul(state[None, :], rates)[0]
            return inflow - state * outflow_rates

        return field

    def migration_rates_batch(
        self,
        network: WardropNetwork,
        current_flows: np.ndarray,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        """Return ``(B, P, P)`` migration-rate matrices for a batch of replicas.

        All inputs have shape ``(B, P)``; row ``b`` of the result equals
        :meth:`migration_rates` applied to row ``b``.  The built-in sampling
        and migration rules supply vectorised batch kernels; custom rules fall
        back to a per-row loop inside :meth:`SamplingRule.probabilities_batch`
        and :meth:`MigrationRule.matrix_batch`, so any policy works here.
        """
        sigma = self.sampling.probabilities_batch(network, posted_flows, posted_path_latencies)
        mu = self.migration.matrix_batch(posted_path_latencies)
        # Same association order as the scalar path: (f * sigma) * mu.
        return (current_flows[:, :, None] * sigma) * mu

    def growth_rates_batch(
        self,
        network: WardropNetwork,
        current_flows: np.ndarray,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        """Return ``(B, P)`` growth rates ``df/dt``, one row per batch replica.

        Row ``b`` performs exactly the operation sequence of
        :meth:`growth_rates` (folded ``sigma * mu``, factored outflow), so
        batched and scalar evaluations agree bit for bit.
        """
        sigma = self.sampling.probabilities_batch(network, posted_flows, posted_path_latencies)
        mu = self.migration.matrix_batch(posted_path_latencies)
        rates = sigma * mu
        inflow = np.matmul(current_flows[:, None, :], rates)[:, 0, :]
        return inflow - current_flows * rates.sum(axis=2)


def uniform_policy(network: WardropNetwork, max_latency: Optional[float] = None) -> ReroutingPolicy:
    """Uniform sampling + linear migration (the Theorem 6 policy)."""
    return ReroutingPolicy(
        sampling=UniformSampling(),
        migration=LinearMigration(max_latency or network.max_latency()),
        name="uniform+linear",
    )


def replicator_policy(
    network: WardropNetwork,
    max_latency: Optional[float] = None,
    exploration: float = 1e-6,
) -> ReroutingPolicy:
    """Proportional sampling + linear migration (replicator dynamics, Theorem 7)."""
    return ReroutingPolicy(
        sampling=ProportionalSampling(exploration=exploration),
        migration=LinearMigration(max_latency or network.max_latency()),
        name="replicator",
    )


def better_response_policy(sampling: Optional[SamplingRule] = None) -> ReroutingPolicy:
    """Sampling + better-response migration: the non-smooth negative example."""
    return ReroutingPolicy(
        sampling=sampling or UniformSampling(),
        migration=BetterResponseMigration(),
        name="better-response",
    )


def smoothed_best_response_policy(concentration: float, width: float) -> ReroutingPolicy:
    """Softmax sampling (parameter ``c``) + steep linear ramp (parameter ``width``).

    Approaches best response as ``concentration`` grows and ``width`` shrinks;
    remains formally alpha-smooth with ``alpha = 1/width``.
    """
    return ReroutingPolicy(
        sampling=SoftmaxSampling(concentration),
        migration=SmoothedBetterResponseMigration(width),
        name=f"smoothed-BR(c={concentration:g},w={width:g})",
    )


def scaled_policy(alpha: float, sampling: Optional[SamplingRule] = None) -> ReroutingPolicy:
    """Uniform (or given) sampling + ``alpha``-scaled linear migration."""
    return ReroutingPolicy(
        sampling=sampling or UniformSampling(),
        migration=ScaledLinearMigration(alpha),
        name=f"scaled(alpha={alpha:g})",
    )
