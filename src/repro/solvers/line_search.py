"""One-dimensional line search used by the Frank--Wolfe equilibrium solver.

The Frank--Wolfe step minimises the Beckmann potential along the segment
between the current flow and an all-or-nothing flow.  The potential is convex
along that segment, so both golden-section search and bisection on the
directional derivative work; the solver uses the derivative-based bisection
(exact for our closed-form latencies) and falls back to golden-section when
no derivative oracle is supplied.
"""

from __future__ import annotations

import math
from typing import Callable


GOLDEN_RATIO = (math.sqrt(5.0) - 1.0) / 2.0


def golden_section_minimise(
    objective: Callable[[float], float],
    lo: float = 0.0,
    hi: float = 1.0,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> float:
    """Return the minimiser of a unimodal ``objective`` on ``[lo, hi]``."""
    if hi < lo:
        raise ValueError("golden-section interval is empty")
    a, b = lo, hi
    c = b - GOLDEN_RATIO * (b - a)
    d = a + GOLDEN_RATIO * (b - a)
    fc = objective(c)
    fd = objective(d)
    for _ in range(max_iterations):
        if b - a <= tolerance:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - GOLDEN_RATIO * (b - a)
            fc = objective(c)
        else:
            a, c, fc = c, d, fd
            d = a + GOLDEN_RATIO * (b - a)
            fd = objective(d)
    return 0.5 * (a + b)


def bisection_root(
    derivative: Callable[[float], float],
    lo: float = 0.0,
    hi: float = 1.0,
    tolerance: float = 1e-12,
    max_iterations: int = 200,
) -> float:
    """Return the minimiser of a convex function given its derivative.

    If the derivative is non-negative at ``lo`` the minimiser is ``lo``; if it
    is non-positive at ``hi`` the minimiser is ``hi``; otherwise bisect for
    the root of the derivative.
    """
    if hi < lo:
        raise ValueError("bisection interval is empty")
    if derivative(lo) >= 0.0:
        return lo
    if derivative(hi) <= 0.0:
        return hi
    a, b = lo, hi
    for _ in range(max_iterations):
        mid = 0.5 * (a + b)
        if b - a <= tolerance:
            return mid
        if derivative(mid) > 0.0:
            b = mid
        else:
            a = mid
    return 0.5 * (a + b)
