"""The dense/sparse incidence backends and the shared membership index."""

import numpy as np
import pytest

from repro.instances import (
    braess_network,
    grid_network,
    random_layered_network,
    sioux_falls_network,
)
from repro.largescale import (
    DenseIncidence,
    SparseIncidence,
    build_incidence,
    have_scipy,
)
from repro.wardrop import WardropNetwork

requires_scipy = pytest.mark.skipif(not have_scipy(), reason="scipy not installed")


def build_both(network):
    dense = build_incidence(network.paths, network.edges, mode="dense")
    sparse = build_incidence(network.paths, network.edges, mode="sparse")
    return dense, sparse


class TestBackendAgreement:
    @requires_scipy
    @pytest.mark.parametrize("factory", [braess_network, lambda: grid_network(3, 3, num_commodities=2, seed=3)])
    def test_dense_and_sparse_products_agree(self, factory):
        network = factory()
        dense, sparse = build_both(network)
        assert isinstance(dense, DenseIncidence)
        assert isinstance(sparse, SparseIncidence)
        assert dense.shape == sparse.shape == (network.num_edges, network.num_paths)
        assert dense.nnz == sparse.nnz
        assert np.array_equal(dense.dense(), sparse.dense())
        rng = np.random.default_rng(7)
        flows = rng.random(network.num_paths)
        batch = rng.random((5, network.num_paths))
        values = rng.random(network.num_edges)
        batch_values = rng.random((5, network.num_edges))
        assert np.allclose(dense.edge_flows(flows), sparse.edge_flows(flows), atol=1e-13)
        assert np.allclose(
            dense.edge_flows_batch(batch), sparse.edge_flows_batch(batch), atol=1e-13
        )
        assert np.allclose(dense.path_totals(values), sparse.path_totals(values), atol=1e-13)
        assert np.allclose(
            dense.path_totals_batch(batch_values),
            sparse.path_totals_batch(batch_values),
            atol=1e-13,
        )

    @requires_scipy
    def test_sparse_scalar_and_batch_rows_are_bit_identical(self):
        """The CSR batch product must replay the scalar accumulation exactly."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        _, sparse = build_both(network)
        rng = np.random.default_rng(11)
        batch = rng.random((6, network.num_paths))
        batched = sparse.edge_flows_batch(batch)
        for row in range(6):
            assert np.array_equal(batched[row], sparse.edge_flows(batch[row]))
        batch_values = rng.random((6, network.num_edges))
        batched_totals = sparse.path_totals_batch(batch_values)
        for row in range(6):
            assert np.array_equal(batched_totals[row], sparse.path_totals(batch_values[row]))

    @requires_scipy
    def test_network_evaluation_matches_across_modes(self):
        base = braess_network()
        sparse_net = WardropNetwork(
            base.graph, base.commodities, normalise=False, incidence_mode="sparse"
        )
        rng = np.random.default_rng(3)
        flows = rng.random(base.num_paths)
        batch = rng.random((4, base.num_paths))
        assert np.allclose(base.edge_flows(flows), sparse_net.edge_flows(flows), atol=1e-13)
        assert np.allclose(
            base.path_latencies(flows), sparse_net.path_latencies(flows), atol=1e-12
        )
        assert np.allclose(
            base.path_latencies_batch(batch),
            sparse_net.path_latencies_batch(batch),
            atol=1e-12,
        )
        assert np.array_equal(base.incidence, sparse_net.incidence)


class TestSharedMembership:
    def test_paths_through_matches_brute_force(self):
        network = grid_network(3, 3, num_commodities=2, seed=3)
        paths = network.paths
        for edge in network.edges:
            expected = [i for i, path in enumerate(paths) if edge in path.edges]
            assert paths.paths_through(edge) == expected

    def test_membership_is_built_once_and_shared(self):
        network = braess_network()
        paths = network.paths
        first = paths.edge_membership()
        assert paths.edge_membership() is first  # cached, no per-call scan
        # The incidence matrix consumes the same membership map.
        for edge, indices in first.items():
            column = network.incidence[network.edge_index(edge)]
            assert np.array_equal(np.flatnonzero(column), indices)

    def test_paths_through_unknown_edge_is_empty(self):
        network = braess_network()
        assert network.paths.paths_through(("nope", "nowhere", 0)) == []


class TestDenseBitIdentity:
    def test_dense_scalar_and_batch_rows_are_bit_identical(self):
        """The dense batch products must replay the scalar GEMV per row: the
        one-GEMM evaluation can accumulate in a different order and land one
        ulp away, which broke closed-mode batched column generation."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        dense = build_incidence(network.paths, network.edges, mode="dense")
        rng = np.random.default_rng(11)
        batch = rng.random((6, network.num_paths))
        batched = dense.edge_flows_batch(batch)
        for row in range(6):
            assert np.array_equal(batched[row], dense.edge_flows(batch[row]))
        batch_values = rng.random((6, network.num_edges))
        batched_totals = dense.path_totals_batch(batch_values)
        for row in range(6):
            assert np.array_equal(
                batched_totals[row], dense.path_totals(batch_values[row])
            )


class TestReadOnlyDenseViews:
    """``dense()`` hands out read-only arrays: a caller's in-place edit must
    not corrupt the operator's internal matrix or cache."""

    def test_dense_backend_view_is_read_only_and_stable(self):
        network = braess_network()
        dense = build_incidence(network.paths, network.edges, mode="dense")
        view = dense.dense()
        with pytest.raises(ValueError):
            view[0, 0] = 99.0
        assert dense.dense() is view  # cached, not rebuilt per call
        flows = np.ones(network.num_paths)
        assert np.array_equal(dense.edge_flows(flows), view @ flows)

    @requires_scipy
    def test_sparse_backend_cache_is_read_only_and_stable(self):
        network = braess_network()
        sparse = build_incidence(network.paths, network.edges, mode="sparse")
        cache = sparse.dense()
        with pytest.raises(ValueError):
            cache[0, 0] = 99.0
        assert sparse.dense() is cache
        flows = np.ones(network.num_paths)
        assert np.array_equal(sparse.edge_flows(flows), cache @ flows)

    def test_mutation_attempt_does_not_poison_later_products(self):
        network = braess_network()
        dense = build_incidence(network.paths, network.edges, mode="dense")
        flows = np.ones(network.num_paths)
        before = dense.edge_flows(flows).copy()
        try:
            dense.dense()[:] = 0.0
        except ValueError:
            pass
        assert np.array_equal(dense.edge_flows(flows), before)


class TestModeSelection:
    @requires_scipy
    def test_sioux_falls_uses_the_sparse_backend(self):
        network = sioux_falls_network()
        assert isinstance(network.incidence_operator, SparseIncidence)

    def test_small_instances_stay_dense_in_auto_mode(self):
        network = braess_network()
        assert isinstance(network.incidence_operator, DenseIncidence)

    @requires_scipy
    def test_auto_goes_sparse_at_road_network_edge_counts(self):
        """CSR is the default tier at road-network sizes regardless of the
        current path count: column generation starts with few paths, so the
        dense-entries threshold alone would start road networks dense and
        re-tier them mid-run."""
        from repro.largescale.incidence import AUTO_SPARSE_MIN_EDGES

        network = random_layered_network(4, 5, num_commodities=3, seed=3)
        assert network.num_edges >= AUTO_SPARSE_MIN_EDGES
        assert network.num_paths * network.num_edges < 200_000
        operator = build_incidence(network.paths, network.edges, mode="auto")
        assert isinstance(operator, SparseIncidence)

    def test_unknown_mode_rejected(self):
        network = braess_network()
        with pytest.raises(ValueError, match="incidence mode"):
            build_incidence(network.paths, network.edges, mode="csr")
