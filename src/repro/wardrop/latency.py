"""Latency function library for the Wardrop routing model.

The paper assumes edge latency functions ``l_e : [0, 1] -> R>=0`` that are
continuous, non-decreasing and have a finite first derivative on the whole
range.  The central quantity used by the theory is ``beta``, an upper bound
on the slope of every latency function in the network: the safe bulletin
board update period of Lemma 4 is ``T* = 1 / (4 * D * alpha * beta)``.

Every latency function in this module therefore exposes three operations:

* ``value(x)``        -- the latency at flow ``x``,
* ``derivative(x)``   -- the exact first derivative at flow ``x``,
* ``max_slope(lo, hi)`` -- a tight upper bound on the derivative over an
  interval, used to compute the network constant ``beta``.

In addition ``integral(x)`` returns the exact value of
``int_0^x l_e(u) du`` which is the edge contribution to the
Beckmann--McGuire--Winsten potential; having it in closed form keeps the
potential computation exact rather than quadrature based.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence

import numpy as np

# A stacked evaluator maps ``(x, rows)`` -- the flows ``x[i]`` and the family
# member indices ``rows[i]`` -- to the latencies ``functions[rows[i]](x[i])``.
StackedEvaluator = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _int_pow(x, exponent: int):
    """Return ``x ** exponent`` by binary exponentiation (scalars or arrays).

    Numpy's vectorised pow kernel and the scalar ``float ** int`` (libm) pow
    disagree by an ulp on a few percent of inputs, which would break the
    bit-for-bit contract between the scalar and the batched engines wherever
    a latency uses an integer power (BPR, monomials).  Binary exponentiation
    performs the *same* multiplication sequence elementwise whether ``x`` is
    a float or an array, so every evaluation tier produces identical bits --
    and for the small exponents of road latencies (BPR beta = 4 is two
    squarings) it is faster than pow as well.
    """
    exponent = int(exponent)
    result = None
    base = x
    while True:
        if exponent & 1:
            result = base if result is None else result * base
        exponent >>= 1
        if not exponent:
            break
        base = base * base
    if result is None:  # exponent == 0
        return x * 0 + 1.0
    return result


def _int_power(x: np.ndarray, exponents: np.ndarray) -> np.ndarray:
    """Return ``x ** exponents`` with per-element integer exponents.

    Groups by exponent and applies :func:`_int_pow` per group, so per-row
    stacked evaluation performs exactly the scalar multiplication sequence.
    """
    result = np.empty_like(x)
    for exponent in np.unique(exponents):
        selected = exponents == exponent
        result[selected] = _int_pow(x[selected], int(exponent))
    return result


class LatencyFunction(ABC):
    """A continuous, non-decreasing latency function on ``[0, 1]``.

    Subclasses implement the latency value, its derivative and its
    antiderivative in closed form.  All functions must be non-decreasing and
    non-negative on the unit interval; :meth:`validate` spot-checks this and
    is used by the instance validators.
    """

    @abstractmethod
    def value(self, x: float) -> float:
        """Return the latency induced by flow ``x``."""

    @abstractmethod
    def derivative(self, x: float) -> float:
        """Return the first derivative of the latency at flow ``x``."""

    @abstractmethod
    def integral(self, x: float) -> float:
        """Return ``int_0^x value(u) du`` (the potential contribution)."""

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        """Return an upper bound on the derivative over ``[lo, hi]``.

        The default implementation assumes the derivative is non-decreasing
        (true for all convex latency functions in this library) and returns
        the derivative at the right endpoint.  Subclasses with non-convex
        shapes override this.
        """
        return self.derivative(hi)

    def value_array(self, x: np.ndarray) -> np.ndarray:
        """Return ``value`` evaluated elementwise on an array of flows.

        The batched simulation engine evaluates every edge latency on a whole
        ensemble of flows at once; subclasses override this with a vectorised
        implementation that performs the *same floating-point operations* as
        :meth:`value` so that batched and scalar runs agree bit for bit.  The
        default falls back to a Python loop, which is slow but always correct
        (custom latency functions keep working without a batch override).
        """
        x = np.asarray(x, dtype=float)
        return np.array([self.value(float(v)) for v in x.ravel()]).reshape(x.shape)

    @classmethod
    def stacked_evaluator(cls, functions: Sequence["LatencyFunction"]) -> Optional[StackedEvaluator]:
        """Return a coefficient-stacked evaluator for same-type functions.

        ``functions`` holds one instance of ``cls`` per family member.  The
        returned callable ``evaluate(x, rows)`` computes
        ``functions[rows[i]].value(x[i])`` for a whole batch at once by
        stacking the functions' coefficients into arrays, performing the same
        floating-point operations as the scalar :meth:`value` so that
        family-batched and per-row scalar runs agree bit for bit.  Classes
        without a stacked form return ``None`` and callers fall back to a
        per-row loop (see :class:`LatencyStack`).
        """
        return None

    def __call__(self, x: float) -> float:
        return self.value(x)

    def validate(self, samples: int = 32) -> None:
        """Raise ``ValueError`` if the function is negative or decreasing.

        The check samples the unit interval; it is a guard against
        misconfigured instances, not a proof.
        """
        previous = None
        for i in range(samples + 1):
            x = i / samples
            y = self.value(x)
            if y < -1e-12:
                raise ValueError(f"{self!r} is negative at {x}: {y}")
            if previous is not None and y < previous - 1e-9:
                raise ValueError(f"{self!r} is decreasing near {x}")
            previous = y

    # Combinators ---------------------------------------------------------

    def __add__(self, other: "LatencyFunction") -> "SumLatency":
        return SumLatency([self, other])

    def scaled(self, factor: float) -> "ScaledLatency":
        """Return this latency function multiplied by ``factor >= 0``."""
        return ScaledLatency(self, factor)

    def shifted(self, offset: float) -> "SumLatency":
        """Return this latency function plus a constant ``offset >= 0``."""
        return SumLatency([self, ConstantLatency(offset)])


class ConstantLatency(LatencyFunction):
    """A flow-independent latency ``l(x) = c`` (e.g. propagation delay)."""

    def __init__(self, constant: float):
        if constant < 0:
            raise ValueError("constant latency must be non-negative")
        self.constant = float(constant)

    def value(self, x: float) -> float:
        return self.constant

    def derivative(self, x: float) -> float:
        return 0.0

    def integral(self, x: float) -> float:
        return self.constant * x

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return 0.0

    def value_array(self, x: np.ndarray) -> np.ndarray:
        return np.full(np.shape(x), self.constant, dtype=float)

    @classmethod
    def stacked_evaluator(cls, functions):
        constants = np.array([f.constant for f in functions])

        def evaluate(x, rows):
            return constants[rows].copy()

        return evaluate

    def __repr__(self) -> str:
        return f"ConstantLatency({self.constant})"


class LinearLatency(LatencyFunction):
    """A homogeneous linear latency ``l(x) = a * x``."""

    def __init__(self, coefficient: float = 1.0):
        if coefficient < 0:
            raise ValueError("linear coefficient must be non-negative")
        self.coefficient = float(coefficient)

    def value(self, x: float) -> float:
        return self.coefficient * x

    def derivative(self, x: float) -> float:
        return self.coefficient

    def integral(self, x: float) -> float:
        return 0.5 * self.coefficient * x * x

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self.coefficient

    def value_array(self, x: np.ndarray) -> np.ndarray:
        return self.coefficient * np.asarray(x, dtype=float)

    @classmethod
    def stacked_evaluator(cls, functions):
        coefficients = np.array([f.coefficient for f in functions])

        def evaluate(x, rows):
            return coefficients[rows] * np.asarray(x, dtype=float)

        return evaluate

    def __repr__(self) -> str:
        return f"LinearLatency({self.coefficient})"


class AffineLatency(LatencyFunction):
    """An affine latency ``l(x) = a * x + b`` with ``a, b >= 0``."""

    def __init__(self, slope: float, intercept: float):
        if slope < 0 or intercept < 0:
            raise ValueError("affine latency requires non-negative slope and intercept")
        self.slope = float(slope)
        self.intercept = float(intercept)

    def value(self, x: float) -> float:
        return self.slope * x + self.intercept

    def derivative(self, x: float) -> float:
        return self.slope

    def integral(self, x: float) -> float:
        return 0.5 * self.slope * x * x + self.intercept * x

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self.slope

    def value_array(self, x: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=float) + self.intercept

    @classmethod
    def stacked_evaluator(cls, functions):
        slopes = np.array([f.slope for f in functions])
        intercepts = np.array([f.intercept for f in functions])

        def evaluate(x, rows):
            return slopes[rows] * np.asarray(x, dtype=float) + intercepts[rows]

        return evaluate

    def __repr__(self) -> str:
        return f"AffineLatency(slope={self.slope}, intercept={self.intercept})"


class PolynomialLatency(LatencyFunction):
    """A polynomial latency ``l(x) = sum_d c_d * x**d`` with ``c_d >= 0``.

    Non-negative coefficients guarantee monotonicity on ``[0, 1]``; this is
    the standard class of latency functions used throughout the price of
    anarchy literature (Roughgarden & Tardos).
    """

    def __init__(self, coefficients: Sequence[float]):
        if not coefficients:
            raise ValueError("polynomial latency requires at least one coefficient")
        if any(c < 0 for c in coefficients):
            raise ValueError("polynomial latency requires non-negative coefficients")
        self.coefficients = [float(c) for c in coefficients]

    def value(self, x: float) -> float:
        total = 0.0
        power = 1.0
        for coefficient in self.coefficients:
            total += coefficient * power
            power *= x
        return total

    def derivative(self, x: float) -> float:
        total = 0.0
        power = 1.0
        for degree, coefficient in enumerate(self.coefficients):
            if degree >= 1:
                total += degree * coefficient * power
                power *= x
            # degree 0 contributes nothing; power stays at 1 until degree 1.
        return total

    def integral(self, x: float) -> float:
        total = 0.0
        power = x
        for degree, coefficient in enumerate(self.coefficients):
            total += coefficient * power / (degree + 1)
            power *= x
        return total

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        # Non-negative coefficients make the derivative non-decreasing.
        return self.derivative(hi)

    def value_array(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        # Same accumulation order as the scalar `value` for bit equality.
        total = np.zeros_like(x)
        power = np.ones_like(x)
        for coefficient in self.coefficients:
            total += coefficient * power
            power *= x
        return total

    @classmethod
    def stacked_evaluator(cls, functions):
        if len({len(f.coefficients) for f in functions}) != 1:
            return None
        coefficients = np.array([f.coefficients for f in functions])

        def evaluate(x, rows):
            x = np.asarray(x, dtype=float)
            # Same accumulation order as `value` / `value_array`.
            total = np.zeros_like(x)
            power = np.ones_like(x)
            for degree in range(coefficients.shape[1]):
                total += coefficients[rows, degree] * power
                power *= x
            return total

        return evaluate

    def __repr__(self) -> str:
        return f"PolynomialLatency({self.coefficients})"


class MonomialLatency(LatencyFunction):
    """A monomial latency ``l(x) = a * x**d`` (the Pigou-style nonlinearity)."""

    def __init__(self, coefficient: float = 1.0, degree: int = 1):
        if coefficient < 0:
            raise ValueError("monomial coefficient must be non-negative")
        if degree < 1:
            raise ValueError("monomial degree must be at least 1")
        self.coefficient = float(coefficient)
        self.degree = int(degree)

    def value(self, x: float) -> float:
        return self.coefficient * _int_pow(x, self.degree)

    def derivative(self, x: float) -> float:
        return self.coefficient * self.degree * x ** (self.degree - 1)

    def integral(self, x: float) -> float:
        return self.coefficient * x ** (self.degree + 1) / (self.degree + 1)

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self.derivative(hi)

    def value_array(self, x: np.ndarray) -> np.ndarray:
        return self.coefficient * _int_pow(np.asarray(x, dtype=float), self.degree)

    @classmethod
    def stacked_evaluator(cls, functions):
        coefficients = np.array([f.coefficient for f in functions])
        degrees = np.array([f.degree for f in functions])
        if (degrees == degrees[0]).all():
            degree = int(degrees[0])

            def evaluate(x, rows):
                return coefficients[rows] * _int_pow(np.asarray(x, dtype=float), degree)

        else:

            def evaluate(x, rows):
                return coefficients[rows] * _int_power(np.asarray(x, dtype=float), degrees[rows])

        return evaluate

    def __repr__(self) -> str:
        return f"MonomialLatency({self.coefficient}, degree={self.degree})"


class BPRLatency(LatencyFunction):
    """Bureau of Public Roads latency ``l(x) = t0 * (1 + a * (x / c)**d)``.

    The standard road-traffic latency model; included because Wardrop's model
    originates in road traffic and BPR functions are the canonical workload
    for traffic-assignment solvers.
    """

    def __init__(self, free_flow_time: float, capacity: float, alpha: float = 0.15, beta: int = 4):
        if free_flow_time < 0 or capacity <= 0 or alpha < 0 or beta < 1:
            raise ValueError("invalid BPR parameters")
        self.free_flow_time = float(free_flow_time)
        self.capacity = float(capacity)
        self.alpha = float(alpha)
        self.beta = int(beta)

    def value(self, x: float) -> float:
        return self.free_flow_time * (1.0 + self.alpha * _int_pow(x / self.capacity, self.beta))

    def derivative(self, x: float) -> float:
        return (
            self.free_flow_time
            * self.alpha
            * self.beta
            * x ** (self.beta - 1)
            / self.capacity**self.beta
        )

    def integral(self, x: float) -> float:
        return self.free_flow_time * (
            x + self.alpha * x ** (self.beta + 1) / ((self.beta + 1) * self.capacity**self.beta)
        )

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self.derivative(hi)

    def value_array(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return self.free_flow_time * (1.0 + self.alpha * _int_pow(x / self.capacity, self.beta))

    @classmethod
    def stacked_evaluator(cls, functions):
        free_flow_times = np.array([f.free_flow_time for f in functions])
        capacities = np.array([f.capacity for f in functions])
        alphas = np.array([f.alpha for f in functions])
        betas = np.array([f.beta for f in functions])
        if (betas == betas[0]).all():
            exponent = int(betas[0])

            def evaluate(x, rows):
                x = np.asarray(x, dtype=float)
                return free_flow_times[rows] * (
                    1.0 + alphas[rows] * _int_pow(x / capacities[rows], exponent)
                )

        else:

            def evaluate(x, rows):
                x = np.asarray(x, dtype=float)
                powered = _int_power(x / capacities[rows], betas[rows])
                return free_flow_times[rows] * (1.0 + alphas[rows] * powered)

        return evaluate

    def __repr__(self) -> str:
        return (
            f"BPRLatency(t0={self.free_flow_time}, capacity={self.capacity}, "
            f"alpha={self.alpha}, beta={self.beta})"
        )


class MM1Latency(LatencyFunction):
    """A capped M/M/1 queueing delay ``l(x) = 1 / (c - x)`` for ``x <= x_cap``.

    The raw M/M/1 delay has unbounded slope as ``x`` approaches the capacity
    ``c``; the paper requires a finite slope bound, so the function is
    linearised beyond ``x_cap < c`` (continuing with the tangent at the cap).
    This mirrors how queueing delays are used in practice when a finite
    Lipschitz constant is required.
    """

    def __init__(self, capacity: float, cap_fraction: float = 0.9):
        if capacity <= 1.0:
            raise ValueError("M/M/1 capacity must exceed the unit demand (c > 1)")
        if not 0.0 < cap_fraction < 1.0:
            raise ValueError("cap_fraction must lie strictly between 0 and 1")
        self.capacity = float(capacity)
        # Cap point expressed in absolute flow units, never beyond the unit demand.
        self.cap = min(float(cap_fraction) * self.capacity, 1.0)
        self._cap_value = 1.0 / (self.capacity - self.cap)
        self._cap_slope = 1.0 / (self.capacity - self.cap) ** 2

    def value(self, x: float) -> float:
        if x <= self.cap:
            return 1.0 / (self.capacity - x)
        return self._cap_value + self._cap_slope * (x - self.cap)

    def derivative(self, x: float) -> float:
        if x <= self.cap:
            return 1.0 / (self.capacity - x) ** 2
        return self._cap_slope

    def integral(self, x: float) -> float:
        if x <= self.cap:
            return math.log(self.capacity / (self.capacity - x))
        head = math.log(self.capacity / (self.capacity - self.cap))
        tail = x - self.cap
        return head + self._cap_value * tail + 0.5 * self._cap_slope * tail * tail

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self.derivative(min(hi, self.cap)) if hi <= self.cap else self._cap_slope

    def value_array(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        # The queueing branch is only selected where x <= cap < capacity, so
        # the masked-out division can never hit the pole.
        with np.errstate(divide="ignore", invalid="ignore"):
            queueing = 1.0 / (self.capacity - x)
        linear = self._cap_value + self._cap_slope * (x - self.cap)
        return np.where(x <= self.cap, queueing, linear)

    @classmethod
    def stacked_evaluator(cls, functions):
        capacities = np.array([f.capacity for f in functions])
        caps = np.array([f.cap for f in functions])
        cap_values = np.array([f._cap_value for f in functions])
        cap_slopes = np.array([f._cap_slope for f in functions])

        def evaluate(x, rows):
            x = np.asarray(x, dtype=float)
            cap = caps[rows]
            with np.errstate(divide="ignore", invalid="ignore"):
                queueing = 1.0 / (capacities[rows] - x)
            linear = cap_values[rows] + cap_slopes[rows] * (x - cap)
            return np.where(x <= cap, queueing, linear)

        return evaluate

    def __repr__(self) -> str:
        return f"MM1Latency(capacity={self.capacity}, cap={self.cap})"


class PiecewiseLinearLatency(LatencyFunction):
    """A continuous piecewise-linear latency defined by breakpoints.

    ``breakpoints`` is a list of ``(x, y)`` pairs with strictly increasing
    ``x`` covering ``[0, 1]`` and non-decreasing ``y``.  This class expresses
    the paper's oscillation example ``l(x) = max{0, beta * (x - 1/2)}``
    exactly (see :class:`ThresholdLatency`).
    """

    def __init__(self, breakpoints: Sequence[tuple]):
        if len(breakpoints) < 2:
            raise ValueError("need at least two breakpoints")
        xs = [float(x) for x, _ in breakpoints]
        ys = [float(y) for _, y in breakpoints]
        if xs[0] > 1e-12 or xs[-1] < 1.0 - 1e-12:
            raise ValueError("breakpoints must cover the interval [0, 1]")
        if any(b <= a for a, b in zip(xs, xs[1:])):
            raise ValueError("breakpoint x-coordinates must be strictly increasing")
        if any(b < a - 1e-12 for a, b in zip(ys, ys[1:])):
            raise ValueError("breakpoint y-coordinates must be non-decreasing")
        if ys[0] < 0:
            raise ValueError("latency must be non-negative")
        self.xs = xs
        self.ys = ys

    def _segment(self, x: float) -> int:
        """Return the index ``i`` such that ``xs[i] <= x <= xs[i+1]``."""
        if x <= self.xs[0]:
            return 0
        if x >= self.xs[-1]:
            return len(self.xs) - 2
        lo, hi = 0, len(self.xs) - 2
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.xs[mid] <= x:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _slope(self, i: int) -> float:
        return (self.ys[i + 1] - self.ys[i]) / (self.xs[i + 1] - self.xs[i])

    def value(self, x: float) -> float:
        i = self._segment(x)
        return self.ys[i] + self._slope(i) * (x - self.xs[i])

    def derivative(self, x: float) -> float:
        return self._slope(self._segment(x))

    def integral(self, x: float) -> float:
        total = 0.0
        for i in range(len(self.xs) - 1):
            left = self.xs[i]
            right = min(x, self.xs[i + 1])
            if right <= left:
                break
            y_left = self.ys[i]
            y_right = y_left + self._slope(i) * (right - left)
            total += 0.5 * (y_left + y_right) * (right - left)
        return total

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        best = 0.0
        for i in range(len(self.xs) - 1):
            if self.xs[i + 1] <= lo or self.xs[i] >= hi:
                continue
            best = max(best, self._slope(i))
        return best

    def value_array(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        xs = np.asarray(self.xs)
        ys = np.asarray(self.ys)
        # Mirror `_segment`: the largest i with xs[i] <= x, clipped to a valid
        # segment so values outside [x0, x_last] extrapolate linearly exactly
        # like the scalar path.
        idx = np.clip(np.searchsorted(xs, x, side="right") - 1, 0, len(xs) - 2)
        slopes = (ys[idx + 1] - ys[idx]) / (xs[idx + 1] - xs[idx])
        return ys[idx] + slopes * (x - xs[idx])

    @classmethod
    def stacked_evaluator(cls, functions):
        xs = np.asarray(functions[0].xs)
        if all(
            len(f.xs) == len(xs) and np.array_equal(np.asarray(f.xs), xs)
            for f in functions[1:]
        ):
            # Shared breakpoint x-coordinates (e.g. a beta sweep of the
            # oscillation latency): one searchsorted locates every row's
            # segment at once.
            ys = np.array([f.ys for f in functions])

            def evaluate(x, rows):
                x = np.asarray(x, dtype=float)
                idx = np.clip(np.searchsorted(xs, x, side="right") - 1, 0, len(xs) - 2)
                y_lo = ys[rows, idx]
                slopes = (ys[rows, idx + 1] - y_lo) / (xs[idx + 1] - xs[idx])
                return y_lo + slopes * (x - xs[idx])

            return evaluate
        # Per-row breakpoint x-coordinates (e.g. a threshold sweep): pad every
        # row to the widest breakpoint count.  Padded x-slots hold +inf so the
        # row-wise count of "xs <= x" never includes them, and the segment
        # index is clipped to each row's own last real segment -- the selected
        # segment, and hence the interpolation arithmetic, matches the scalar
        # `_segment`/`value` pair exactly.
        lengths = np.array([len(f.xs) for f in functions])
        width = int(lengths.max())
        padded_xs = np.full((len(functions), width), np.inf)
        padded_ys = np.zeros((len(functions), width))
        for i, f in enumerate(functions):
            padded_xs[i, : len(f.xs)] = f.xs
            padded_ys[i, : len(f.ys)] = f.ys
        last_segment = lengths - 2

        def evaluate(x, rows):
            x = np.asarray(x, dtype=float)
            row_xs = padded_xs[rows]
            row_ys = padded_ys[rows]
            counts = (row_xs <= x[:, None]).sum(axis=1)
            idx = np.clip(counts - 1, 0, last_segment[rows])
            at = np.arange(len(idx))
            x_lo = row_xs[at, idx]
            y_lo = row_ys[at, idx]
            slopes = (row_ys[at, idx + 1] - y_lo) / (row_xs[at, idx + 1] - x_lo)
            return y_lo + slopes * (x - x_lo)

        return evaluate

    def __repr__(self) -> str:
        points = list(zip(self.xs, self.ys))
        return f"PiecewiseLinearLatency({points})"


class ThresholdLatency(PiecewiseLinearLatency):
    """The paper's oscillation latency ``l(x) = max{0, beta * (x - threshold)}``.

    Section 3.2 of the paper uses two parallel links with this latency (with
    ``threshold = 1/2``): it is zero below the threshold and rises with slope
    ``beta`` above it, so the Wardrop equilibrium has latency exactly zero.
    """

    def __init__(self, beta: float, threshold: float = 0.5):
        if beta < 0:
            raise ValueError("beta must be non-negative")
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must lie strictly inside (0, 1)")
        self.beta = float(beta)
        self.threshold = float(threshold)
        super().__init__(
            [(0.0, 0.0), (threshold, 0.0), (1.0, beta * (1.0 - threshold))]
        )

    def __repr__(self) -> str:
        return f"ThresholdLatency(beta={self.beta}, threshold={self.threshold})"


class ScaledLatency(LatencyFunction):
    """A latency function multiplied by a non-negative scalar."""

    def __init__(self, base: LatencyFunction, factor: float):
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        self.base = base
        self.factor = float(factor)

    def value(self, x: float) -> float:
        return self.factor * self.base.value(x)

    def derivative(self, x: float) -> float:
        return self.factor * self.base.derivative(x)

    def integral(self, x: float) -> float:
        return self.factor * self.base.integral(x)

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self.factor * self.base.max_slope(lo, hi)

    def value_array(self, x: np.ndarray) -> np.ndarray:
        return self.factor * self.base.value_array(x)

    @classmethod
    def stacked_evaluator(cls, functions):
        factors = np.array([f.factor for f in functions])
        base_stack = LatencyStack([f.base for f in functions])

        def evaluate(x, rows):
            return factors[rows] * base_stack.values(x, rows)

        return evaluate

    def __repr__(self) -> str:
        return f"ScaledLatency({self.base!r}, {self.factor})"


class ModulatedLatency(LatencyFunction):
    """A scenario-modulated latency ``l(x) = gain * base(stretch * x) + offset``.

    This is the single primitive every nonstationary-scenario effect compiles
    to (:mod:`repro.scenarios`):

    * a *demand* multiplier ``m`` stretches the flow argument (``stretch = m``:
      a flow share ``x`` experiences the latency of the absolute flow
      ``m * x``),
    * a *capacity drop* to a fraction ``c`` of the original capacity also
      stretches the argument (``stretch = 1 / c`` -- for BPR latencies this is
      exactly a capacity rescale, since BPR depends on flow only through
      ``flow / capacity``),
    * a *coefficient* multiplier scales the latency value (``gain``),
    * a *closure* adds a prohibitive constant (``offset``).

    The identity modulation (``gain = stretch = 1``, ``offset = 0``) is
    float-transparent: ``1.0 * v`` and ``v + 0.0`` reproduce ``v`` bit for bit
    for the non-negative latency values this library produces, so wrapping
    unaffected batch rows (to keep a :class:`LatencyStack` homogeneous) never
    perturbs their trajectories.
    """

    def __init__(self, base: LatencyFunction, gain: float = 1.0, stretch: float = 1.0, offset: float = 0.0):
        if gain < 0 or stretch <= 0 or offset < 0:
            raise ValueError(
                "modulation requires gain >= 0, stretch > 0 and offset >= 0"
            )
        self.base = base
        self.gain = float(gain)
        self.stretch = float(stretch)
        self.offset = float(offset)

    def value(self, x: float) -> float:
        return self.gain * self.base.value(self.stretch * x) + self.offset

    def derivative(self, x: float) -> float:
        return self.gain * self.stretch * self.base.derivative(self.stretch * x)

    def integral(self, x: float) -> float:
        return (self.gain / self.stretch) * self.base.integral(self.stretch * x) + self.offset * x

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return self.gain * self.stretch * self.base.max_slope(
            self.stretch * lo, self.stretch * hi
        )

    def validate(self, samples: int = 32) -> None:
        # A stretch > 1 evaluates the base beyond [0, 1]; the base classes in
        # this library are monotone on all of [0, inf), so spot-check the
        # stretched range directly instead of the unit interval.
        previous = None
        for i in range(samples + 1):
            x = i / samples
            y = self.value(x)
            if y < -1e-12:
                raise ValueError(f"{self!r} is negative at {x}: {y}")
            if previous is not None and y < previous - 1e-9:
                raise ValueError(f"{self!r} is decreasing near {x}")
            previous = y

    def value_array(self, x: np.ndarray) -> np.ndarray:
        return self.gain * self.base.value_array(self.stretch * np.asarray(x, dtype=float)) + self.offset

    @classmethod
    def stacked_evaluator(cls, functions):
        gains = np.array([f.gain for f in functions])
        stretches = np.array([f.stretch for f in functions])
        offsets = np.array([f.offset for f in functions])
        base_stack = LatencyStack([f.base for f in functions])

        def evaluate(x, rows):
            x = np.asarray(x, dtype=float)
            return gains[rows] * base_stack.values(stretches[rows] * x, rows) + offsets[rows]

        return evaluate

    def __repr__(self) -> str:
        return (
            f"ModulatedLatency({self.base!r}, gain={self.gain}, "
            f"stretch={self.stretch}, offset={self.offset})"
        )


class SumLatency(LatencyFunction):
    """The pointwise sum of several latency functions."""

    def __init__(self, parts: Sequence[LatencyFunction]):
        if not parts:
            raise ValueError("sum latency requires at least one part")
        self.parts = list(parts)

    def value(self, x: float) -> float:
        return sum(part.value(x) for part in self.parts)

    def derivative(self, x: float) -> float:
        return sum(part.derivative(x) for part in self.parts)

    def integral(self, x: float) -> float:
        return sum(part.integral(x) for part in self.parts)

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        return sum(part.max_slope(lo, hi) for part in self.parts)

    def value_array(self, x: np.ndarray) -> np.ndarray:
        # Same left-to-right accumulation as the scalar sum().
        total = self.parts[0].value_array(x)
        for part in self.parts[1:]:
            total = total + part.value_array(x)
        return total

    @classmethod
    def stacked_evaluator(cls, functions):
        if len({len(f.parts) for f in functions}) != 1:
            return None
        part_stacks = [
            LatencyStack([f.parts[k] for f in functions])
            for k in range(len(functions[0].parts))
        ]

        def evaluate(x, rows):
            total = part_stacks[0].values(x, rows)
            for stack in part_stacks[1:]:
                total = total + stack.values(x, rows)
            return total

        return evaluate

    def __repr__(self) -> str:
        return f"SumLatency({self.parts!r})"


class LatencyStack:
    """One edge's latency functions across a family, evaluated in one shot.

    ``functions[b]`` is the edge's latency function in family member ``b``.
    :meth:`values` evaluates member ``rows[i]``'s function at flow ``x[i]``
    for a whole batch at once, choosing the fastest correct tier:

    1. a single shared function object uses its vectorised
       :meth:`~LatencyFunction.value_array`,
    2. same-type functions use the class's coefficient-stacked evaluator
       (:meth:`~LatencyFunction.stacked_evaluator`), which performs the same
       floating-point operations as the scalar path,
    3. anything else falls back to a per-row scalar loop, which is slow but
       always correct (mixed function types per edge keep working).

    This is the kernel behind :class:`~repro.wardrop.family.NetworkFamily`:
    a family sweep stacks every edge's coefficients once at construction and
    then evaluates heterogeneous latencies with plain array arithmetic.
    """

    def __init__(self, functions: Sequence[LatencyFunction]):
        self.functions = list(functions)
        if not self.functions:
            raise ValueError("a latency stack needs at least one function")
        first = self.functions[0]
        self.shared = all(f is first for f in self.functions)
        self._evaluator: Optional[StackedEvaluator] = None
        if not self.shared and all(type(f) is type(first) for f in self.functions):
            self._evaluator = type(first).stacked_evaluator(self.functions)

    def __len__(self) -> int:
        return len(self.functions)

    @property
    def vectorised(self) -> bool:
        """True if evaluation avoids the per-row Python loop."""
        return self.shared or self._evaluator is not None

    def values(self, x: np.ndarray, rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Return ``functions[rows[i]].value(x[i])`` for every ``i``.

        ``rows`` defaults to ``0..B-1`` (one evaluation per member, in order);
        the batched engine passes the indices of the currently active rows so
        frozen rows skip latency work entirely.
        """
        x = np.asarray(x, dtype=float)
        if rows is None:
            rows = np.arange(len(self.functions))
        if self.shared:
            return self.functions[0].value_array(x)
        if self._evaluator is not None:
            return self._evaluator(x, rows)
        return np.array([self.functions[r].value(v) for r, v in zip(rows, x)])

    def __repr__(self) -> str:
        kinds = {type(f).__name__ for f in self.functions}
        return f"LatencyStack({len(self.functions)} functions, kinds={sorted(kinds)})"
