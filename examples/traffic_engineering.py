"""Traffic engineering: tuning the measurement interval of a load-adaptive WAN.

The practical question behind the paper: a network operator runs adaptive,
latency-driven traffic splitting, but link-load telemetry is only refreshed
every ``T`` seconds.  How aggressive may the rerouting be before the system
starts to flap, and what does the theory's ``T* = 1/(4 D alpha beta)`` safety
margin buy in practice?

The example models a small WAN as a multi-commodity grid with affine
latencies, simulates three operating points (conservative, at the bound,
far beyond the bound) for both the fluid limit and a finite population of
flows, and reports the resulting stability and latency figures.

Run with::

    python examples/traffic_engineering.py
"""

from __future__ import annotations

from repro.analysis import analyse_oscillation, print_table
from repro.core import scaled_policy, simulate, simulate_agents
from repro.core.smoothness import max_safe_alpha
from repro.instances import grid_network
from repro.wardrop import FlowVector


def run_operating_point(network, update_period, aggressiveness):
    """Simulate one (T, alpha) operating point; alpha = aggressiveness * safe.

    Slow (small-alpha) operating points get a proportionally longer horizon so
    every point is judged after it has had time to settle.
    """
    alpha = aggressiveness * max_safe_alpha(network, update_period)
    horizon = max(60.0, 1.5 / alpha)
    policy = scaled_policy(alpha)
    start = FlowVector.uniform(network)
    trajectory = simulate(
        network, policy, update_period=update_period, horizon=horizon,
        initial_flow=start, steps_per_phase=20,
    )
    # "Unstable" means the allocation keeps moving by more than 1% of the total
    # demand from phase to phase at the end of the run.
    report = analyse_oscillation(trajectory, window=15, amplitude_threshold=0.01)
    return {
        "alpha/alpha_safe": aggressiveness,
        "alpha": alpha,
        "avg latency": trajectory.final_flow.average_latency(),
        "max used latency": trajectory.final_flow.max_used_latency(),
        "flap amplitude": report.amplitude,
        "stable": not report.is_oscillating,
    }


def main() -> None:
    # A 3x3 grid WAN with two overlapping commodities, fairly steep (congested)
    # links and telemetry refreshed only once per second.
    network = grid_network(
        3, 3, num_commodities=2, seed=3, slope_range=(2.0, 6.0), intercept_range=(0.0, 0.3)
    )
    update_period = 1.0
    print(network.describe())
    print(f"\nTelemetry refresh interval T = {update_period}")
    print(f"Safe migration aggressiveness alpha_safe = {max_safe_alpha(network, update_period):.4g}\n")

    rows = [
        run_operating_point(network, update_period, aggressiveness)
        for aggressiveness in [1.0, 20.0, 100.0]
    ]
    print_table(rows, title="Fluid-limit behaviour at three operating points")

    # Finite population sanity check at the safe operating point: 2000 flows.
    alpha = max_safe_alpha(network, update_period)
    finite = simulate_agents(
        network, scaled_policy(alpha), num_agents=2000,
        update_period=update_period, horizon=20.0, seed=1,
    )
    print(
        "Finite population (2000 flows) at the safe operating point: "
        f"average latency {finite.final_flow.average_latency():.4g}, "
        f"max used latency {finite.final_flow.max_used_latency():.4g}"
    )
    print(
        "\nTakeaway: at the Lemma 4 bound the split is provably stable (it just\n"
        "converges slowly); moderately exceeding the bound may still work on a\n"
        "benign instance, but pushing the migration gain two orders of magnitude\n"
        "past it makes the allocation flap even though each individual agent is\n"
        "still acting 'reasonably'.  The bound is the operating point an operator\n"
        "can justify without knowing how adversarial the topology is."
    )


if __name__ == "__main__":
    main()
