"""The Pigou instance: the canonical two-link selfish-routing example.

One link has constant latency 1, the other has latency ``x**degree``.  At the
Wardrop equilibrium all traffic uses the variable link (latency 1 everywhere),
while the social optimum keeps part of the traffic on the constant link.  The
instance is the standard illustration of the price of anarchy (4/3 for the
linear case) and serves here as a small, well-understood workload for the
example applications and for convergence tests where the equilibrium has a
*non-uniform* support.
"""

from __future__ import annotations

from ..wardrop.commodity import Commodity
from ..wardrop.flow import FlowVector
from ..wardrop.latency import ConstantLatency, MonomialLatency
from ..wardrop.network import WardropNetwork


def pigou_network(degree: int = 1, constant: float = 1.0) -> WardropNetwork:
    """Build the Pigou network with latencies ``constant`` and ``x**degree``."""
    return WardropNetwork.from_edges(
        [
            ("s", "t", ConstantLatency(constant)),
            ("s", "t", MonomialLatency(1.0, degree)),
        ],
        [Commodity("s", "t", 1.0, name="pigou")],
    )


def pigou_equilibrium(network: WardropNetwork) -> FlowVector:
    """Return the exact Wardrop equilibrium of the (unit-demand) Pigou network.

    With constant latency ``c >= 1`` on the first link the whole demand takes
    the variable link as soon as ``1**degree <= c``; more generally the
    variable link absorbs ``min(1, c**(1/degree))``.
    """
    constant_latency = network.latency_function(network.paths[0].edges[0])
    variable_latency = network.latency_function(network.paths[1].edges[0])
    constant = constant_latency.value(0.0)
    degree = getattr(variable_latency, "degree", 1)
    on_variable = min(1.0, constant ** (1.0 / degree))
    return FlowVector(network, [1.0 - on_variable, on_variable])


def pigou_optimal_cost(degree: int = 1) -> float:
    """Return the social-optimum cost of the unit-demand, constant=1 Pigou net.

    Minimise ``x * x**d + (1 - x) * 1`` over ``x in [0, 1]``; the minimiser is
    ``x = (1/(d+1))**(1/d)`` which gives the closed-form optimum used in tests.
    """
    if degree < 1:
        raise ValueError("degree must be at least 1")
    x = (1.0 / (degree + 1.0)) ** (1.0 / degree)
    return x ** (degree + 1) + (1.0 - x)
