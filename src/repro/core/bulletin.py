"""The bulletin board: Mitzenmacher's model of stale information.

All information relevant to rerouting (the edge latencies, and for
proportional sampling also the flow shares) is posted on a *bulletin board*
at the beginning of every phase of fixed length ``T``.  Between updates the
agents see only the posted snapshot, no matter how much the true flow has
moved in the meantime.  Setting ``T = 0`` (or using
:class:`FreshInformationBoard`) recovers the up-to-date information model of
Section 3.1.

The board is deliberately a small, explicit object rather than a flag on the
simulator: the finite-agent simulator, the fluid-limit integrator and the
best-response dynamics all share the same board implementation, so "what the
agents can see" is defined in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..wardrop.network import WardropNetwork


@dataclass(frozen=True)
class BoardSnapshot:
    """The information posted on the bulletin board at one update.

    Attributes
    ----------
    time:
        The time ``t_hat`` at which the snapshot was taken (phase start).
    path_flows:
        The flow vector at ``t_hat`` (needed by proportional sampling).
    edge_latencies:
        The edge latencies ``l_e(f_e(t_hat))`` as posted.
    path_latencies:
        The path latencies computed from the posted edge latencies.
    """

    time: float
    path_flows: np.ndarray
    edge_latencies: np.ndarray
    path_latencies: np.ndarray


class BulletinBoard:
    """A bulletin board refreshed every ``update_period`` time units.

    The owner drives it by calling :meth:`maybe_update` with the current time
    and live flow; the board decides whether a refresh is due.  ``phase_index``
    counts completed refreshes, which the convergence-time analyses use as the
    round counter ("number of update periods").
    """

    def __init__(self, network: WardropNetwork, update_period: float):
        if update_period <= 0:
            raise ValueError("update period must be positive; use FreshInformationBoard for T=0")
        self.network = network
        self.update_period = float(update_period)
        self._snapshot: Optional[BoardSnapshot] = None
        self.phase_index = -1

    @property
    def snapshot(self) -> BoardSnapshot:
        if self._snapshot is None:
            raise RuntimeError("the bulletin board has never been updated")
        return self._snapshot

    def phase_start(self, time: float) -> float:
        """Return ``t_hat = floor(t / T) * T``, the start of the phase containing t."""
        return np.floor(time / self.update_period) * self.update_period

    def needs_update(self, time: float) -> bool:
        """Return True if a refresh is due at ``time``."""
        if self._snapshot is None:
            return True
        return self.phase_start(time) > self._snapshot.time + 1e-12

    def post(self, time: float, path_flows: np.ndarray) -> BoardSnapshot:
        """Unconditionally refresh the board with the given live state."""
        edge_flows = self.network.edge_flows(path_flows)
        edge_latencies = self.network.edge_latencies(edge_flows)
        snapshot = BoardSnapshot(
            time=self.phase_start(time),
            path_flows=np.asarray(path_flows, dtype=float).copy(),
            edge_latencies=edge_latencies,
            path_latencies=self.network.path_latencies_from_edge_latencies(edge_latencies),
        )
        self._snapshot = snapshot
        self.phase_index += 1
        return snapshot

    def maybe_update(self, time: float, path_flows: np.ndarray) -> bool:
        """Refresh the board if a new phase has begun; return whether it did."""
        if self.needs_update(time):
            self.post(time, path_flows)
            return True
        return False


class FreshInformationBoard(BulletinBoard):
    """A degenerate board that always shows the live state (the ``T -> 0`` limit).

    Used to run the same simulator code for the up-to-date information
    results (Theorem 2) without special-casing.
    """

    def __init__(self, network: WardropNetwork):
        # The update period is irrelevant; pick 1 to satisfy the base class.
        super().__init__(network, update_period=1.0)

    def needs_update(self, time: float) -> bool:
        return True

    def phase_start(self, time: float) -> float:
        return time
