"""E8 -- throughput of the batched engine vs. the scalar simulation loop.

The batched engine integrates a whole ensemble of replicas as one stacked
``(B, P)`` array -- including *multi-network* ensembles where every replica
routes on its own same-topology instance with different latency
coefficients.  This benchmark builds the acceptance workload of the
family-batching layer: a 64-case two-link sweep whose slope coefficient
``beta`` differs per case, run once as one `NetworkFamily` batched
integration and once through the per-case scalar loop.  The batched path
must be at least 10x faster and bit-equivalent to the scalar runs; in
practice the gap is well over an order of magnitude.

The scalar baseline is timed on an 8-case subsample to keep the benchmark
quick: every case has the same horizon, resolution and nearly the same
period, hence the same per-case cost, so the subsample rate is an unbiased
estimate of the full scalar rate.

Script mode (``python benchmarks/bench_batch_throughput.py [--smoke]``)
additionally measures the *telemetry overhead guarantee*: the instrumented
engines must cost < 2% extra when no telemetry session is active.  The check
combines an end-to-end enabled-vs-disabled timing with a deterministic
microbenchmark bound (null-op cost x instrumentation calls per run).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import print_table
from repro.batch import distance_stop, simulate_batch
from repro.core import LinearMigration, ReroutingPolicy, UniformSampling, simulate
from repro.experiments import group_key
from repro.analysis.sweeps import SweepCase
from repro.instances import two_link_network
from repro.telemetry import get_telemetry, telemetry_session
from repro.telemetry.bench import bench_timer, emit_record
from repro.wardrop import FlowVector, NetworkFamily

NUM_CASES = 64
SCALAR_SAMPLE = 8
PERIODS = [0.08, 0.1]
HORIZON = 2.0
STEPS_PER_PHASE = 20
BETAS = np.linspace(2.0, 6.0, NUM_CASES)


def build_family_sweep():
    """Return the 64-network family and its per-case configurations."""
    family = NetworkFamily([two_link_network(beta=beta) for beta in BETAS])
    # One shared policy for the whole family: uniform sampling is
    # network-independent and the linear migration rule uses the family-wide
    # latency bound, so the fully vectorised sigma/mu path applies.
    policy = ReroutingPolicy(
        sampling=UniformSampling(),
        migration=LinearMigration(family.max_latency()),
        name="uniform+linear(family)",
    )
    rng = np.random.default_rng(42)
    starts = [FlowVector.random(network, rng) for network in family.networks]
    periods = [PERIODS[i % len(PERIODS)] for i in range(NUM_CASES)]
    return family, policy, starts, periods


@pytest.mark.experiment("E8")
def test_family_batch_vs_scalar_throughput(report_header):
    family, policy, starts, periods = build_family_sweep()

    # The runner fuses all 64 same-topology/different-coefficient cases into
    # one batch group -- no process pool involved.
    cases = [
        SweepCase({"beta": float(BETAS[i])}, family.member(i), policy, periods[i], HORIZON)
        for i in range(NUM_CASES)
    ]
    assert len({group_key(case) for case in cases}) == 1

    scalar_final = []
    with bench_timer(
        "bench_batch_throughput", "E8 scalar loop",
        engine="fluid-scalar", instance="two-links-family", cases=SCALAR_SAMPLE,
    ) as scalar_timer:
        for row in range(SCALAR_SAMPLE):
            trajectory = simulate(
                family.member(row), policy, update_period=periods[row], horizon=HORIZON,
                initial_flow=starts[row], steps_per_phase=STEPS_PER_PHASE,
            )
            scalar_final.append(trajectory.final_flow.values())
    scalar_seconds = scalar_timer.seconds
    scalar_rate = scalar_timer.rate

    with bench_timer(
        "bench_batch_throughput", "E8 family batch",
        engine="fluid-batch", instance="two-links-family", cases=NUM_CASES,
    ) as batch_timer:
        result = simulate_batch(
            family, policy, periods, HORIZON,
            initial_flows=starts, steps_per_phase=STEPS_PER_PHASE,
        )
    batch_seconds = batch_timer.seconds
    batch_rate = batch_timer.rate

    speedup = batch_rate / scalar_rate
    print_table(
        [
            {
                "engine": "scalar loop",
                "cases": SCALAR_SAMPLE,
                "seconds": scalar_seconds,
                "cases/sec": scalar_rate,
            },
            {
                "engine": "BatchSimulator (family)",
                "cases": NUM_CASES,
                "seconds": batch_seconds,
                "cases/sec": batch_rate,
            },
            {"engine": "speedup", "cases/sec": speedup},
        ],
        title=(
            f"E8: family-batched vs scalar throughput "
            f"({NUM_CASES}-case two-link beta sweep)"
        ),
    )

    # The batched rows must agree with the scalar runs they replace.
    final = result.final_flows()
    for row, scalar_values in enumerate(scalar_final):
        assert np.allclose(final[row], scalar_values, atol=1e-10)
    assert speedup >= 10.0, f"family-batched engine only {speedup:.1f}x faster"


@pytest.mark.experiment("E8")
def test_early_stopping_saves_steps_on_convergence_sweep(report_header):
    """Frozen rows skip work: a convergence sweep with stop_when finishes
    integrating far fewer phases than the full-horizon run."""
    family, policy, _, _ = build_family_sweep()
    starts = [FlowVector(network, [0.9, 0.1]) for network in family.networks]
    periods = [0.1] * NUM_CASES
    horizon = 40.0
    targets = [FlowVector(network, [0.5, 0.5]) for network in family.networks]
    condition = distance_stop(targets, 1e-3)

    with bench_timer(
        "bench_batch_throughput", "E8b stop_when",
        engine="fluid-batch", instance="two-links-family", cases=NUM_CASES,
        early_stopping=True,
    ) as stopped_timer:
        stopped = simulate_batch(
            family, policy, periods, horizon,
            initial_flows=starts, steps_per_phase=10, stop_when=condition,
        )
    stopped_seconds = stopped_timer.seconds

    with bench_timer(
        "bench_batch_throughput", "E8b full horizon",
        engine="fluid-batch", instance="two-links-family", cases=NUM_CASES,
        early_stopping=False,
    ) as full_timer:
        full = simulate_batch(
            family, policy, periods, horizon, initial_flows=starts, steps_per_phase=10,
        )
    full_seconds = full_timer.seconds

    integrated_phases = int((stopped.num_points - 1).sum())
    full_phases = int((full.num_points - 1).sum())
    print_table(
        [
            {"run": "stop_when", "phases": integrated_phases, "seconds": stopped_seconds},
            {"run": "full horizon", "phases": full_phases, "seconds": full_seconds},
        ],
        title="E8b: early stopping on a 64-row convergence sweep",
    )
    assert stopped.stopped_rows().all()
    assert integrated_phases < full_phases / 2


@pytest.mark.experiment("E8")
def test_benchmark_family_batched_sweep(benchmark, report_header):
    family, policy, starts, periods = build_family_sweep()

    def run():
        return simulate_batch(
            family, policy, periods, HORIZON,
            initial_flows=starts, steps_per_phase=STEPS_PER_PHASE,
        )

    result = benchmark(run)
    assert result.batch_size == NUM_CASES


# Script mode: the telemetry overhead guarantee ------------------------------

OVERHEAD_BUDGET = 0.02  # instrumentation must cost < 2% with telemetry off


def _best_run_seconds(repeats: int) -> float:
    """Best-of-``repeats`` wall time of the family-batched integration."""
    family, policy, starts, periods = build_family_sweep()
    best = float("inf")
    for _ in range(repeats):
        begin = time.perf_counter()
        simulate_batch(
            family, policy, periods, HORIZON,
            initial_flows=starts, steps_per_phase=STEPS_PER_PHASE,
        )
        best = min(best, time.perf_counter() - begin)
    return best


def _null_op_seconds(samples: int = 50_000) -> float:
    """Measure the cost of one disabled span + counter + event round."""
    tele = get_telemetry()
    assert not tele.enabled, "overhead microbenchmark needs telemetry off"
    counter = tele.counter("bench.overhead")
    begin = time.perf_counter()
    for _ in range(samples):
        with tele.span("phase", index=0, active_rows=64):
            counter.add()
            tele.event("bulletin_refresh", rows=64)
    return (time.perf_counter() - begin) / samples


def measure_overhead(repeats: int):
    """Return the overhead report rows of the disabled-telemetry guarantee.

    Two complementary measurements:

    * ``measured``: end-to-end enabled-vs-disabled delta of the batched
      integration (noisy on CI runners -- reported, not asserted);
    * ``bounded``: a deterministic upper bound with telemetry *off* -- the
      per-phase null-op cost times the instrumentation call volume of one
      run, relative to its wall time.  This is the < 2% assertion.
    """
    # Warm-up pass so allocator/JIT-ish effects do not bias the first timing.
    _best_run_seconds(1)
    disabled = _best_run_seconds(repeats)
    with telemetry_session():
        enabled = _best_run_seconds(repeats)
    null_op = _null_op_seconds()
    # One run integrates <= ceil(HORIZON / min period) phases; each phase
    # issues a handful of span/counter/event calls (phase + field_eval +
    # integrate + refresh bookkeeping).  Budget 8 null-op rounds per phase.
    phases = int(np.ceil(HORIZON / min(PERIODS)))
    bound = phases * 8 * null_op / disabled
    measured = enabled / disabled - 1.0
    return disabled, enabled, measured, bound


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="fewer repeats (CI smoke job)"
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write the enabled-telemetry pass's JSONL trace to this file",
    )
    args = parser.parse_args(argv)
    repeats = 2 if args.smoke else 5

    disabled, enabled, measured, bound = measure_overhead(repeats)
    if args.trace is not None:
        with telemetry_session(trace_path=args.trace):
            _best_run_seconds(1)
        print(f"wrote trace {args.trace}")

    family_batch = bench_timer(
        "bench_batch_throughput", "overhead baseline",
        engine="fluid-batch", instance="two-links-family", cases=NUM_CASES,
    )
    family_batch.seconds = disabled
    emit_record(family_batch.record())

    print_table(
        [
            {
                "telemetry": "off",
                "seconds": disabled,
                "cases/sec": NUM_CASES / disabled,
                "overhead": "-",
            },
            {
                "telemetry": "on",
                "seconds": enabled,
                "cases/sec": NUM_CASES / enabled,
                "overhead": f"{measured:+.2%}",
            },
            {
                "telemetry": "off (bound)",
                "seconds": disabled,
                "cases/sec": NUM_CASES / disabled,
                "overhead": f"{bound:.2%}",
            },
        ],
        title=(
            f"telemetry overhead, family-batched sweep "
            f"({NUM_CASES} cases, best of {repeats})"
        ),
    )
    if bound >= OVERHEAD_BUDGET:
        print(
            f"FAIL: disabled-telemetry overhead bound {bound:.2%} "
            f">= budget {OVERHEAD_BUDGET:.0%}"
        )
        return 1
    print(
        f"OK: disabled-telemetry overhead bound {bound:.2%} "
        f"< budget {OVERHEAD_BUDGET:.0%} "
        f"(measured enabled-vs-disabled delta {measured:+.2%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
