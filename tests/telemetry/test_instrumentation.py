"""Every engine emits its span tree and counters -- without changing results.

Each test runs one engine twice on identical inputs, once with an active
telemetry session and once without, and asserts (a) bit-identical outputs,
and (b) the expected ``engine_run``/``phase`` span structure and counter
namespace in the recorded session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import simulate_agent_batch, simulate_batch
from repro.core import simulate, simulate_agents, uniform_policy
from repro.instances import sioux_falls_network, two_link_network
from repro.largescale import (
    ActivePathSet,
    ShortestPathOracle,
    simulate_with_column_generation,
)
from repro.solvers import solve_edge_flow_equilibrium
from repro.telemetry import telemetry_session
from repro.wardrop import FlowVector


@pytest.fixture
def workload():
    network = two_link_network(beta=2.0)
    policy = uniform_policy(network)
    start = FlowVector(network, [0.8, 0.2])
    return network, policy, start


def span_names(tele):
    return {record["name"] for record in tele.tracer.records()}


def engine_runs(tele):
    return [
        record
        for record in tele.tracer.records()
        if record["name"] == "engine_run"
    ]


class TestFluidScalar:
    def test_spans_counters_and_bit_identity(self, workload):
        network, policy, start = workload
        kwargs = dict(update_period=0.2, horizon=2.0, initial_flow=start, steps_per_phase=10)
        plain = simulate(network, policy, **kwargs)
        with telemetry_session() as tele:
            traced = simulate(network, policy, **kwargs)
        assert np.array_equal(plain.flow_matrix(), traced.flow_matrix())
        assert {"engine_run", "phase", "field_eval", "integrate"} <= span_names(tele)
        (run,) = engine_runs(tele)
        assert run["attrs"]["engine"] == "fluid-scalar"
        flat = tele.metrics.flatten()
        assert flat["fluid.phases_integrated"] == 10
        assert flat["fluid.bulletin_refreshes"] >= 1


class TestAgents:
    def test_spans_counters_and_bit_identity(self, workload):
        network, policy, start = workload
        kwargs = dict(num_agents=200, update_period=0.2, horizon=2.0,
                      initial_flow=start, seed=7)
        plain = simulate_agents(network, policy, **kwargs)
        with telemetry_session() as tele:
            traced = simulate_agents(network, policy, **kwargs)
        assert np.array_equal(plain.flow_matrix(), traced.flow_matrix())
        (run,) = engine_runs(tele)
        assert run["attrs"]["engine"] == "agents"
        assert run["attrs"]["agents"] == 200
        flat = tele.metrics.flatten()
        assert flat["agents.events"] > 0
        assert flat["agents.phases_integrated"] > 0


class TestFluidBatch:
    def test_spans_counters_and_bit_identity(self, workload):
        network, policy, start = workload
        periods = [0.2, 0.25, 0.4]
        kwargs = dict(initial_flows=start, steps_per_phase=10)
        plain = simulate_batch(network, policy, periods, 2.0, **kwargs)
        with telemetry_session() as tele:
            traced = simulate_batch(network, policy, periods, 2.0, **kwargs)
        for row in range(len(periods)):
            assert np.array_equal(plain.flow_matrix(row), traced.flow_matrix(row))
        (run,) = engine_runs(tele)
        assert run["attrs"]["engine"] == "fluid-batch"
        assert run["attrs"]["rows"] == 3
        assert run["attrs"]["phases_integrated"] > 0
        flat = tele.metrics.flatten()
        assert flat["batch.phases_integrated"] == run["attrs"]["phases_integrated"]
        assert flat["batch.runs"] == 1


class TestAgentsBatch:
    def test_spans_counters_and_bit_identity(self, workload):
        network, policy, start = workload
        kwargs = dict(num_agents=[100, 150], update_periods=0.25, horizons=2.0,
                      initial_flows=start, seeds=[3, 4])
        plain = simulate_agent_batch(network, policy, **kwargs)
        with telemetry_session() as tele:
            traced = simulate_agent_batch(network, policy, **kwargs)
        for row in range(2):
            assert np.array_equal(plain.flow_matrix(row), traced.flow_matrix(row))
        (run,) = engine_runs(tele)
        assert run["attrs"]["engine"] == "agents-batch"
        assert run["attrs"]["rows"] == 2
        assert run["attrs"]["agents"] == 250
        flat = tele.metrics.flatten()
        assert flat["agents_batch.events"] > 0
        assert flat["agents_batch.runs"] == 1


class TestColumnGeneration:
    def test_spans_counters_and_bit_identity(self):
        network = sioux_falls_network(max_od_pairs=10)

        def build():
            return ActivePathSet.from_network(sioux_falls_network(max_od_pairs=10))

        policy = uniform_policy(network)
        kwargs = dict(update_period=0.2, horizon=1.0, steps_per_phase=5)
        plain = simulate_with_column_generation(build(), policy, **kwargs)
        with telemetry_session() as tele:
            traced = simulate_with_column_generation(build(), policy, **kwargs)
        assert np.array_equal(
            plain.final_flow.values(), traced.final_flow.values()
        )
        assert plain.total_columns_added == traced.total_columns_added
        (run,) = engine_runs(tele)
        assert run["attrs"]["engine"] == "column-generation"
        assert run["attrs"]["final_paths"] == traced.network.num_paths
        assert "column_generation_round" in span_names(tele)
        flat = tele.metrics.flatten()
        assert flat["cg.phases_integrated"] > 0
        assert flat["cg.columns_added"] == traced.total_columns_added


class TestEdgeFrankWolfe:
    def test_gap_series_and_bit_identity(self):
        network = sioux_falls_network(max_od_pairs=10)
        oracle = ShortestPathOracle.for_network(network)
        kwargs = dict(tolerance=1e-3, oracle=oracle)
        plain = solve_edge_flow_equilibrium(network, **kwargs)
        with telemetry_session() as tele:
            traced = solve_edge_flow_equilibrium(network, **kwargs)
        assert np.array_equal(plain.edge_flows, traced.edge_flows)
        assert plain.iterations == traced.iterations
        (run,) = engine_runs(tele)
        assert run["attrs"]["engine"] == "edge-fw"
        assert run["attrs"]["iterations"] == traced.iterations
        assert "fw_iteration" in span_names(tele)
        flat = tele.metrics.flatten()
        assert flat["fw.iterations"] == traced.iterations
        # The gap-vs-wall-time curve is recorded point by point.
        series = tele.metrics.series_of("fw.relative_gap")
        assert len(series) == traced.iterations
        times = [x for x, _ in series.points]
        assert times == sorted(times)
        assert series.points[-1][1] == pytest.approx(traced.relative_gap)
        # The series is annotated with the solver method that produced it.
        assert series.attrs["method"] == "fw"

    def test_gap_series_carries_the_accelerated_method(self):
        network = sioux_falls_network(max_od_pairs=10)
        oracle = ShortestPathOracle.for_network(network)
        with telemetry_session() as tele:
            traced = solve_edge_flow_equilibrium(
                network, tolerance=1e-3, oracle=oracle, method="bfw"
            )
        assert traced.method == "bfw"
        (run,) = engine_runs(tele)
        assert run["attrs"]["method"] == "bfw"
        assert tele.metrics.series_of("fw.relative_gap").attrs["method"] == "bfw"
