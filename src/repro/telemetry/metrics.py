"""The metrics registry: counters, gauges, histograms and series.

Engines update metrics at phase boundaries (never inside integration
loops): phases integrated, rows frozen by ``stop_when``, column-generation
columns added/invalidated, agent events per phase, the Frank--Wolfe
duality-gap trajectory.  The registry flattens into one flat
``{name: value}`` dict that merges into :class:`~repro.analysis.sweeps.
SweepResult` rows and the CSV/JSONL persistence, and renders into a
``reporting.py`` summary table.

Instruments are created on first use (``registry.counter("x")``), so call
sites never need registration boilerplate.  The :class:`NullMetrics`
registry hands out shared no-op instruments and is the default when no
telemetry session is active.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]


class Counter:
    """A monotonically increasing count (events, phases, columns...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement (batch size, active paths...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = float("nan")

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Count/sum/min/max/percentile summary of observed values.

    Samples are retained (engines observe at phase boundaries, so the
    volume is a handful of values per run, never per sub-step), which keeps
    the percentiles exact rather than bucketed.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (linear interpolation); nan when empty."""
        if not self.samples:
            return float("nan")
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        position = (q / 100.0) * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


class Series:
    """An append-only ``(x, y)`` trajectory (e.g. duality gap vs time).

    A series may carry attributes (``annotate(method="cfw")``): small
    key/value facts about how the points were produced, exported alongside
    the points in the trace snapshot.  Re-annotating overwrites per key, so
    the attributes describe the most recent producer.
    """

    __slots__ = ("points", "attrs")

    def __init__(self) -> None:
        self.points: List[Tuple[float, float]] = []
        self.attrs: Dict[str, Any] = {}

    def append(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __len__(self) -> int:
        return len(self.points)


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.series: Dict[str, Series] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    def series_of(self, name: str) -> Series:
        instrument = self.series.get(name)
        if instrument is None:
            instrument = self.series[name] = Series()
        return instrument

    # Export -----------------------------------------------------------------

    def flatten(self, prefix: str = "") -> Dict[str, float]:
        """Return one flat ``{name: value}`` dict of every instrument.

        Histograms expand into ``_count`` / ``_mean`` / ``_max`` keys and
        series into their last ``y`` plus a ``_points`` length; the result
        merges straight into sweep rows and CSV/JSONL persistence.
        """
        flat: Dict[str, float] = {}
        for name, counter in self.counters.items():
            flat[prefix + name] = counter.value
        for name, gauge in self.gauges.items():
            flat[prefix + name] = gauge.value
        for name, histogram in self.histograms.items():
            flat[prefix + name + "_count"] = histogram.count
            flat[prefix + name + "_mean"] = histogram.mean
            flat[prefix + name + "_max"] = (
                histogram.maximum if histogram.count else float("nan")
            )
        for name, series in self.series.items():
            flat[prefix + name + "_points"] = len(series)
            if series.points:
                flat[prefix + name + "_last"] = series.points[-1][1]
        return flat

    def rows(self) -> List[Dict[str, object]]:
        """Return one table row per instrument (for ``reporting.render_table``)."""
        rows: List[Dict[str, object]] = []
        for name in sorted(self.counters):
            rows.append({"metric": name, "type": "counter", "value": self.counters[name].value})
        for name in sorted(self.gauges):
            rows.append({"metric": name, "type": "gauge", "value": self.gauges[name].value})
        for name in sorted(self.histograms):
            histogram = self.histograms[name]
            rows.append(
                {
                    "metric": name,
                    "type": "histogram",
                    "value": histogram.mean,
                    "count": histogram.count,
                    "min": histogram.minimum if histogram.count else float("nan"),
                    "max": histogram.maximum if histogram.count else float("nan"),
                    "p50": histogram.percentile(50.0),
                    "p95": histogram.percentile(95.0),
                }
            )
        for name in sorted(self.series):
            series = self.series[name]
            rows.append(
                {
                    "metric": name,
                    "type": "series",
                    "value": series.points[-1][1] if series.points else float("nan"),
                    "count": len(series),
                }
            )
        return rows

    def to_record(self) -> Dict[str, Any]:
        """Return the registry snapshot as one trace-file record."""
        return {
            "kind": "metrics",
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.minimum if h.count else None,
                    "max": h.maximum if h.count else None,
                    "p50": h.percentile(50.0) if h.count else None,
                    "p95": h.percentile(95.0) if h.count else None,
                }
                for name, h in self.histograms.items()
            },
            "series": {name: s.points for name, s in self.series.items()},
            "series_attrs": {
                name: dict(s.attrs) for name, s in self.series.items() if s.attrs
            },
        }


class _NullInstrument:
    """Shared no-op counter/gauge/histogram/series."""

    __slots__ = ()

    value = 0.0
    count = 0
    points: List[Tuple[float, float]] = []

    def add(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def percentile(self, q: float) -> float:
        return float("nan")

    def append(self, x: float, y: float) -> None:
        pass

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """The disabled registry: every instrument is the shared no-op."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def series_of(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def flatten(self, prefix: str = "") -> Dict[str, float]:
        return {}

    def rows(self) -> List[Dict[str, object]]:
        return []


NULL_METRICS = NullMetrics()
