"""E12 -- the accelerated equilibrium solver suite on Sioux Falls.

Two benchmark-backed acceptance bars for the solver suite:

* **conjugate acceleration** -- plain, conjugate and biconjugate
  Frank--Wolfe (``method="fw" | "cfw" | "bfw"``) race to relative duality
  gap ``1e-4`` on the full Sioux Falls instance (528 OD pairs, edge space).
  The conjugate methods must converge in at most **1/5** the plain-FW
  iteration count -- the Mitradjieva--Lindberg direction correction removes
  the vertex zig-zag that gives plain FW its ``1/k`` tail.
* **warm-started tracking** -- :func:`repro.scenarios.interval_equilibria`
  on the ``sioux-falls-incident`` preset, warm vs cold at equal tolerance:
  seeding each interval's solve from the previous interval's equilibrium
  must cut the summed solver iterations (consecutive environments are
  close, so the seed starts deep inside the basin).

Each timed solve emits a ``repro-bench/1`` record carrying ``method``,
``gap`` and ``iterations``; ``repro report --bench`` pivots those records
into the method x instance gap-vs-time matrix the CI job summary shows next
to the throughput matrix.

Run as a script (the CI smoke job does) or through pytest:

    PYTHONPATH=src python benchmarks/bench_solvers.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_solvers.py -q
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import print_table
from repro.instances import sioux_falls_network
from repro.largescale import ShortestPathOracle
from repro.scenarios import get_scenario, interval_equilibria
from repro.solvers import EDGE_METHODS, solve_edge_flow_equilibrium
from repro.telemetry import telemetry_session
from repro.telemetry.bench import bench_timer

# The conjugate-acceleration bar: CFW/BFW must reach the race tolerance in
# at most this fraction of the plain-FW iteration count.
ACCELERATION_FACTOR = 5

RACE_TOLERANCE = 1e-4
SMOKE_RACE_TOLERANCE = 1e-3
TRACKING_TOLERANCE = 1e-3
TRACKING_HORIZON = 12.0


def method_race(tolerance: float = RACE_TOLERANCE) -> List[dict]:
    """Race fw/cfw/bfw to ``tolerance`` on Sioux Falls; one row per method."""
    network = sioux_falls_network()
    oracle = ShortestPathOracle.for_network(network)
    rows = []
    for method in EDGE_METHODS:
        with bench_timer(
            "bench_solvers", f"sioux-falls {method}",
            engine=f"edge-{method}", instance="sioux-falls", cases=1,
            method=method,
        ) as timer:
            result = solve_edge_flow_equilibrium(
                network, tolerance=tolerance, oracle=oracle, method=method
            )
            # The record is emitted when the block exits; attaching the
            # diagnostics here puts gap/iterations on the record the
            # `repro report --bench` gap matrix pivots on.
            timer.extra.update(gap=result.relative_gap, iterations=result.iterations)
        rows.append(
            {
                "method": method,
                "iterations": result.iterations,
                "relative_gap": result.relative_gap,
                "seconds": round(timer.seconds, 2),
                "converged": result.converged,
            }
        )
    return rows


def warm_start_comparison(tolerance: float = TRACKING_TOLERANCE) -> List[dict]:
    """Warm vs cold ``interval_equilibria`` on the incident preset."""
    network = sioux_falls_network()
    oracle = ShortestPathOracle.for_network(network)
    scenario = get_scenario("sioux-falls-incident", network)
    rows = []
    for method in EDGE_METHODS:
        totals = {}
        for warm in (False, True):
            label = "warm" if warm else "cold"
            with bench_timer(
                "bench_solvers", f"tracking {method} {label}",
                engine=f"edge-{method}", instance="sioux-falls-incident",
                cases=1, method=method, warm_start=warm,
            ) as timer:
                track = interval_equilibria(
                    network, scenario, horizon=TRACKING_HORIZON, space="edge",
                    tolerance=tolerance, oracle=oracle, cache={},
                    method=method, warm_start=warm,
                )
                timer.extra.update(total_iterations=track.total_iterations)
            totals[label] = track.total_iterations
        rows.append(
            {
                "method": method,
                "cold_iterations": totals["cold"],
                "warm_iterations": totals["warm"],
                "saved": totals["cold"] - totals["warm"],
            }
        )
    return rows


def run_benchmark(smoke: bool = False) -> dict:
    race_tolerance = SMOKE_RACE_TOLERANCE if smoke else RACE_TOLERANCE
    race = method_race(race_tolerance)
    print_table(
        race,
        title=(
            f"E12: solver method race on Sioux Falls "
            f"(edge space, relative gap <= {race_tolerance:g})"
        ),
    )
    warm = warm_start_comparison()
    print_table(
        warm,
        title=(
            "E12: warm vs cold interval_equilibria on sioux-falls-incident "
            f"(tolerance {TRACKING_TOLERANCE:g}, summed solver iterations)"
        ),
    )
    by_method = {row["method"]: row for row in race}
    fw_iters = by_method["fw"]["iterations"]
    for method in ("cfw", "bfw"):
        speedup = fw_iters / by_method[method]["iterations"]
        print(f"{method}: {by_method[method]['iterations']} iterations "
              f"vs fw's {fw_iters} ({speedup:.1f}x fewer)")
    return {"race": race, "race_tolerance": race_tolerance, "warm_start": warm}


def test_conjugate_methods_accelerate():
    """Pytest entry: CFW/BFW reach 1e-4 in <= 1/5 the plain-FW iterations."""
    race = {row["method"]: row for row in method_race(RACE_TOLERANCE)}
    assert all(row["converged"] for row in race.values())
    assert all(row["relative_gap"] <= RACE_TOLERANCE for row in race.values())
    fw_iters = race["fw"]["iterations"]
    assert race["cfw"]["iterations"] * ACCELERATION_FACTOR <= fw_iters
    assert race["bfw"]["iterations"] * ACCELERATION_FACTOR <= fw_iters


def test_warm_start_cuts_tracking_iterations():
    """Pytest entry: warm-started tracking does measurably less solver work."""
    for row in warm_start_comparison(TRACKING_TOLERANCE):
        assert row["warm_iterations"] < row["cold_iterations"], row


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="race to 1e-3 instead of 1e-4 (CI-friendly)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry session and write its JSONL trace here",
    )
    args = parser.parse_args(argv)
    if args.trace is not None:
        with telemetry_session(trace_path=args.trace):
            run_benchmark(smoke=args.smoke)
        print(f"wrote trace {args.trace}")
    else:
        run_benchmark(smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
