"""E8 -- throughput of the batched engine vs. the scalar simulation loop.

The batched engine integrates a whole ensemble of replicas as one stacked
``(B, P)`` array -- including *multi-network* ensembles where every replica
routes on its own same-topology instance with different latency
coefficients.  This benchmark builds the acceptance workload of the
family-batching layer: a 64-case two-link sweep whose slope coefficient
``beta`` differs per case, run once as one `NetworkFamily` batched
integration and once through the per-case scalar loop.  The batched path
must be at least 10x faster and bit-equivalent to the scalar runs; in
practice the gap is well over an order of magnitude.

The scalar baseline is timed on an 8-case subsample to keep the benchmark
quick: every case has the same horizon, resolution and nearly the same
period, hence the same per-case cost, so the subsample rate is an unbiased
estimate of the full scalar rate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import print_table
from repro.batch import distance_stop, simulate_batch
from repro.core import LinearMigration, ReroutingPolicy, UniformSampling, simulate
from repro.experiments import group_key
from repro.analysis.sweeps import SweepCase
from repro.instances import two_link_network
from repro.wardrop import FlowVector, NetworkFamily

NUM_CASES = 64
SCALAR_SAMPLE = 8
PERIODS = [0.08, 0.1]
HORIZON = 2.0
STEPS_PER_PHASE = 20
BETAS = np.linspace(2.0, 6.0, NUM_CASES)


def build_family_sweep():
    """Return the 64-network family and its per-case configurations."""
    family = NetworkFamily([two_link_network(beta=beta) for beta in BETAS])
    # One shared policy for the whole family: uniform sampling is
    # network-independent and the linear migration rule uses the family-wide
    # latency bound, so the fully vectorised sigma/mu path applies.
    policy = ReroutingPolicy(
        sampling=UniformSampling(),
        migration=LinearMigration(family.max_latency()),
        name="uniform+linear(family)",
    )
    rng = np.random.default_rng(42)
    starts = [FlowVector.random(network, rng) for network in family.networks]
    periods = [PERIODS[i % len(PERIODS)] for i in range(NUM_CASES)]
    return family, policy, starts, periods


@pytest.mark.experiment("E8")
def test_family_batch_vs_scalar_throughput(report_header):
    family, policy, starts, periods = build_family_sweep()

    # The runner fuses all 64 same-topology/different-coefficient cases into
    # one batch group -- no process pool involved.
    cases = [
        SweepCase({"beta": float(BETAS[i])}, family.member(i), policy, periods[i], HORIZON)
        for i in range(NUM_CASES)
    ]
    assert len({group_key(case) for case in cases}) == 1

    begin = time.perf_counter()
    scalar_final = []
    for row in range(SCALAR_SAMPLE):
        trajectory = simulate(
            family.member(row), policy, update_period=periods[row], horizon=HORIZON,
            initial_flow=starts[row], steps_per_phase=STEPS_PER_PHASE,
        )
        scalar_final.append(trajectory.final_flow.values())
    scalar_seconds = time.perf_counter() - begin
    scalar_rate = SCALAR_SAMPLE / scalar_seconds

    begin = time.perf_counter()
    result = simulate_batch(
        family, policy, periods, HORIZON,
        initial_flows=starts, steps_per_phase=STEPS_PER_PHASE,
    )
    batch_seconds = time.perf_counter() - begin
    batch_rate = NUM_CASES / batch_seconds

    speedup = batch_rate / scalar_rate
    print_table(
        [
            {
                "engine": "scalar loop",
                "cases": SCALAR_SAMPLE,
                "seconds": scalar_seconds,
                "cases/sec": scalar_rate,
            },
            {
                "engine": "BatchSimulator (family)",
                "cases": NUM_CASES,
                "seconds": batch_seconds,
                "cases/sec": batch_rate,
            },
            {"engine": "speedup", "cases/sec": speedup},
        ],
        title=(
            f"E8: family-batched vs scalar throughput "
            f"({NUM_CASES}-case two-link beta sweep)"
        ),
    )

    # The batched rows must agree with the scalar runs they replace.
    final = result.final_flows()
    for row, scalar_values in enumerate(scalar_final):
        assert np.allclose(final[row], scalar_values, atol=1e-10)
    assert speedup >= 10.0, f"family-batched engine only {speedup:.1f}x faster"


@pytest.mark.experiment("E8")
def test_early_stopping_saves_steps_on_convergence_sweep(report_header):
    """Frozen rows skip work: a convergence sweep with stop_when finishes
    integrating far fewer phases than the full-horizon run."""
    family, policy, _, _ = build_family_sweep()
    starts = [FlowVector(network, [0.9, 0.1]) for network in family.networks]
    periods = [0.1] * NUM_CASES
    horizon = 40.0
    targets = [FlowVector(network, [0.5, 0.5]) for network in family.networks]
    condition = distance_stop(targets, 1e-3)

    begin = time.perf_counter()
    stopped = simulate_batch(
        family, policy, periods, horizon,
        initial_flows=starts, steps_per_phase=10, stop_when=condition,
    )
    stopped_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    full = simulate_batch(
        family, policy, periods, horizon, initial_flows=starts, steps_per_phase=10,
    )
    full_seconds = time.perf_counter() - begin

    integrated_phases = int((stopped.num_points - 1).sum())
    full_phases = int((full.num_points - 1).sum())
    print_table(
        [
            {"run": "stop_when", "phases": integrated_phases, "seconds": stopped_seconds},
            {"run": "full horizon", "phases": full_phases, "seconds": full_seconds},
        ],
        title="E8b: early stopping on a 64-row convergence sweep",
    )
    assert stopped.stopped_rows().all()
    assert integrated_phases < full_phases / 2


@pytest.mark.experiment("E8")
def test_benchmark_family_batched_sweep(benchmark, report_header):
    family, policy, starts, periods = build_family_sweep()

    def run():
        return simulate_batch(
            family, policy, periods, HORIZON,
            initial_flows=starts, steps_per_phase=STEPS_PER_PHASE,
        )

    result = benchmark(run)
    assert result.batch_size == NUM_CASES
