"""Unit tests for FlowVector: feasibility, derived latencies, constructors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.wardrop import FlowVector


class TestConstructors:
    def test_uniform_is_feasible(self, braess):
        flow = FlowVector.uniform(braess)
        flow.check_feasible()
        assert flow.values().sum() == pytest.approx(1.0)

    def test_single_path(self, braess):
        flow = FlowVector.single_path(braess, {0: 2})
        values = flow.values()
        assert values[2] == pytest.approx(1.0)
        assert values.sum() == pytest.approx(1.0)

    def test_single_path_rejects_bad_index(self, braess):
        with pytest.raises(ValueError):
            FlowVector.single_path(braess, {0: 99})

    def test_from_dict(self, two_links):
        path = two_links.paths[0]
        flow = FlowVector.from_dict(two_links, {path: 1.0})
        assert flow.flow_on(path) == pytest.approx(1.0)

    def test_random_is_feasible(self, layered):
        rng = np.random.default_rng(0)
        for _ in range(5):
            FlowVector.random(layered, rng).check_feasible()

    def test_wrong_length_rejected(self, two_links):
        with pytest.raises(ValueError):
            FlowVector(two_links, [1.0])


class TestFeasibility:
    def test_negative_flow_rejected(self, two_links):
        with pytest.raises(ValueError):
            FlowVector(two_links, [-0.1, 1.1])

    def test_demand_mismatch_rejected(self, two_links):
        with pytest.raises(ValueError):
            FlowVector(two_links, [0.3, 0.3])

    def test_is_feasible_boolean(self, two_links):
        assert FlowVector(two_links, [0.5, 0.5]).is_feasible()
        bad = FlowVector(two_links, [0.3, 0.3], validate=False)
        assert not bad.is_feasible()

    def test_projection_repairs_roundoff(self, two_links):
        noisy = FlowVector(two_links, [0.500001, 0.499999 - 1e-9], validate=False)
        repaired = noisy.projected()
        repaired.check_feasible()

    def test_projection_clips_negatives(self, two_links):
        noisy = FlowVector(two_links, [-0.01, 1.01], validate=False)
        repaired = noisy.projected()
        assert np.all(repaired.values() >= 0.0)
        repaired.check_feasible()


class TestDerivedQuantities:
    def test_two_link_latencies(self, two_links):
        flow = FlowVector(two_links, [0.75, 0.25])
        latencies = flow.path_latencies()
        assert latencies[0] == pytest.approx(0.25)  # beta=1: max(0, 0.75-0.5)
        assert latencies[1] == pytest.approx(0.0)

    def test_average_latency_matches_dot_product(self, two_links):
        flow = FlowVector(two_links, [0.75, 0.25])
        expected = 0.75 * 0.25 + 0.25 * 0.0
        assert flow.average_latency() == pytest.approx(expected)

    def test_commodity_average_and_min(self, two_links):
        flow = FlowVector(two_links, [0.75, 0.25])
        assert flow.commodity_min_latency(0) == pytest.approx(0.0)
        assert flow.commodity_average_latency(0) == pytest.approx(flow.average_latency())

    def test_max_used_latency_ignores_unused_paths(self, pigou):
        # All flow on the constant-latency link; the variable link is unused.
        flow = FlowVector(pigou, [1.0, 0.0])
        assert flow.max_used_latency() == pytest.approx(1.0)

    def test_edge_flows_match_incidence(self, braess):
        flow = FlowVector.uniform(braess)
        assert np.allclose(flow.edge_flows(), braess.edge_flows(flow.values()))


class TestArithmetic:
    def test_blend_stays_feasible(self, braess):
        a = FlowVector.uniform(braess)
        b = FlowVector.single_path(braess, {0: 0})
        mix = a.blend(b, 0.3)
        mix.check_feasible()
        assert np.allclose(mix.values(), 0.7 * a.values() + 0.3 * b.values())

    def test_blend_rejects_bad_weight(self, braess):
        a = FlowVector.uniform(braess)
        with pytest.raises(ValueError):
            a.blend(a, 1.5)

    def test_blend_rejects_other_network(self, braess, two_links):
        with pytest.raises(ValueError):
            FlowVector.uniform(braess).blend(FlowVector.uniform(two_links), 0.5)

    def test_distance(self, two_links):
        a = FlowVector(two_links, [1.0, 0.0])
        b = FlowVector(two_links, [0.0, 1.0])
        assert a.distance_to(b) == pytest.approx(2.0)
        assert a.distance_to(a) == pytest.approx(0.0)

    def test_with_values(self, two_links):
        flow = FlowVector.uniform(two_links)
        other = flow.with_values(np.array([0.25, 0.75]))
        assert other[0] == pytest.approx(0.25)
