"""Shortest-path oracle over the full graph, and all-or-nothing loading.

Large instances are driven by *oracles* instead of path enumeration: given
the current (or posted) edge costs, a Dijkstra query returns one cheapest
``s -> t`` path, and loading every commodity's whole demand onto its
cheapest path yields the classical all-or-nothing flow -- the direction
oracle of Frank--Wolfe and the column generator of
:class:`~repro.largescale.columns.ActivePathSet`.

The oracle owns the canonical ordering of *all* graph edges (the restricted
network's :attr:`~repro.wardrop.network.WardropNetwork.edges` only lists
edges on enumerated paths) and exposes cost vectors over that order.

First-thru-node semantics (TNTP): road-network files mark the first node
that real traffic may pass *through*; lower-numbered nodes are zone
centroids that can appear only as origins or destinations.  The oracle
enforces this during the Dijkstra expansion.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..wardrop.commodity import Commodity
from ..wardrop.network import LATENCY_ATTR
from ..wardrop.paths import EdgeKey, Path

INFINITY = float("inf")


@dataclass(frozen=True)
class AllOrNothingLoad:
    """The result of one all-or-nothing assignment.

    ``edge_flows`` is indexed by the oracle's edge order; ``sptt`` is the
    shortest-path travel time ``sum_i r_i * dist(s_i, t_i)`` under the query
    costs -- the lower bound that relative duality gaps are measured against.
    """

    edge_flows: np.ndarray
    sptt: float


class ShortestPathOracle:
    """Dijkstra queries against pluggable edge costs on a fixed multigraph.

    Parameters
    ----------
    graph:
        The full ``networkx.MultiDiGraph`` (parallel edges allowed).
    commodities:
        The OD pairs whose sources group the one-to-many queries.
    first_thru_node:
        Optional TNTP-style centroid bound: integer nodes strictly below it
        may start or end a path but never be passed through.
    """

    def __init__(
        self,
        graph: nx.MultiDiGraph,
        commodities: Sequence[Commodity],
        first_thru_node: Optional[int] = None,
    ):
        self.graph = graph
        self.commodities: List[Commodity] = list(commodities)
        self.first_thru_node = first_thru_node
        # Canonical edge order: the same string sort PathSet.edges() uses, so
        # positions are stable across restricted networks of one graph.
        self.edges: List[EdgeKey] = sorted(graph.edges(keys=True), key=str)
        self.edge_index: Dict[EdgeKey, int] = {e: i for i, e in enumerate(self.edges)}
        self._adjacency: Dict[Hashable, List[Tuple[int, Hashable]]] = {
            node: [] for node in graph.nodes
        }
        for index, (u, v, _key) in enumerate(self.edges):
            self._adjacency[u].append((index, v))
        self._sinks_by_source: Dict[Hashable, List[Tuple[int, Hashable]]] = {}
        for i, commodity in enumerate(self.commodities):
            if commodity.source not in self._adjacency or commodity.sink not in self._adjacency:
                raise ValueError(
                    f"commodity endpoints {commodity.source!r}->{commodity.sink!r} "
                    "missing from graph"
                )
            self._sinks_by_source.setdefault(commodity.source, []).append(
                (i, commodity.sink)
            )

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def _blocked_through(self, node: Hashable) -> bool:
        """True if ``node`` is a centroid that may not be passed through."""
        return (
            self.first_thru_node is not None
            and isinstance(node, (int, np.integer))
            and node < self.first_thru_node
        )

    # Cost vectors ----------------------------------------------------------

    def free_flow_costs(self, network=None) -> np.ndarray:
        """Return every edge's latency at zero flow (the Dijkstra seed costs).

        With a ``network`` the (override-aware) ``latency_function`` lookup
        is used; without one the latencies are read straight off the graph's
        edge attributes -- the pre-network situation of the TNTP loader and
        of :class:`~repro.largescale.columns.ActivePathSet` seeding.
        """
        if network is not None:
            return np.array(
                [network.latency_function(edge).value(0.0) for edge in self.edges]
            )
        return np.array(
            [
                self.graph[u][v][key][LATENCY_ATTR].value(0.0)
                for (u, v, key) in self.edges
            ]
        )

    def latency_costs(self, network, edge_flows: np.ndarray) -> np.ndarray:
        """Evaluate every graph edge's latency at the given oracle-order flows."""
        edge_flows = np.asarray(edge_flows, dtype=float)
        return np.array(
            [
                network.latency_function(edge).value(edge_flows[i])
                for i, edge in enumerate(self.edges)
            ]
        )

    def network_edge_positions(self, network) -> np.ndarray:
        """Map ``network.edges`` (on-path edges) to oracle edge positions."""
        return np.array([self.edge_index[edge] for edge in network.edges], dtype=np.int64)

    def expand_edge_values(self, network, values: np.ndarray) -> np.ndarray:
        """Scatter per-``network.edges`` values into a full oracle-order vector.

        Off-path edges get zero -- exactly right for edge *flows* of a
        restricted network (no enumerated path crosses them).
        """
        full = np.zeros(self.num_edges)
        full[self.network_edge_positions(network)] = np.asarray(values, dtype=float)
        return full

    # Queries ---------------------------------------------------------------

    def _dijkstra(
        self,
        source: Hashable,
        costs: np.ndarray,
        targets: Optional[set] = None,
    ) -> Tuple[Dict[Hashable, float], Dict[Hashable, int]]:
        """One-to-many Dijkstra; returns distance and predecessor-edge maps.

        Expansion stops early once every target is settled.  Ties are broken
        by heap insertion order, which is deterministic for fixed costs.
        """
        costs = np.asarray(costs, dtype=float)
        if len(costs) != self.num_edges:
            raise ValueError(
                f"cost vector has length {len(costs)}, oracle has {self.num_edges} edges"
            )
        if np.any(costs < 0):
            raise ValueError("Dijkstra requires non-negative edge costs")
        distance: Dict[Hashable, float] = {source: 0.0}
        predecessor: Dict[Hashable, int] = {}
        settled: set = set()
        remaining = set(targets) if targets is not None else None
        counter = 0
        heap: List[Tuple[float, int, Hashable]] = [(0.0, counter, source)]
        while heap:
            dist, _, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            if remaining is not None:
                remaining.discard(node)
                if not remaining:
                    break
            if node != source and self._blocked_through(node):
                continue
            for edge_position, neighbour in self._adjacency[node]:
                candidate = dist + costs[edge_position]
                if candidate < distance.get(neighbour, INFINITY):
                    distance[neighbour] = candidate
                    predecessor[neighbour] = edge_position
                    counter += 1
                    heapq.heappush(heap, (candidate, counter, neighbour))
        return distance, predecessor

    def _trace(self, source: Hashable, sink: Hashable, predecessor: Dict[Hashable, int]):
        """Backtrack predecessor edges into the source->sink edge sequence."""
        edges: List[EdgeKey] = []
        node = sink
        while node != source:
            edge_position = predecessor[node]
            edge = self.edges[edge_position]
            edges.append(edge)
            node = edge[0]
        edges.reverse()
        return tuple(edges)

    def shortest_path(
        self, source: Hashable, sink: Hashable, costs: np.ndarray
    ) -> Tuple[Tuple[EdgeKey, ...], float]:
        """Return one cheapest ``source -> sink`` edge sequence and its cost."""
        distance, predecessor = self._dijkstra(source, costs, targets={sink})
        if sink not in distance or distance[sink] == INFINITY:
            raise ValueError(f"no path from {source!r} to {sink!r}")
        return self._trace(source, sink, predecessor), float(distance[sink])

    def shortest_commodity_paths(self, costs: np.ndarray) -> List[Path]:
        """Return one cheapest path per commodity (one Dijkstra per source)."""
        results: List[Optional[Path]] = [None] * len(self.commodities)
        for source, pairs in self._sinks_by_source.items():
            distance, predecessor = self._dijkstra(
                source, costs, targets={sink for _, sink in pairs}
            )
            for commodity_index, sink in pairs:
                if sink not in distance:
                    raise ValueError(f"no path from {source!r} to {sink!r}")
                results[commodity_index] = Path(
                    self._trace(source, sink, predecessor), commodity_index
                )
        return results  # type: ignore[return-value]

    def all_or_nothing(
        self, costs: np.ndarray, demands: Optional[np.ndarray] = None
    ) -> AllOrNothingLoad:
        """Load every commodity's demand onto its cheapest path.

        ``demands`` defaults to the commodity demands; the result's
        ``edge_flows`` live on the oracle's edge order and ``sptt`` is the
        demand-weighted shortest-path travel time.
        """
        if demands is None:
            demands = np.array([c.demand for c in self.commodities])
        flows = np.zeros(self.num_edges)
        sptt = 0.0
        for source, pairs in self._sinks_by_source.items():
            distance, predecessor = self._dijkstra(
                source, costs, targets={sink for _, sink in pairs}
            )
            for commodity_index, sink in pairs:
                if sink not in distance:
                    raise ValueError(f"no path from {source!r} to {sink!r}")
                demand = float(demands[commodity_index])
                sptt += distance[sink] * demand
                node = sink
                while node != source:
                    edge_position = predecessor[node]
                    flows[edge_position] += demand
                    node = self.edges[edge_position][0]
        return AllOrNothingLoad(edge_flows=flows, sptt=float(sptt))
