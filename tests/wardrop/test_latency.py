"""Unit tests for the latency-function library."""

from __future__ import annotations

import math

import pytest

from repro.wardrop.latency import (
    AffineLatency,
    BPRLatency,
    ConstantLatency,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PiecewiseLinearLatency,
    PolynomialLatency,
    ScaledLatency,
    SumLatency,
    ThresholdLatency,
)


def numerical_derivative(latency, x, step=1e-6):
    lo = max(0.0, x - step)
    hi = min(1.0, x + step)
    return (latency.value(hi) - latency.value(lo)) / (hi - lo)


def numerical_integral(latency, x, steps=2000):
    total = 0.0
    for i in range(steps):
        u = x * (i + 0.5) / steps
        total += latency.value(u)
    return total * x / steps


ALL_FUNCTIONS = [
    ConstantLatency(0.7),
    LinearLatency(2.0),
    AffineLatency(1.5, 0.25),
    PolynomialLatency([0.1, 0.5, 2.0]),
    MonomialLatency(3.0, 3),
    BPRLatency(1.0, 0.8),
    MM1Latency(2.0),
    PiecewiseLinearLatency([(0.0, 0.0), (0.4, 0.2), (1.0, 1.4)]),
    ThresholdLatency(4.0),
    ScaledLatency(LinearLatency(1.0), 3.0),
    SumLatency([ConstantLatency(0.2), LinearLatency(1.0)]),
]


class TestCommonProperties:
    @pytest.mark.parametrize("latency", ALL_FUNCTIONS, ids=lambda f: type(f).__name__)
    def test_non_negative_and_monotone(self, latency):
        latency.validate(samples=64)

    @pytest.mark.parametrize("latency", ALL_FUNCTIONS, ids=lambda f: type(f).__name__)
    @pytest.mark.parametrize("x", [0.0, 0.1, 0.35, 0.5, 0.77, 1.0])
    def test_derivative_matches_finite_difference(self, latency, x):
        # Skip kink points of piecewise functions where the derivative jumps.
        if isinstance(latency, PiecewiseLinearLatency) and any(
            abs(x - bp) < 1e-3 for bp in latency.xs
        ):
            pytest.skip("finite difference is ill-defined at a breakpoint")
        assert latency.derivative(x) == pytest.approx(
            numerical_derivative(latency, x), rel=1e-3, abs=1e-3
        )

    @pytest.mark.parametrize("latency", ALL_FUNCTIONS, ids=lambda f: type(f).__name__)
    @pytest.mark.parametrize("x", [0.0, 0.25, 0.5, 0.9, 1.0])
    def test_integral_matches_quadrature(self, latency, x):
        assert latency.integral(x) == pytest.approx(
            numerical_integral(latency, x), rel=1e-3, abs=1e-4
        )

    @pytest.mark.parametrize("latency", ALL_FUNCTIONS, ids=lambda f: type(f).__name__)
    def test_max_slope_dominates_samples(self, latency):
        bound = latency.max_slope(0.0, 1.0)
        for i in range(33):
            x = i / 32
            assert latency.derivative(x) <= bound + 1e-9

    @pytest.mark.parametrize("latency", ALL_FUNCTIONS, ids=lambda f: type(f).__name__)
    def test_call_is_value(self, latency):
        assert latency(0.3) == latency.value(0.3)


class TestConstant:
    def test_values(self):
        latency = ConstantLatency(2.5)
        assert latency.value(0.0) == 2.5
        assert latency.value(1.0) == 2.5
        assert latency.derivative(0.5) == 0.0
        assert latency.integral(0.4) == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestLinearAndAffine:
    def test_linear_values(self):
        latency = LinearLatency(3.0)
        assert latency.value(0.5) == 1.5
        assert latency.integral(1.0) == pytest.approx(1.5)

    def test_affine_values(self):
        latency = AffineLatency(2.0, 1.0)
        assert latency.value(0.5) == 2.0
        assert latency.max_slope() == 2.0

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            LinearLatency(-1.0)
        with pytest.raises(ValueError):
            AffineLatency(1.0, -0.1)


class TestPolynomial:
    def test_matches_explicit_evaluation(self):
        latency = PolynomialLatency([1.0, 2.0, 3.0])
        x = 0.4
        assert latency.value(x) == pytest.approx(1.0 + 2.0 * x + 3.0 * x * x)
        assert latency.derivative(x) == pytest.approx(2.0 + 6.0 * x)

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            PolynomialLatency([])
        with pytest.raises(ValueError):
            PolynomialLatency([1.0, -1.0])


class TestMonomial:
    def test_pigou_style(self):
        latency = MonomialLatency(1.0, 4)
        assert latency.value(1.0) == 1.0
        assert latency.value(0.5) == pytest.approx(0.0625)

    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            MonomialLatency(1.0, 0)


class TestBPR:
    def test_free_flow_at_zero(self):
        latency = BPRLatency(2.0, 1.0, alpha=0.15, beta=4)
        assert latency.value(0.0) == 2.0
        assert latency.value(1.0) == pytest.approx(2.0 * 1.15)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BPRLatency(1.0, 0.0)


class TestMM1:
    def test_queueing_shape_below_cap(self):
        latency = MM1Latency(2.0, cap_fraction=0.9)
        assert latency.value(0.0) == pytest.approx(0.5)
        assert latency.value(1.0) == pytest.approx(1.0)

    def test_linearised_beyond_cap_is_continuous(self):
        latency = MM1Latency(1.25, cap_fraction=0.6)
        cap = latency.cap
        below = latency.value(cap - 1e-9)
        above = latency.value(cap + 1e-9)
        assert above == pytest.approx(below, abs=1e-6)

    def test_finite_slope_bound(self):
        latency = MM1Latency(1.1, cap_fraction=0.5)
        assert latency.max_slope(0.0, 1.0) < float("inf")

    def test_rejects_capacity_below_demand(self):
        with pytest.raises(ValueError):
            MM1Latency(0.9)


class TestPiecewiseLinear:
    def test_segment_lookup(self):
        latency = PiecewiseLinearLatency([(0.0, 0.0), (0.5, 0.0), (1.0, 2.0)])
        assert latency.value(0.25) == 0.0
        assert latency.value(0.75) == pytest.approx(1.0)
        assert latency.derivative(0.25) == 0.0
        assert latency.derivative(0.75) == pytest.approx(4.0)

    def test_max_slope_over_subinterval(self):
        latency = PiecewiseLinearLatency([(0.0, 0.0), (0.5, 0.0), (1.0, 2.0)])
        assert latency.max_slope(0.0, 0.4) == 0.0
        assert latency.max_slope(0.0, 1.0) == pytest.approx(4.0)

    def test_rejects_uncovered_interval(self):
        with pytest.raises(ValueError):
            PiecewiseLinearLatency([(0.1, 0.0), (1.0, 1.0)])

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            PiecewiseLinearLatency([(0.0, 1.0), (1.0, 0.0)])


class TestThreshold:
    def test_matches_paper_form(self):
        beta = 4.0
        latency = ThresholdLatency(beta=beta, threshold=0.5)
        for x in [0.0, 0.3, 0.5, 0.6, 0.75, 1.0]:
            assert latency.value(x) == pytest.approx(max(0.0, beta * (x - 0.5)))

    def test_max_slope_is_beta(self):
        assert ThresholdLatency(beta=7.0).max_slope() == pytest.approx(7.0)

    def test_rejects_threshold_outside_interval(self):
        with pytest.raises(ValueError):
            ThresholdLatency(1.0, threshold=1.5)


class TestCombinators:
    def test_scaled(self):
        latency = LinearLatency(2.0).scaled(0.5)
        assert latency.value(1.0) == pytest.approx(1.0)
        assert latency.max_slope() == pytest.approx(1.0)

    def test_shifted(self):
        latency = LinearLatency(1.0).shifted(0.3)
        assert latency.value(0.0) == pytest.approx(0.3)

    def test_addition(self):
        latency = LinearLatency(1.0) + ConstantLatency(1.0)
        assert latency.value(0.5) == pytest.approx(1.5)
        assert latency.integral(1.0) == pytest.approx(1.5)

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            LinearLatency(1.0).scaled(-2.0)
