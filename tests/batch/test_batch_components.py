"""Unit tests for the batched building blocks underneath the engine:
vectorised latency evaluation, batched network/flow kernels, batched
sampling/migration matrices, the batched bulletin board and the steppers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchBulletinBoard, simulate_batch
from repro.core import (
    BetterResponseMigration,
    LinearMigration,
    ProportionalSampling,
    ScaledLinearMigration,
    SmoothedBetterResponseMigration,
    SoftmaxSampling,
    UniformSampling,
    euler_step,
    euler_step_batch,
    num_integration_steps,
    replicator_policy,
    rk4_step,
    rk4_step_batch,
)
from repro.core.dynamics import batch_stepper_for
from repro.instances import braess_network, pigou_network
from repro.wardrop import FlowVector
from repro.wardrop.latency import (
    AffineLatency,
    BPRLatency,
    ConstantLatency,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PiecewiseLinearLatency,
    PolynomialLatency,
    SumLatency,
    ThresholdLatency,
)

SAMPLES = np.array([-0.2, 0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, 1.3])

LATENCIES = [
    ConstantLatency(2.5),
    LinearLatency(1.5),
    AffineLatency(2.0, 0.5),
    PolynomialLatency([0.5, 0.0, 2.0]),
    MonomialLatency(1.5, 3),
    BPRLatency(1.0, 0.8),
    MM1Latency(1.5),
    PiecewiseLinearLatency([(0.0, 0.0), (0.4, 0.1), (1.0, 2.0)]),
    ThresholdLatency(beta=4.0),
    LinearLatency(2.0).scaled(0.5),
    SumLatency([LinearLatency(1.0), ConstantLatency(0.3)]),
]


class TestValueArray:
    @pytest.mark.parametrize("latency", LATENCIES, ids=lambda l: type(l).__name__)
    def test_matches_scalar_value(self, latency):
        batched = latency.value_array(SAMPLES)
        scalar = np.array([latency.value(float(x)) for x in SAMPLES])
        assert batched.shape == SAMPLES.shape
        np.testing.assert_allclose(batched, scalar, rtol=0, atol=0)

    def test_base_class_loop(self):
        class CubeRoot(ConstantLatency):
            def value(self, x):
                return float(x) ** 2

        latency = CubeRoot(0.0)
        # Remove the Constant override by calling the ABC implementation.
        from repro.wardrop.latency import LatencyFunction

        batched = LatencyFunction.value_array(latency, SAMPLES)
        np.testing.assert_allclose(batched, SAMPLES**2)


class TestNetworkBatchKernels:
    def test_edge_and_path_latencies_match_scalar_rows(self):
        network = braess_network()
        rng = np.random.default_rng(11)
        flows = np.stack([FlowVector.random(network, rng).values() for _ in range(6)])
        edge_flows = network.edge_flows_batch(flows)
        edge_latencies = network.edge_latencies_batch(edge_flows)
        path_latencies = network.path_latencies_batch(flows)
        for row in range(6):
            np.testing.assert_allclose(
                edge_flows[row], network.edge_flows(flows[row]), atol=1e-15
            )
            np.testing.assert_allclose(
                edge_latencies[row],
                network.edge_latencies(network.edge_flows(flows[row])),
                atol=1e-15,
            )
            np.testing.assert_allclose(
                path_latencies[row], network.path_latencies(flows[row]), atol=1e-15
            )

    def test_project_batch_matches_projected(self):
        network = braess_network()
        rng = np.random.default_rng(5)
        raw = np.stack([FlowVector.random(network, rng).values() for _ in range(4)])
        raw += rng.normal(scale=1e-3, size=raw.shape)  # small infeasibility
        repaired = FlowVector.project_batch(network, raw)
        for row in range(4):
            expected = FlowVector(network, raw[row], validate=False).projected()
            np.testing.assert_allclose(repaired[row], expected.values(), atol=1e-15)

    def test_project_batch_starved_commodity(self):
        network = pigou_network(degree=1)
        raw = np.array([[-0.2, -0.1], [0.5, 0.5]])
        repaired = FlowVector.project_batch(network, raw)
        np.testing.assert_allclose(repaired[0], [0.5, 0.5])
        np.testing.assert_allclose(repaired[1], [0.5, 0.5])

    def test_projection_survives_subnormal_totals(self):
        """Subnormal routed mass must not overflow the rescale to inf/NaN."""
        network = pigou_network(degree=1)
        subnormal = np.array([[0.0, 5e-309]])
        repaired = FlowVector.project_batch(network, subnormal)
        assert np.isfinite(repaired).all()
        np.testing.assert_allclose(repaired[0], [0.5, 0.5])
        scalar = FlowVector(network, subnormal[0], validate=False).projected()
        assert np.isfinite(scalar.values()).all()
        np.testing.assert_allclose(scalar.values(), [0.5, 0.5])


SAMPLING_RULES = [UniformSampling(), ProportionalSampling(1e-3), SoftmaxSampling(2.0)]
MIGRATION_RULES = [
    BetterResponseMigration(),
    LinearMigration(3.0),
    ScaledLinearMigration(1.7),
    SmoothedBetterResponseMigration(0.2),
]


class TestPolicyBatchKernels:
    @pytest.mark.parametrize("rule", SAMPLING_RULES, ids=lambda r: type(r).__name__)
    def test_probabilities_batch_matches_scalar(self, rule):
        network = braess_network()
        rng = np.random.default_rng(2)
        flows = np.stack([FlowVector.random(network, rng).values() for _ in range(5)])
        latencies = network.path_latencies_batch(flows)
        batched = rule.probabilities_batch(network, flows, latencies)
        for row in range(5):
            expected = rule.probabilities(network, flows[row], latencies[row])
            np.testing.assert_allclose(batched[row], expected, atol=1e-15)

    @pytest.mark.parametrize("rule", MIGRATION_RULES, ids=lambda r: type(r).__name__)
    def test_matrix_batch_matches_scalar(self, rule):
        network = braess_network()
        rng = np.random.default_rng(4)
        flows = np.stack([FlowVector.random(network, rng).values() for _ in range(5)])
        latencies = network.path_latencies_batch(flows)
        batched = rule.matrix_batch(latencies)
        for row in range(5):
            np.testing.assert_allclose(batched[row], rule.matrix(latencies[row]), atol=1e-15)

    def test_growth_rates_batch_matches_scalar(self):
        network = braess_network()
        policy = replicator_policy(network)
        rng = np.random.default_rng(9)
        current = np.stack([FlowVector.random(network, rng).values() for _ in range(3)])
        posted = np.stack([FlowVector.random(network, rng).values() for _ in range(3)])
        latencies = network.path_latencies_batch(posted)
        batched = policy.growth_rates_batch(network, current, posted, latencies)
        for row in range(3):
            expected = policy.growth_rates(network, current[row], posted[row], latencies[row])
            np.testing.assert_allclose(batched[row], expected, atol=1e-15)
        # Growth rates conserve the demand of every commodity.
        np.testing.assert_allclose(batched.sum(axis=1), 0.0, atol=1e-12)


class TestBatchBoard:
    def test_per_row_clocks(self):
        network = pigou_network(degree=1)
        board = BatchBulletinBoard(network, np.array([0.1, 0.4]))
        flows = np.tile(FlowVector.uniform(network).values(), (2, 1))
        assert board.needs_update(np.zeros(2)).all()
        board.post_rows(0.0, flows)
        assert list(board.phase_index) == [0, 0]
        # At t = 0.2 only the fast row is due.
        due = board.needs_update(np.array([0.2, 0.2]))
        assert due.tolist() == [True, False]
        board.post_rows(np.array([0.2, 0.2]), flows, mask=due)
        assert list(board.phase_index) == [1, 0]
        np.testing.assert_allclose(board.posted_times, [0.2, 0.0])

    def test_rejects_nonpositive_period(self):
        network = pigou_network(degree=1)
        with pytest.raises(ValueError):
            BatchBulletinBoard(network, np.array([0.1, 0.0]))


class TestBatchSteppers:
    def test_match_scalar_steppers_rowwise(self):
        def rates(_t, state):
            return -0.5 * state

        state = np.array([[1.0, 2.0], [3.0, 4.0], [0.5, 0.1]])
        steps = np.array([[0.1], [0.2], [0.05]])
        for batch_step, scalar_step in [
            (euler_step_batch, euler_step),
            (rk4_step_batch, rk4_step),
        ]:
            advanced = batch_step(rates, np.zeros((3, 1)), state, steps)
            for row in range(3):
                def row_rates(_t, values):
                    return -0.5 * values

                expected = scalar_step(row_rates, 0.0, state[row], float(steps[row, 0]))
                np.testing.assert_allclose(advanced[row], expected, atol=1e-15)

    def test_batch_stepper_for_rejects_unknown(self):
        with pytest.raises(ValueError):
            batch_stepper_for("verlet")

    def test_num_integration_steps_matches_scalar_rule(self):
        assert num_integration_steps(1.0, 0.1) == 10
        assert num_integration_steps(0.0600000000000001, 0.006) == 11
        assert num_integration_steps(0.0, 0.1) == 1


class TestBatchResultShape:
    def test_final_flows_and_phase_counts(self):
        network = pigou_network(degree=1)
        policy = replicator_policy(network)
        result = simulate_batch(
            network, policy, [0.1, 0.5], 1.0, steps_per_phase=5
        )
        assert result.batch_size == 2
        assert result.num_phases(0) == 10
        assert result.num_phases(1) == 2
        final = result.final_flows()
        assert final.shape == (2, network.num_paths)
        np.testing.assert_allclose(final[0], result.final_flow(0).values())
        assert len(result.trajectories()) == 2
