"""The :class:`Scenario`: one nonstationary environment, engine-agnostic.

A scenario bundles the three nonstationary effects of this package --
time-varying total demand, time-varying latency coefficients and link
incidents -- and compiles them, at any sample time, into per-edge
``(gain, stretch, offset)`` triples: the affected edge latencies become

    l_e^t(x) = gain_e(t) * l_e(stretch_e(t) * x) + offset_e(t)

(see :class:`~repro.wardrop.latency.ModulatedLatency`).  Every engine applies
the modulation *at phase boundaries*: the environment a phase runs in is
frozen at the phase's start, which matches the paper's information model (the
world, like the bulletin board, is sampled at discrete instants) and keeps
batched and scalar runs bit-identical.

:meth:`Scenario.network_at` materialises the effective network at a sample
time as a lightweight :meth:`~repro.wardrop.network.WardropNetwork.with_latencies`
copy -- cached per distinct modulation, so piecewise-constant scenarios build
a handful of networks no matter how many phases run.
:class:`ScenarioEnsemble` is the batched counterpart: it stacks the per-row
effective networks of a whole ensemble into cached
:class:`~repro.wardrop.family.NetworkFamily` objects whose per-edge
:class:`~repro.wardrop.latency.LatencyStack` evaluation is fully vectorised
(every covered edge is wrapped in a ``ModulatedLatency``, identity where a
row is unaffected -- the identity modulation is float-transparent, so
wrapping never perturbs a row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..wardrop.family import NetworkFamily
from ..wardrop.latency import ModulatedLatency
from ..wardrop.network import WardropNetwork
from .incidents import EdgeKey, IncidentPlan, LinkIncident
from .schedule import CoefficientSchedule, DemandSchedule, Schedule

Triple = Tuple[float, float, float]

IDENTITY_TRIPLE: Triple = (1.0, 1.0, 0.0)

# Memoisation bounds.  Piecewise-constant scenarios revisit a handful of
# modulations and never approach these; continuous profiles (ramps, periodic
# peaks) produce a fresh modulation every phase, so without a bound the
# caches would grow linearly with the phase count of a run.  Values held in
# a cache keep their constituents alive, so ids used as keys can never be
# reused while their entry is live.
NETWORK_CACHE_LIMIT = 128
FAMILY_CACHE_LIMIT = 64
STACK_CACHE_LIMIT = 512
MEMBER_CACHE_LIMIT = 256


def _bounded_insert(cache: Dict, key, value, limit: int) -> None:
    """Insert into a dict cache, evicting oldest entries beyond ``limit``."""
    cache[key] = value
    while len(cache) > limit:
        cache.pop(next(iter(cache)))


@dataclass(frozen=True)
class Modulation:
    """One sampled scenario state: global and per-edge modulation factors.

    ``demand`` stretches every latency argument (the total-demand multiplier);
    ``gain`` scales every latency value (an all-edge coefficient multiplier);
    ``edges`` holds the additional per-edge ``(gain, stretch, offset)``
    triples of edge-scoped effects, sorted for hashability.  Equal modulations
    compare (and hash) equal, which is what the per-scenario network caches
    key on.
    """

    demand: float = 1.0
    gain: float = 1.0
    edges: Tuple[Tuple[EdgeKey, Triple], ...] = ()

    @property
    def is_identity(self) -> bool:
        return self.demand == 1.0 and self.gain == 1.0 and not self.edges

    def triple_for(self, edge: EdgeKey) -> Triple:
        """Return the total ``(gain, stretch, offset)`` applied to one edge."""
        gain, stretch, offset = dict(self.edges).get(edge, IDENTITY_TRIPLE)
        return (self.gain * gain, self.demand * stretch, offset)


class Scenario:
    """A nonstationary environment: demand profile + coefficients + incidents.

    Parameters
    ----------
    name:
        Display name (echoed by the CLI and benchmark tables).
    demand:
        Optional total-demand profile -- a :class:`DemandSchedule` or a bare
        :class:`~repro.scenarios.schedule.Schedule` (wrapped automatically).
    coefficients:
        Optional latency-coefficient profiles -- one
        :class:`CoefficientSchedule` or a sequence of them (their effects
        compose multiplicatively on shared edges).
    incidents:
        Optional :class:`IncidentPlan` or a sequence of
        :class:`LinkIncident`.
    """

    def __init__(
        self,
        name: str = "",
        demand: Optional[Union[DemandSchedule, Schedule]] = None,
        coefficients: Optional[Union[CoefficientSchedule, Sequence[CoefficientSchedule]]] = None,
        incidents: Optional[Union[IncidentPlan, Sequence[LinkIncident]]] = None,
    ):
        self.name = name
        if isinstance(demand, Schedule):
            demand = DemandSchedule(demand)
        self.demand = demand
        if isinstance(coefficients, CoefficientSchedule):
            coefficients = [coefficients]
        self.coefficients: List[CoefficientSchedule] = list(coefficients or [])
        if incidents is not None and not isinstance(incidents, IncidentPlan):
            incidents = IncidentPlan(list(incidents))
        self.incidents: Optional[IncidentPlan] = incidents
        # Effective-network cache: (id(base), modulation, cover) -> network.
        # The base is stored alongside so its id stays valid for the cache's
        # lifetime.  Dropped on pickling (rebuilt lazily in workers).
        self._cache: Dict[Tuple, Tuple[WardropNetwork, WardropNetwork]] = {}

    # Pickling (process-pool dispatch) ---------------------------------------

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_cache"] = {}
        return state

    # Sampling ----------------------------------------------------------------

    def modulation_at(self, t: float) -> Modulation:
        """Return the scenario state frozen at sample time ``t``."""
        demand = self.demand.multiplier_at(t) if self.demand is not None else 1.0
        gain = 1.0
        per_edge: Dict[EdgeKey, Triple] = {}
        for coefficient in self.coefficients:
            value = coefficient.gain_at(t)
            if coefficient.edges is None:
                gain *= value
                continue
            if value == 1.0:
                continue
            for edge in coefficient.edges:
                g, s, o = per_edge.get(edge, IDENTITY_TRIPLE)
                per_edge[edge] = (g * value, s, o)
        if self.incidents is not None:
            for edge, (g, s, o) in self.incidents.modulation_at(t).items():
                base_g, base_s, base_o = per_edge.get(edge, IDENTITY_TRIPLE)
                per_edge[edge] = (base_g * g, base_s * s, base_o + o)
        edges = tuple(sorted(per_edge.items(), key=lambda item: str(item[0])))
        return Modulation(demand=demand, gain=gain, edges=edges)

    def breakpoints(self, start: float, end: float) -> List[float]:
        """Return every instant in ``[start, end)`` where the state can jump."""
        points = set()
        if self.demand is not None:
            points.update(self.demand.breakpoints(start, end))
        for coefficient in self.coefficients:
            points.update(coefficient.breakpoints(start, end))
        if self.incidents is not None:
            points.update(self.incidents.breakpoints(start, end))
        return sorted(points)

    def closed_edges(self, t: float) -> FrozenSet[EdgeKey]:
        """Return the edges fully closed by an incident at time ``t``."""
        if self.incidents is None:
            return frozenset()
        return self.incidents.closed_edges(t)

    def require_edges(self, base: WardropNetwork) -> None:
        """Raise if an edge-scoped effect names an edge absent from ``base``.

        Effects on unknown edges would otherwise be silently dropped -- a
        typo'd incident edge (or a scenario built for a different instance)
        would run as a stationary no-op while the tracking metrics report on
        an incident that never happened.  Every engine validates once at run
        start.
        """
        missing = []
        for coefficient in self.coefficients:
            for edge in coefficient.edges or []:
                if not base.graph.has_edge(*edge):
                    missing.append(edge)
        if self.incidents is not None:
            for edge in self.incidents.edges():
                if not base.graph.has_edge(*edge):
                    missing.append(edge)
        if missing:
            label = f" {self.name!r}" if self.name else ""
            raise ValueError(
                f"scenario{label} names edges that are not in the network "
                f"graph: {missing}"
            )

    def scope(self, base: WardropNetwork) -> Optional[List[EdgeKey]]:
        """Return the graph edges this scenario can ever touch on ``base``.

        ``None`` means *every* edge (a demand or all-edge coefficient profile
        modulates the whole network).  Edge-scoped effects return only the
        edges present in the base graph.
        """
        if self.demand is not None or any(c.edges is None for c in self.coefficients):
            return None
        edges: List[EdgeKey] = []
        for coefficient in self.coefficients:
            edges.extend(coefficient.edges or [])
        if self.incidents is not None:
            edges.extend(self.incidents.edges())
        seen: List[EdgeKey] = []
        for edge in edges:
            if edge not in seen and base.graph.has_edge(*edge):
                seen.append(edge)
        return seen

    # Effective networks ------------------------------------------------------

    def network_at(
        self,
        base: WardropNetwork,
        t: float,
        cover: Optional[Tuple[EdgeKey, ...]] = None,
    ) -> WardropNetwork:
        """Return the effective network at sample time ``t`` (cached).

        The result is a lightweight ``with_latencies`` copy of ``base`` whose
        affected edges carry :class:`ModulatedLatency` wrappers.  ``cover``
        (used by :class:`ScenarioEnsemble`) lists additional on-path edges to
        wrap with the *identity* modulation so the batched per-edge latency
        stacks stay type-homogeneous; identity wrapping is float-transparent,
        so covered scalar and uncovered scalar evaluation agree bit for bit.
        """
        modulation = self.modulation_at(t)
        if modulation.is_identity and not cover:
            return base
        key = (id(base), modulation, cover)
        cached = self._cache.get(key)
        if cached is not None:
            return cached[1]
        # dict-as-ordered-set: cover edges may overlap the modulated ones.
        targets: Dict[EdgeKey, None] = {}
        if modulation.demand != 1.0 or modulation.gain != 1.0:
            targets.update((edge, None) for edge in base.graph.edges(keys=True))
        else:
            targets.update(
                (edge, None)
                for edge, _ in modulation.edges
                if base.graph.has_edge(*edge)
            )
        if cover:
            targets.update((edge, None) for edge in cover)
        per_edge = dict(modulation.edges)
        overrides = {}
        for edge in targets:
            gain, stretch, offset = per_edge.get(edge, IDENTITY_TRIPLE)
            overrides[edge] = ModulatedLatency(
                base.latency_function(edge),
                modulation.gain * gain,
                modulation.demand * stretch,
                offset,
            )
        network = base.with_latencies(overrides) if overrides else base
        _bounded_insert(self._cache, key, (base, network), NETWORK_CACHE_LIMIT)
        return network

    def __repr__(self) -> str:
        parts = []
        if self.demand is not None:
            parts.append(f"demand={self.demand!r}")
        if self.coefficients:
            parts.append(f"coefficients={self.coefficients!r}")
        if self.incidents is not None:
            parts.append(f"incidents={self.incidents!r}")
        label = f"{self.name!r}, " if self.name else ""
        return f"Scenario({label}{', '.join(parts)})"


class ScenarioEnsemble:
    """Per-row scenarios of a batched run, stacked into cached families.

    ``base`` is the shared :class:`WardropNetwork` or the
    :class:`NetworkFamily` the batch routes on; ``scenarios`` holds one
    :class:`Scenario` (or ``None`` for a stationary row) per batch row.
    :meth:`family_at` returns the effective family at per-row sample times;
    families are cached by their member combination, so piecewise-constant
    scenario sweeps (e.g. 32 incident timings) build one family per distinct
    environment combination, not one per phase.
    """

    def __init__(
        self,
        base: Union[WardropNetwork, NetworkFamily],
        scenarios: Sequence[Optional[Scenario]],
    ):
        self.scenarios: List[Optional[Scenario]] = list(scenarios)
        if isinstance(base, NetworkFamily):
            if base.size != len(self.scenarios):
                raise ValueError(
                    f"family of {base.size} networks for {len(self.scenarios)} scenarios"
                )
            self.bases: List[WardropNetwork] = [
                base.member(row) for row in range(base.size)
            ]
            structure = base.base
        else:
            self.bases = [base] * len(self.scenarios)
            structure = base
        # The cover: every on-path edge some row's scenario can touch.  All
        # rows wrap exactly these edges (identity where unaffected), so each
        # edge's latency stack holds one ModulatedLatency per row and
        # vectorises through the stacked evaluator.
        for row, scenario in enumerate(self.scenarios):
            if scenario is not None:
                scenario.require_edges(self.bases[row])
        cover_all = False
        scoped: List[EdgeKey] = []
        for row, scenario in enumerate(self.scenarios):
            if scenario is None:
                continue
            scope = scenario.scope(self.bases[row])
            if scope is None:
                cover_all = True
                break
            scoped.extend(scope)
        if cover_all:
            self.cover: Tuple[EdgeKey, ...] = tuple(structure.edges)
        else:
            scoped_set = set(scoped)
            self.cover = tuple(edge for edge in structure.edges if edge in scoped_set)
        self._structure = structure
        self._identity_members: Dict[int, Tuple[WardropNetwork, WardropNetwork]] = {}
        self._families: Dict[Tuple[int, ...], NetworkFamily] = {}
        # Stack memoisation: most per-phase family swaps change the latency
        # functions of only a few edges (the ones whose modulation toggled),
        # so per-edge LatencyStacks are cached by their function identities
        # and the per-member function rows are fetched once per distinct
        # effective member.
        self._member_functions: Dict[int, Tuple[WardropNetwork, List]] = {}
        self._stack_cache: Dict[Tuple[int, ...], "LatencyStack"] = {}

    def _functions_of(self, member: WardropNetwork) -> List:
        cached = self._member_functions.get(id(member))
        if cached is None:
            cached = (
                member,
                [member.latency_function(edge) for edge in self._structure.edges],
            )
            _bounded_insert(
                self._member_functions, id(member), cached, MEMBER_CACHE_LIMIT
            )
        return cached[1]

    def _stacks_for(self, members: Sequence[WardropNetwork]) -> List["LatencyStack"]:
        from ..wardrop.latency import LatencyStack

        rows = [self._functions_of(member) for member in members]
        stacks = []
        for position in range(len(self._structure.edges)):
            functions = [row[position] for row in rows]
            key = tuple(id(function) for function in functions)
            stack = self._stack_cache.get(key)
            if stack is None:
                stack = LatencyStack(functions)
                _bounded_insert(self._stack_cache, key, stack, STACK_CACHE_LIMIT)
            stacks.append(stack)
        return stacks

    def _identity(self, base: WardropNetwork) -> WardropNetwork:
        """Return ``base`` with identity wrappers on the covered edges."""
        if not self.cover:
            return base
        cached = self._identity_members.get(id(base))
        if cached is not None:
            return cached[1]
        wrapped = base.with_latencies(
            {edge: ModulatedLatency(base.latency_function(edge)) for edge in self.cover}
        )
        self._identity_members[id(base)] = (base, wrapped)
        return wrapped

    def family_at(self, times: np.ndarray) -> NetworkFamily:
        """Return the effective family at per-row sample times ``(B,)``."""
        members: List[WardropNetwork] = []
        for row, scenario in enumerate(self.scenarios):
            base = self.bases[row]
            if scenario is None:
                members.append(self._identity(base))
            else:
                members.append(scenario.network_at(base, float(times[row]), cover=self.cover))
        key = tuple(id(member) for member in members)
        family = self._families.get(key)
        if family is None:
            family = NetworkFamily(
                members, validate=False, stacks=self._stacks_for(members)
            )
            _bounded_insert(self._families, key, family, FAMILY_CACHE_LIMIT)
        return family
