"""Commodities of the Wardrop routing game.

An instance of the game is specified by a set of commodities
``[k] = {1, ..., k}`` where commodity ``i`` is a triple ``(s_i, t_i, r_i)``:
a source node, a sink node and a flow demand that has to be routed from the
source to the sink.  The paper normalises the total demand to
``sum_i r_i = 1`` so that flow shares can be read as population fractions of
an infinite agent population; :func:`normalise_demands` provides that
normalisation and the network constructor enforces it (optionally).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence


@dataclass(frozen=True)
class Commodity:
    """One origin--destination pair with a flow demand.

    Attributes
    ----------
    source:
        The origin node ``s_i``.
    sink:
        The destination node ``t_i``.
    demand:
        The amount of flow ``r_i > 0`` to be routed from source to sink.
    name:
        Optional human-readable identifier used in reports.
    """

    source: Hashable
    sink: Hashable
    demand: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.demand <= 0:
            raise ValueError(f"commodity demand must be positive, got {self.demand}")
        if self.source == self.sink:
            raise ValueError("commodity source and sink must differ")

    def label(self, index: int) -> str:
        """Return the display name, falling back to ``commodity-<index>``."""
        return self.name or f"commodity-{index}"


def total_demand(commodities: Sequence[Commodity]) -> float:
    """Return the sum of demands over all commodities."""
    return sum(commodity.demand for commodity in commodities)


def normalise_demands(commodities: Sequence[Commodity]) -> List[Commodity]:
    """Return a copy of ``commodities`` rescaled so the demands sum to one.

    The Wardrop model of the paper works with a population of measure one.
    Instances defined with natural (unnormalised) demands can be rescaled
    with this helper before being handed to the simulator.
    """
    total = total_demand(commodities)
    if total <= 0:
        raise ValueError("total demand must be positive")
    return [
        Commodity(c.source, c.sink, c.demand / total, c.name) for c in commodities
    ]


def demands_are_normalised(commodities: Sequence[Commodity], tolerance: float = 1e-9) -> bool:
    """Return ``True`` if the demands sum to one within ``tolerance``."""
    return abs(total_demand(commodities) - 1.0) <= tolerance
