"""Telemetry: structured tracing, metrics and profiling hooks for every engine.

The subsystem is zero-dependency and off by default: engines fetch the
active session with :func:`get_telemetry`, which returns a shared no-op
object unless a :func:`telemetry_session` is active, so instrumented hot
paths cost nothing measurable when tracing is disabled and never change
numerical results either way.

* :mod:`~repro.telemetry.tracer` -- nested spans with wall time and
  attribute bags, plus the no-op :class:`NullTracer` default;
* :mod:`~repro.telemetry.metrics` -- the counter/gauge/histogram/series
  registry engines update at phase boundaries;
* :mod:`~repro.telemetry.runtime` -- the active-session plumbing
  (:func:`get_telemetry`, :func:`telemetry_session`) and JSONL export;
* :mod:`~repro.telemetry.report` -- renders a trace into per-engine /
  per-phase timing and throughput tables (the ``repro report`` command);
* :mod:`~repro.telemetry.bench` -- the unified machine-readable timing
  records of the benchmark harness (one schema, reused by CI).
"""

from .bench import BenchTimer, bench_timer, load_records, render_throughput_matrix
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Series,
)
from .report import load_trace, render_trace_report
from .runtime import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BenchTimer",
    "bench_timer",
    "load_records",
    "render_throughput_matrix",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "load_trace",
    "render_trace_report",
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
