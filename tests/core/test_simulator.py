"""Unit tests for the fluid-limit rerouting simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ReroutingSimulator,
    SimulationConfig,
    replicator_policy,
    simulate,
    uniform_policy,
)
from repro.core.bulletin import BulletinBoard
from repro.core.dynamics import integrate, integration_step_for
from repro.instances import braess_network, lopsided_flow, pigou_network, two_link_network
from repro.wardrop import FlowVector, equilibrium_violation, potential


class TestConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SimulationConfig(update_period=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(horizon=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(steps_per_phase=0)


class TestBasicRuns:
    def test_flow_stays_feasible_throughout(self, braess):
        policy = uniform_policy(braess)
        trajectory = simulate(
            braess, policy, update_period=0.05, horizon=2.0, steps_per_phase=20
        )
        for point in trajectory.points:
            point.flow.check_feasible(tolerance=1e-6)

    def test_phase_records_chain_correctly(self, two_links):
        policy = uniform_policy(two_links)
        trajectory = simulate(two_links, policy, update_period=0.1, horizon=1.0)
        assert len(trajectory.phases) == 10
        for previous, current in zip(trajectory.phases, trajectory.phases[1:]):
            assert current.start_time == pytest.approx(previous.end_time)
            assert np.allclose(current.start_flow.values(), previous.end_flow.values())

    def test_equilibrium_is_stationary(self, two_links):
        policy = replicator_policy(two_links)
        equilibrium = FlowVector(two_links, [0.5, 0.5])
        trajectory = simulate(
            two_links, policy, update_period=0.1, horizon=2.0, initial_flow=equilibrium
        )
        assert np.allclose(trajectory.final_flow.values(), [0.5, 0.5], atol=1e-9)

    def test_stop_when_condition(self, two_links):
        policy = replicator_policy(two_links)
        trajectory = simulate(
            two_links,
            policy,
            update_period=0.1,
            horizon=100.0,
            initial_flow=lopsided_flow(two_links, 0.9),
            stop_when=lambda time, flow: equilibrium_violation(flow) < 1e-3,
        )
        assert trajectory.points[-1].time < 100.0

    def test_wrong_network_initial_flow_rejected(self, two_links, braess):
        policy = uniform_policy(two_links)
        simulator = ReroutingSimulator(two_links, policy, SimulationConfig())
        with pytest.raises(ValueError):
            simulator.run(FlowVector.uniform(braess))


class TestConvergenceBehaviour:
    def test_uniform_policy_converges_fresh(self, two_links_steep):
        policy = uniform_policy(two_links_steep)
        trajectory = simulate(
            two_links_steep,
            policy,
            update_period=0.1,
            horizon=60.0,
            initial_flow=lopsided_flow(two_links_steep, 0.95),
            stale=False,
        )
        assert equilibrium_violation(trajectory.final_flow) < 1e-2

    def test_replicator_converges_under_safe_staleness(self, two_links_steep):
        policy = replicator_policy(two_links_steep)
        safe_period = policy.safe_update_period(two_links_steep)
        trajectory = simulate(
            two_links_steep,
            policy,
            update_period=safe_period,
            horizon=80.0,
            initial_flow=lopsided_flow(two_links_steep, 0.95),
        )
        assert equilibrium_violation(trajectory.final_flow) < 1e-2

    def test_potential_monotone_under_safe_staleness(self, braess):
        policy = uniform_policy(braess)
        safe_period = policy.safe_update_period(braess)
        trajectory = simulate(
            braess,
            policy,
            update_period=safe_period,
            horizon=10.0,
            initial_flow=FlowVector.single_path(braess, {0: 0}),
        )
        values = [potential(phase.end_flow) for phase in trajectory.phases]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_record_every_step_gives_denser_samples(self, two_links):
        policy = uniform_policy(two_links)
        coarse = ReroutingSimulator(
            two_links, policy, SimulationConfig(update_period=0.2, horizon=1.0)
        ).run()
        dense = ReroutingSimulator(
            two_links,
            policy,
            SimulationConfig(update_period=0.2, horizon=1.0, record_every_step=True),
        ).run()
        assert len(dense) > len(coarse)

    def test_euler_and_rk4_agree_for_small_steps(self, two_links):
        policy = uniform_policy(two_links)
        start = lopsided_flow(two_links, 0.8)
        kwargs = dict(update_period=0.1, horizon=2.0, initial_flow=start, steps_per_phase=200)
        euler = simulate(two_links, policy, method="euler", **kwargs)
        rk4 = simulate(two_links, policy, method="rk4", **kwargs)
        assert np.allclose(euler.final_flow.values(), rk4.final_flow.values(), atol=1e-4)


def reference_stale_run(network, policy, update_period, horizon, steps_per_phase, method, start):
    """The pre-precomputation stale loop: sigma/mu recomputed every stage.

    This replicates the simulator's original per-stage field --
    ``policy.growth_rates`` evaluated afresh at every integrator call -- so
    the regression test below can assert the per-phase sigma/mu
    precomputation left trajectories bit-identical.
    """
    board = BulletinBoard(network, update_period)
    step = integration_step_for(update_period, steps_per_phase)
    flow = start
    board.post(0.0, flow.values())
    boundary_flows = [flow.values()]
    num_phases = int(np.ceil(horizon / update_period))
    for phase in range(num_phases):
        phase_start = phase * update_period
        phase_end = min((phase + 1) * update_period, horizon)
        board.maybe_update(phase_start, flow.values())
        snapshot = board.snapshot

        def field(_t, state):
            return policy.growth_rates(
                network, state, snapshot.path_flows, snapshot.path_latencies
            )

        new_values = integrate(field, flow.values(), phase_start, phase_end, step, method)
        flow = FlowVector(network, new_values, validate=False).projected()
        boundary_flows.append(flow.values())
        if phase_end >= horizon:
            break
    return np.stack(boundary_flows)


class TestStalePhasePrecompute:
    """Regression for the sigma/mu per-phase precomputation port (ROADMAP item)."""

    @pytest.mark.parametrize("method", ["euler", "rk4"])
    def test_trajectories_identical_to_per_stage_recomputation(self, method):
        cases = [
            (pigou_network(degree=2), "replicator"),
            (braess_network(), "uniform"),
            (two_link_network(beta=4.0), "uniform"),
        ]
        for network, kind in cases:
            policy = (replicator_policy if kind == "replicator" else uniform_policy)(network)
            rng = np.random.default_rng(13)
            start = FlowVector.random(network, rng)
            trajectory = simulate(
                network, policy, update_period=0.15, horizon=1.0,
                initial_flow=start, steps_per_phase=7, method=method,
            )
            expected = reference_stale_run(
                network, policy, 0.15, 1.0, 7, method, start
            )
            np.testing.assert_array_equal(trajectory.flow_matrix(), expected)
