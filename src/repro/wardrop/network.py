"""The Wardrop network: graph, latency functions and commodities.

A :class:`WardropNetwork` bundles everything that defines an instance of the
routing game of Section 2.1 of the paper:

* a directed finite multigraph ``G = (V, E)`` (a ``networkx.MultiDiGraph``),
* a latency function ``l_e`` per edge,
* a list of commodities ``(s_i, t_i, r_i)`` with ``sum_i r_i = 1``,
* the enumerated path sets ``P_i`` and the network constants used by the
  theory: the maximum path length ``D``, the maximum latency-slope ``beta``
  and the maximum path latency ``l_max``.

The network object is immutable after construction and is shared by flow
vectors, the potential, the equilibrium solvers and the rerouting simulator.
"""

from __future__ import annotations

import copy
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from ..largescale.incidence import EdgeIncidence, build_incidence
from .commodity import Commodity, demands_are_normalised, normalise_demands
from .latency import LatencyFunction
from .paths import EdgeKey, Path, PathSet, build_path_set

LATENCY_ATTR = "latency"


class WardropNetwork:
    """An instance of the Wardrop routing game.

    Parameters
    ----------
    graph:
        A directed multigraph whose edges carry a ``latency`` attribute
        holding a :class:`~repro.wardrop.latency.LatencyFunction`.
    commodities:
        The origin--destination pairs with their demands.
    normalise:
        If ``True`` (default) the demands are rescaled to sum to one, which
        is the normalisation used throughout the paper.  If ``False`` the
        demands must already be normalised.
    max_paths:
        Safety bound on the number of enumerated paths per commodity.
    paths:
        Optional prebuilt :class:`~repro.wardrop.paths.PathSet`.  When given,
        no path enumeration runs at all -- this is how the large-network
        layer builds *restricted* networks over column-generated path sets
        on graphs whose full path sets are astronomically large.  The paths
        must be valid simple paths of ``graph`` connecting each commodity's
        endpoints, in commodity order.
    incidence_mode:
        ``"auto"`` (default), ``"dense"`` or ``"sparse"`` -- the backend of
        the edge--path incidence matrix (see
        :func:`repro.largescale.incidence.build_incidence`).  Auto keeps the
        historical dense arithmetic on small instances and switches to CSR
        products at road-network sizes.
    validate_paths:
        When a prebuilt ``paths`` set is supplied, ``False`` skips the
        per-path endpoint/edge validation scan.  Column generation uses this
        on growth rebuilds: the extended set differs from an already
        validated one only by oracle-traced paths, which are graph paths by
        construction, so re-scanning the whole set per growth event would be
        the dominant rebuild cost for nothing.
    """

    def __init__(
        self,
        graph: nx.MultiDiGraph,
        commodities: Sequence[Commodity],
        normalise: bool = True,
        max_paths: int = 10_000,
        paths: Optional[PathSet] = None,
        incidence_mode: str = "auto",
        validate_paths: bool = True,
    ):
        if not commodities:
            raise ValueError("a Wardrop instance needs at least one commodity")
        if normalise:
            commodities = normalise_demands(commodities)
        elif not demands_are_normalised(commodities):
            raise ValueError("demands must sum to one (or pass normalise=True)")
        self.graph = graph
        self.commodities: List[Commodity] = list(commodities)
        self._check_latencies()
        if paths is None:
            paths = build_path_set(graph, self.commodities, max_paths=max_paths)
        elif validate_paths:
            self._check_prebuilt_paths(paths)
        self.paths: PathSet = paths
        self._edges: List[EdgeKey] = self.paths.edges()
        self._edge_index: Dict[EdgeKey, int] = {edge: i for i, edge in enumerate(self._edges)}
        # Incidence matrix A[e, p] = 1 if edge e lies on path p, behind the
        # dense/sparse backend abstraction of repro.largescale.incidence.
        self._inc: EdgeIncidence = build_incidence(
            self.paths, self._edges, mode=incidence_mode
        )
        self._demands = np.array(
            [self.commodities[self.paths.commodity_of(p)].demand for p in range(len(self.paths))]
        )
        # Per-edge latency replacements of lightweight copies made by
        # `with_latencies`; empty on a directly constructed network.
        self._latency_overrides: Dict[EdgeKey, LatencyFunction] = {}

    # Construction helpers -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable, LatencyFunction]],
        commodities: Sequence[Commodity],
        normalise: bool = True,
        max_paths: int = 10_000,
    ) -> "WardropNetwork":
        """Build a network from ``(u, v, latency)`` triples.

        Multiple triples with the same endpoints create parallel edges, as in
        the paper's two-link oscillation instance.
        """
        graph = nx.MultiDiGraph()
        for u, v, latency in edges:
            graph.add_edge(u, v, **{LATENCY_ATTR: latency})
        return cls(graph, commodities, normalise=normalise, max_paths=max_paths)

    def _check_latencies(self) -> None:
        for u, v, key, data in self.graph.edges(keys=True, data=True):
            latency = data.get(LATENCY_ATTR)
            if not isinstance(latency, LatencyFunction):
                raise ValueError(
                    f"edge ({u!r}, {v!r}, {key!r}) has no LatencyFunction "
                    f"in its '{LATENCY_ATTR}' attribute"
                )

    def _check_prebuilt_paths(self, paths: PathSet) -> None:
        """Validate a caller-supplied path set against graph and commodities."""
        if paths.num_commodities != len(self.commodities):
            raise ValueError(
                f"path set covers {paths.num_commodities} commodities, "
                f"instance has {len(self.commodities)}"
            )
        for index, commodity in enumerate(self.commodities):
            commodity_paths = paths.commodity_paths(index)
            if not commodity_paths:
                raise ValueError(f"commodity {index} has no path in the path set")
            for path in commodity_paths:
                if path.source != commodity.source or path.sink != commodity.sink:
                    raise ValueError(
                        f"path {path.describe()} does not connect commodity {index} "
                        f"({commodity.source!r}->{commodity.sink!r})"
                    )
                for u, v, key in path.edges:
                    if not self.graph.has_edge(u, v, key):
                        raise ValueError(
                            f"path edge ({u!r}, {v!r}, {key!r}) is not in the graph"
                        )

    # Basic structure -------------------------------------------------------

    @property
    def edges(self) -> List[EdgeKey]:
        """The edges that lie on at least one path, in canonical order."""
        return self._edges

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_paths(self) -> int:
        return len(self.paths)

    @property
    def num_commodities(self) -> int:
        return len(self.commodities)

    @property
    def incidence(self) -> np.ndarray:
        """The dense edge-path incidence matrix (edges x paths).

        Materialised (and cached) on demand for the sparse backend; use
        :attr:`incidence_operator` to stay in ``O(nnz)``.
        """
        return self._inc.dense()

    @property
    def incidence_operator(self) -> EdgeIncidence:
        """The incidence backend (dense or CSR) behind all evaluations."""
        return self._inc

    @property
    def path_demands(self) -> np.ndarray:
        """Vector giving, per path, the demand of its commodity."""
        return self._demands

    def edge_index(self, edge: EdgeKey) -> int:
        return self._edge_index[edge]

    def latency_function(self, edge: EdgeKey) -> LatencyFunction:
        """Return the latency function attached to ``edge``."""
        override = self._latency_overrides.get(edge)
        if override is not None:
            return override
        u, v, key = edge
        return self.graph[u][v][key][LATENCY_ATTR]

    def with_latencies(
        self, overrides: Mapping[Union[EdgeKey, int], LatencyFunction]
    ) -> "WardropNetwork":
        """Return a lightweight copy with some edge latencies replaced.

        The copy shares the graph, path set, incidence matrix and commodities
        of this network -- nothing is re-enumerated and no ``networkx`` graph
        is built -- only the latency lookup of the overridden edges changes.
        Keys may be edge triples ``(u, v, key)`` or integer positions into
        :attr:`edges`; off-path graph edges may be overridden too (they do
        not enter path evaluation, but oracle-driven consumers -- column
        generation, the edge-flow solver, scenario incidents on closed
        detour links -- read them through :meth:`latency_function`).
        Replacement functions are spot-checked with
        :meth:`~repro.wardrop.latency.LatencyFunction.validate`.

        This is the constructor behind
        :meth:`~repro.wardrop.family.NetworkFamily.from_coefficients`, which
        synthesises whole coefficient-sweep families without rebuilding
        ``B`` graphs.
        """
        mapping: Dict[EdgeKey, LatencyFunction] = {}
        for key, function in overrides.items():
            edge = self._edges[key] if isinstance(key, (int, np.integer)) else key
            if edge not in self._edge_index and not self.graph.has_edge(*edge):
                raise ValueError(f"unknown edge {edge!r}")
            if not isinstance(function, LatencyFunction):
                raise ValueError(f"override for edge {edge!r} is not a LatencyFunction")
            function.validate()
            mapping[edge] = function
        clone = copy.copy(self)
        clone._latency_overrides = {**self._latency_overrides, **mapping}
        return clone

    # Network constants used by the theory ----------------------------------

    def max_path_length(self) -> int:
        """Return ``D``, the maximum number of edges on any path."""
        return self.paths.max_path_length()

    def max_slope(self) -> float:
        """Return ``beta``, the maximum slope of any edge latency on [0, 1]."""
        return max(self.latency_function(edge).max_slope(0.0, 1.0) for edge in self._edges)

    def max_latency(self) -> float:
        """Return ``l_max``, an upper bound on the latency of any path.

        Following the paper, ``l_max = max_P sum_{e in P} l_e(1)`` -- the
        latency a path would have if the entire unit demand were routed over
        every one of its edges.
        """
        best = 0.0
        for path in self.paths:
            best = max(best, sum(self.latency_function(edge).value(1.0) for edge in path.edges))
        return best

    # Latency evaluation -----------------------------------------------------

    def edge_flows(self, path_flows: np.ndarray) -> np.ndarray:
        """Aggregate a path-flow vector to edge flows ``f_e = sum_{P ∋ e} f_P``."""
        return self._inc.edge_flows(path_flows)

    def edge_latencies(self, edge_flows: np.ndarray) -> np.ndarray:
        """Evaluate every edge latency at the given edge flows."""
        return np.array(
            [self.latency_function(edge).value(edge_flows[i]) for i, edge in enumerate(self._edges)]
        )

    def edge_latency_derivatives(self, edge_flows: np.ndarray) -> np.ndarray:
        """Evaluate every edge latency derivative at the given edge flows."""
        return np.array(
            [
                self.latency_function(edge).derivative(edge_flows[i])
                for i, edge in enumerate(self._edges)
            ]
        )

    def path_latencies(self, path_flows: np.ndarray) -> np.ndarray:
        """Return ``l_P(f)`` for every path, additive along edges."""
        edge_flows = self.edge_flows(path_flows)
        edge_latencies = self.edge_latencies(edge_flows)
        return self._inc.path_totals(edge_latencies)

    def path_latencies_from_edge_latencies(self, edge_latencies: np.ndarray) -> np.ndarray:
        """Return path latencies given precomputed edge latencies.

        Used by the bulletin-board model, where path latencies must be
        computed from the *posted* (stale) edge latencies rather than the
        live ones.
        """
        return self._inc.path_totals(edge_latencies)

    # Batched evaluation -----------------------------------------------------
    #
    # The batched simulation engine (:mod:`repro.batch`) evolves an ensemble
    # of B independent flows on the same network as one (B, P) array.  The
    # methods below are the row-wise counterparts of the scalar evaluators
    # above: row b of the result equals the scalar method applied to row b.

    def edge_flows_batch(self, path_flows: np.ndarray) -> np.ndarray:
        """Aggregate a ``(B, P)`` batch of path flows to ``(B, E)`` edge flows."""
        return self._inc.edge_flows_batch(path_flows)

    def edge_latencies_batch(self, edge_flows: np.ndarray) -> np.ndarray:
        """Evaluate every edge latency on a ``(B, E)`` batch of edge flows."""
        edge_flows = np.asarray(edge_flows, dtype=float)
        result = np.empty_like(edge_flows)
        for i, edge in enumerate(self._edges):
            result[:, i] = self.latency_function(edge).value_array(edge_flows[:, i])
        return result

    def path_latencies_batch(self, path_flows: np.ndarray) -> np.ndarray:
        """Return ``l_P`` for every row of a ``(B, P)`` batch of path flows."""
        edge_latencies = self.edge_latencies_batch(self.edge_flows_batch(path_flows))
        return self.path_latencies_from_edge_latencies_batch(edge_latencies)

    def path_latencies_from_edge_latencies_batch(self, edge_latencies: np.ndarray) -> np.ndarray:
        """Return ``(B, P)`` path latencies from ``(B, E)`` posted edge latencies."""
        return self._inc.path_totals_batch(edge_latencies)

    # Descriptions ----------------------------------------------------------

    def commodity_label(self, index: int) -> str:
        return self.commodities[index].label(index)

    def describe(self) -> str:
        """Return a short multi-line description of the instance."""
        lines = [
            f"WardropNetwork: {self.graph.number_of_nodes()} nodes, "
            f"{self.graph.number_of_edges()} edges, {self.num_commodities} commodities, "
            f"{self.num_paths} paths",
            f"  D (max path length) = {self.max_path_length()}",
            f"  beta (max slope)    = {self.max_slope():.6g}",
            f"  l_max               = {self.max_latency():.6g}",
        ]
        for index, commodity in enumerate(self.commodities):
            paths = self.paths.commodity_paths(index)
            lines.append(
                f"  {commodity.label(index)}: {commodity.source!r} -> {commodity.sink!r}, "
                f"demand {commodity.demand:.4g}, {len(paths)} paths"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"WardropNetwork(nodes={self.graph.number_of_nodes()}, "
            f"edges={self.graph.number_of_edges()}, commodities={self.num_commodities}, "
            f"paths={self.num_paths})"
        )
