"""Sampling rules: the first step of the two-step rerouting policy.

When an agent of commodity ``i`` currently on path ``P`` is activated it
first *samples* an alternative path ``Q in P_i`` according to a probability
distribution ``sigma_PQ(f)`` (Section 2.2 of the paper).  The class of
policies analysed in the paper requires

* ``sigma_PQ`` continuous (in fact Lipschitz continuous) in the flow ``f``,
* ``sigma_PQ > 0`` for every path ``Q`` -- otherwise paths needed at the
  equilibrium could never be discovered.

The concrete rules implemented here are the two rules the paper analyses plus
the smoothed-best-response rule it discusses:

* :class:`UniformSampling` -- ``sigma_PQ = 1 / |P_i|`` (Theorem 6),
* :class:`ProportionalSampling` -- ``sigma_PQ = f_Q / r_i``, i.e. sample
  another agent of the same commodity and look at its path; combined with the
  linear migration rule this is the replicator dynamics (Theorem 7),
* :class:`SoftmaxSampling` -- ``sigma_PQ ∝ exp(-c * l_Q)``, which approaches
  best response as ``c`` grows (Section 2.2, Eq. before (2)).

Sampling rules evaluate against the flow and latencies *posted on the
bulletin board*, not the live ones; the simulator passes the stale values in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..wardrop.network import WardropNetwork


class SamplingRule(ABC):
    """A rule producing, per commodity, a distribution over sampled paths.

    Implementations return a matrix ``sigma`` of shape ``(|P|, |P|)`` whose
    entry ``sigma[p, q]`` is the probability that an agent on (global) path
    ``p`` samples path ``q``.  Rows corresponding to paths of commodity ``i``
    place probability only on paths of the same commodity and sum to one.
    """

    @abstractmethod
    def probabilities(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        """Return the sampling matrix for the posted (bulletin-board) state."""

    def probabilities_batch(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        """Return a ``(B, P, P)`` stack of sampling matrices, one per batch row.

        ``posted_flows`` and ``posted_path_latencies`` have shape ``(B, P)``.
        The default loops over the rows and calls :meth:`probabilities`, so
        custom sampling rules work in the batched engine unchanged; the
        built-in rules override this with a vectorised implementation that
        performs the same floating-point operations row by row.
        """
        return np.stack(
            [
                self.probabilities(network, posted_flows[b], posted_path_latencies[b])
                for b in range(posted_flows.shape[0])
            ]
        )

    def validate(self, sigma: np.ndarray, network: WardropNetwork, tolerance: float = 1e-9) -> None:
        """Check that ``sigma`` is a proper within-commodity stochastic matrix."""
        if sigma.shape != (network.num_paths, network.num_paths):
            raise ValueError("sampling matrix has the wrong shape")
        if np.any(sigma < -tolerance):
            raise ValueError("sampling probabilities must be non-negative")
        for i in range(network.num_commodities):
            indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
            block = sigma[np.ix_(indices, indices)]
            row_sums = block.sum(axis=1)
            if np.any(np.abs(row_sums - 1.0) > 1e-6):
                raise ValueError(f"sampling rows of commodity {i} do not sum to one")
            outside = sigma[np.ix_(indices, np.setdiff1d(np.arange(network.num_paths), indices))]
            if outside.size and np.any(np.abs(outside) > tolerance):
                raise ValueError("sampling leaks probability across commodities")

    @property
    def name(self) -> str:
        return type(self).__name__


class UniformSampling(SamplingRule):
    """Sample a path of the own commodity uniformly at random.

    ``sigma_PQ = 1 / |P_i|`` for all ``P, Q in P_i``; independent of the flow,
    hence trivially Lipschitz continuous and everywhere positive.
    """

    def probabilities(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        sigma = np.zeros((network.num_paths, network.num_paths))
        for i in range(network.num_commodities):
            indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
            sigma[np.ix_(indices, indices)] = 1.0 / len(indices)
        return sigma

    def probabilities_batch(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        # Flow-independent: one template broadcast over the batch (read-only).
        template = self.probabilities(network, posted_flows[0], posted_path_latencies[0])
        return np.broadcast_to(template, (posted_flows.shape[0],) + template.shape)


class ProportionalSampling(SamplingRule):
    """Sample a path proportionally to the flow using it (replicator sampling).

    ``sigma_PQ(f) = f_Q / r_i``: pick another agent of the commodity uniformly
    at random and consider its path.  To keep the rule strictly positive on
    all paths -- a requirement for convergence to equilibria whose support may
    include currently unused paths -- an ``exploration`` mass is mixed in
    uniformly (the paper's positivity requirement ``sigma_PQ > 0``).
    """

    def __init__(self, exploration: float = 1e-6):
        if not 0.0 <= exploration < 1.0:
            raise ValueError("exploration must lie in [0, 1)")
        self.exploration = float(exploration)

    def probabilities(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        sigma = np.zeros((network.num_paths, network.num_paths))
        for i, commodity in enumerate(network.commodities):
            indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
            shares = np.clip(posted_flows[indices], 0.0, None)
            total = shares.sum()
            if total <= 0:
                distribution = np.full(len(indices), 1.0 / len(indices))
            else:
                distribution = shares / total
            if self.exploration > 0:
                distribution = (
                    (1.0 - self.exploration) * distribution
                    + self.exploration / len(indices)
                )
            sigma[np.ix_(indices, indices)] = np.tile(distribution, (len(indices), 1))
        return sigma

    def probabilities_batch(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        batch = posted_flows.shape[0]
        sigma = np.zeros((batch, network.num_paths, network.num_paths))
        rows = np.arange(batch)
        for i in range(network.num_commodities):
            indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
            shares = np.clip(posted_flows[:, indices], 0.0, None)
            totals = shares.sum(axis=1)
            starved = totals <= 0
            with np.errstate(divide="ignore", invalid="ignore"):
                distribution = shares / totals[:, None]
            distribution[starved] = 1.0 / len(indices)
            if self.exploration > 0:
                distribution = (
                    (1.0 - self.exploration) * distribution
                    + self.exploration / len(indices)
                )
            sigma[np.ix_(rows, indices, indices)] = distribution[:, None, :]
        return sigma


class SoftmaxSampling(SamplingRule):
    """Smoothed best-response sampling ``sigma_PQ ∝ exp(-c * l_Q)``.

    For large ``c`` the distribution concentrates on the minimum-latency path
    and the combined policy approximates best response; the paper notes that
    such policies formally fit the smooth class but with a large smoothness
    parameter, and the benchmarks use this rule to interpolate between
    convergent and oscillating behaviour.
    """

    def __init__(self, concentration: float = 1.0):
        if concentration <= 0:
            raise ValueError("concentration parameter c must be positive")
        self.concentration = float(concentration)

    def probabilities(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        sigma = np.zeros((network.num_paths, network.num_paths))
        for i in range(network.num_commodities):
            indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
            latencies = posted_path_latencies[indices]
            # Subtract the minimum before exponentiating for numerical safety.
            scores = np.exp(-self.concentration * (latencies - latencies.min()))
            distribution = scores / scores.sum()
            sigma[np.ix_(indices, indices)] = np.tile(distribution, (len(indices), 1))
        return sigma

    def probabilities_batch(
        self,
        network: WardropNetwork,
        posted_flows: np.ndarray,
        posted_path_latencies: np.ndarray,
    ) -> np.ndarray:
        batch = posted_flows.shape[0]
        sigma = np.zeros((batch, network.num_paths, network.num_paths))
        rows = np.arange(batch)
        for i in range(network.num_commodities):
            indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
            latencies = posted_path_latencies[:, indices]
            scores = np.exp(
                -self.concentration * (latencies - latencies.min(axis=1, keepdims=True))
            )
            distribution = scores / scores.sum(axis=1, keepdims=True)
            sigma[np.ix_(rows, indices, indices)] = distribution[:, None, :]
        return sigma
