"""Parameter-sweep harness shared by the benchmarks and examples.

Every experiment in EXPERIMENTS.md is a sweep: run the same dynamics while
varying one or two parameters (update period, smoothness, number of links,
approximation target delta, population size ...) and collect one summary row
per setting.  The harness here removes the boilerplate so each benchmark
focuses on what it varies and what it measures.

Execution is delegated to :mod:`repro.experiments.runner`: cases whose
networks share a topology (identical network objects, or same-topology
networks with different latency coefficients, which stack into a
:class:`~repro.wardrop.family.NetworkFamily`) are fused into one vectorized
:class:`~repro.batch.BatchSimulator` integration, heterogeneous cases can be
fanned out over a process pool, and ``engine="serial"`` recovers the
original one-at-a-time loop.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from ..core.policy import ReroutingPolicy
from ..core.trajectory import Trajectory
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .convergence import ConvergenceSummary, count_bad_phases

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ..batch.stopping import StopCondition
    from ..scenarios.scenario import Scenario

# A row builder may return one row or a list of rows (e.g. one per target
# delta evaluated on the same trajectory).
RowBuilder = Callable[[Trajectory], Union[Mapping[str, object], Sequence[Mapping[str, object]]]]


@dataclass
class SweepCase:
    """One parameter setting of a sweep.

    ``parameters`` are echoed into the result row; the remaining fields
    define the run.  ``method`` selects the engine: ``"rk4"`` / ``"euler"``
    run the fluid-limit integrator, ``"agents"`` runs the finite-population
    discrete-event simulator (``num_agents`` agents, seeded with ``seed``;
    ``steps_per_phase`` is then ignored).  ``stop_when`` is an optional
    :class:`~repro.batch.stopping.StopCondition` evaluated at every phase
    boundary (fluid and agent methods); the runner threads it through both
    the scalar and the batched backend, where the case is always evaluated
    as batch row 0, so the stop phase never depends on the dispatch
    decision.  A per-case condition must therefore be authored for the
    case's *own* network -- e.g. ``equilibrium_gap_stop(case.network,
    delta)`` or ``distance_stop(target_of_this_case[None, :], tol)`` --
    never for a whole family indexed by batch row (family-wide conditions
    belong to a direct ``BatchSimulator.run(stop_when=...)`` call, which
    passes true row indices).

    ``column_generation`` runs the case through the large-network
    column-generation simulator instead (fluid methods only): the network's
    path set is re-seeded with free-flow shortest paths and grows at
    bulletin refreshes.  CG cases sharing the same network object, update
    period, horizon and steps-per-phase fuse onto the batched CG driver
    (:func:`~repro.largescale.batch_columns.simulate_with_column_generation_batch`,
    padded path dimension, one shared oracle); note that fused *open-mode*
    rows grow a shared union path set, so pass ``engine="serial"`` when
    per-row discovery sets must stay independent (closed-mode fusions stay
    bit-identical per row).  CG cases reject ``initial_flow`` and
    ``stop_when`` (both are authored for the case network's fixed path
    dimension; pass a scalar ``stop_when`` to
    :func:`~repro.largescale.columns.simulate_with_column_generation`
    directly instead) and run serially so those errors surface.

    ``scenario`` makes the case's environment nonstationary (see
    :mod:`repro.scenarios`).  Scenarios ride along per row: same-topology
    fluid cases with *different* scenarios still fuse into one batched
    integration (the engine stacks their per-phase effective networks).
    Agent-method cases with a scenario run on the scalar engine (the batched
    agent engine does not take scenarios yet), dispatched serially by the
    runner.
    """

    parameters: Dict[str, object]
    network: WardropNetwork
    policy: ReroutingPolicy
    update_period: float
    horizon: float
    initial_flow: Optional[FlowVector] = None
    stale: bool = True
    steps_per_phase: int = 50
    method: str = "rk4"
    num_agents: Optional[int] = None
    seed: int = 0
    stop_when: Optional["StopCondition"] = None
    column_generation: bool = False
    scenario: Optional["Scenario"] = None


@dataclass
class SweepResult:
    """The collected rows of a sweep, one per case."""

    rows: List[Dict[str, object]] = field(default_factory=list)

    def append(self, row: Mapping[str, object]) -> None:
        self.rows.append(dict(row))

    def column(self, name: str) -> List[object]:
        return [row.get(name) for row in self.rows]

    def merge_metrics(self, metrics: Mapping[str, object], prefix: str = "tele_") -> None:
        """Merge a flat telemetry-metrics dict into every row.

        Used by the CLI's ``--metrics`` flag: the active session's
        ``metrics.flatten()`` output lands in each row under ``prefix``-ed
        column names, so the counters persist through :meth:`to_csv` /
        :meth:`to_jsonl` next to the sweep's own columns.  Existing columns
        are never overwritten.
        """
        for row in self.rows:
            for key, value in metrics.items():
                row.setdefault(prefix + key, value)

    def __len__(self) -> int:
        return len(self.rows)

    # Persistence ------------------------------------------------------------

    def fieldnames(self) -> List[str]:
        """Return the union of row keys in first-seen order."""
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def to_csv(self, path) -> None:
        """Write the rows as a CSV file with a header line."""
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=self.fieldnames())
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)

    def to_jsonl(self, path) -> None:
        """Write the rows as JSON Lines (one JSON object per row)."""
        with open(path, "w") as handle:
            for row in self.rows:
                handle.write(json.dumps(row, default=str) + "\n")

    @classmethod
    def from_csv(cls, path) -> "SweepResult":
        """Load rows written by :meth:`to_csv`.

        CSV carries no type information, so every value comes back as a
        string (missing columns as ``""``); use :meth:`from_jsonl` when the
        original types matter.
        """
        with open(path, newline="") as handle:
            return cls(rows=[dict(row) for row in csv.DictReader(handle)])

    @classmethod
    def from_jsonl(cls, path) -> "SweepResult":
        """Load rows written by :meth:`to_jsonl` (JSON types preserved)."""
        with open(path) as handle:
            return cls(rows=[json.loads(line) for line in handle if line.strip()])


def run_sweep(
    cases: Iterable[SweepCase],
    row_builder: RowBuilder,
    engine: str = "auto",
    processes: Optional[int] = None,
) -> SweepResult:
    """Run every case and collect ``parameters | row_builder(trajectory)`` rows.

    ``engine`` selects the execution backend (see
    :func:`repro.experiments.runner.run_cases`): ``"auto"`` fuses
    same-topology groups (including different-coefficient network families)
    into batched integrations, ``"batch"`` forces batching, ``"serial"``
    runs the original scalar loop and ``"processes"`` uses a worker pool.
    """
    # Imported lazily: the runner builds on analysis types defined above.
    from ..experiments.runner import run_cases

    return run_cases(list(cases), row_builder, engine=engine, processes=processes)


def convergence_row_builder(delta: float, epsilon: float) -> RowBuilder:
    """Return a row builder reporting the Theorem 6/7 bad-phase counts."""

    def build(trajectory: Trajectory) -> Mapping[str, object]:
        summary: ConvergenceSummary = count_bad_phases(trajectory, delta, epsilon)
        return {
            "phases": summary.total_phases,
            "bad_phases": summary.bad_phases,
            "weak_bad_phases": summary.weak_bad_phases,
            "last_bad_phase": summary.last_bad_phase,
        }

    return build


def cartesian(**axes: Sequence[object]) -> List[Dict[str, object]]:
    """Return the cartesian product of named parameter axes as dicts.

    ``cartesian(T=[0.1, 0.2], beta=[1, 2])`` yields four dictionaries; the
    benches use this to spell out their grids declaratively.
    """
    names = list(axes)
    combos: List[Dict[str, object]] = [{}]
    for name in names:
        combos = [dict(combo, **{name: value}) for combo in combos for value in axes[name]]
    return combos
