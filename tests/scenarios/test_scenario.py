"""Scenario compilation: modulations, incidents, caching and ModulatedLatency."""

import numpy as np
import pytest

from repro.instances import braess_network, pigou_network
from repro.scenarios import (
    CoefficientSchedule,
    ConstantSchedule,
    IncidentPlan,
    LinkIncident,
    PiecewiseConstantSchedule,
    Scenario,
)
from repro.wardrop.latency import BPRLatency, LinearLatency, ModulatedLatency


class TestModulatedLatency:
    def test_value_derivative_integral(self):
        base = LinearLatency(2.0)
        wrapped = ModulatedLatency(base, gain=3.0, stretch=2.0, offset=1.0)
        # value = 3 * (2 * (2x)) + 1 = 12x + 1
        assert wrapped.value(0.5) == pytest.approx(7.0)
        assert wrapped.derivative(0.5) == pytest.approx(12.0)
        # integral of 12u + 1 on [0, 0.5] = 6 * 0.25 + 0.5
        assert wrapped.integral(0.5) == pytest.approx(2.0)
        assert wrapped.max_slope() == pytest.approx(12.0)

    def test_identity_is_float_transparent(self):
        base = BPRLatency(free_flow_time=3.7, capacity=0.13)
        wrapped = ModulatedLatency(base)
        xs = np.linspace(0.0, 1.0, 37)
        np.testing.assert_array_equal(wrapped.value_array(xs), base.value_array(xs))
        for x in xs:
            assert wrapped.value(float(x)) == base.value(float(x))

    def test_capacity_drop_equals_bpr_capacity_rescale(self):
        base = BPRLatency(free_flow_time=2.0, capacity=0.5, alpha=0.15, beta=4)
        dropped = ModulatedLatency(base, stretch=1.0 / 0.4)
        rescaled = BPRLatency(free_flow_time=2.0, capacity=0.5 * 0.4, alpha=0.15, beta=4)
        for x in np.linspace(0.0, 1.0, 21):
            assert dropped.value(float(x)) == pytest.approx(rescaled.value(float(x)))

    def test_stacked_evaluator_matches_scalar(self):
        bases = [LinearLatency(1.0), LinearLatency(2.0), LinearLatency(3.0)]
        functions = [
            ModulatedLatency(bases[0], gain=1.5, stretch=1.0, offset=0.0),
            ModulatedLatency(bases[1], gain=1.0, stretch=2.0, offset=0.5),
            ModulatedLatency(bases[2]),
        ]
        evaluate = ModulatedLatency.stacked_evaluator(functions)
        x = np.array([0.3, 0.6, 0.9])
        rows = np.arange(3)
        expected = np.array([f.value(v) for f, v in zip(functions, x)])
        np.testing.assert_array_equal(evaluate(x, rows), expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModulatedLatency(LinearLatency(1.0), gain=-1.0)
        with pytest.raises(ValueError):
            ModulatedLatency(LinearLatency(1.0), stretch=0.0)


class TestIncidents:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            LinkIncident(("a", "b", 0), 2.0, 1.0)
        with pytest.raises(ValueError):
            LinkIncident(("a", "b", 0), 0.0, 1.0, capacity_factor=1.5)
        with pytest.raises(ValueError):
            LinkIncident(("a", "b", 0), 0.0, 1.0, capacity_factor=0.0, closure_penalty=0.0)

    def test_overlapping_incidents_compose(self):
        plan = IncidentPlan(
            [
                LinkIncident(("u", "v", 0), 0.0, 2.0, capacity_factor=0.5),
                LinkIncident(("u", "v", 0), 1.0, 3.0, capacity_factor=0.5),
                LinkIncident(("u", "v", 0), 1.0, 3.0, capacity_factor=0.0, closure_penalty=7.0),
            ]
        )
        gain, stretch, offset = plan.modulation_at(1.5)[("u", "v", 0)]
        assert stretch == pytest.approx(4.0)  # two 50% drops multiply
        assert offset == pytest.approx(7.0)
        assert plan.closed_edges(1.5) == frozenset({("u", "v", 0)})
        assert plan.closed_edges(0.5) == frozenset()
        assert plan.breakpoints(0.0, 5.0) == [1.0, 2.0, 3.0]


class TestScenario:
    def test_composed_modulation(self):
        scenario = Scenario(
            demand=PiecewiseConstantSchedule([1.0], [1.0, 1.2]),
            coefficients=CoefficientSchedule(ConstantSchedule(2.0), edges=[("s", "a", 0)]),
            incidents=[LinkIncident(("s", "a", 0), 0.5, 2.0, capacity_factor=0.5)],
        )
        modulation = scenario.modulation_at(1.5)
        assert modulation.demand == pytest.approx(1.2)
        gain, stretch, offset = modulation.triple_for(("s", "a", 0))
        assert gain == pytest.approx(2.0)
        assert stretch == pytest.approx(1.2 * 2.0)  # demand times capacity drop
        assert offset == 0.0
        # unaffected edge still carries the demand stretch
        assert modulation.triple_for(("a", "t", 0)) == (1.0, 1.2, 0.0)

    def test_scope_and_breakpoints(self):
        network = braess_network()
        edge_only = Scenario(
            incidents=[LinkIncident(("a", "b", 0), 1.0, 2.0, capacity_factor=0.5)]
        )
        assert edge_only.scope(network) == [("a", "b", 0)]
        assert edge_only.breakpoints(0.0, 5.0) == [1.0, 2.0]
        global_scope = Scenario(demand=PiecewiseConstantSchedule([1.0], [1.0, 2.0]))
        assert global_scope.scope(network) is None

    def test_network_at_caches_by_modulation(self):
        network = pigou_network(degree=1)
        scenario = Scenario(demand=PiecewiseConstantSchedule([1.0], [1.0, 1.5]))
        before = scenario.network_at(network, 0.0)
        assert before is network  # identity modulation, no wrapping
        first = scenario.network_at(network, 1.25)
        second = scenario.network_at(network, 7.5)  # same modulation value
        assert first is second
        flows = np.array([0.5, 0.5])
        stretched = first.path_latencies(flows)
        plain = network.path_latencies(flows)
        assert (stretched >= plain).all() and (stretched != plain).any()

    def test_unknown_incident_edge_is_rejected_at_run_start(self):
        """A typo'd edge must fail loudly, not run as a stationary no-op."""
        from repro.batch.engine import simulate_batch
        from repro.core import simulate, simulate_agents, uniform_policy

        network = braess_network()
        policy = uniform_policy(network)
        scenario = Scenario(
            incidents=[LinkIncident(("a", "nope", 0), 1.0, 2.0, capacity_factor=0.5)]
        )
        with pytest.raises(ValueError, match="not in the network"):
            simulate(network, policy, update_period=0.25, horizon=1.0, scenario=scenario)
        with pytest.raises(ValueError, match="not in the network"):
            simulate_agents(
                network, policy, num_agents=10, update_period=0.25, horizon=1.0,
                scenario=scenario,
            )
        with pytest.raises(ValueError, match="not in the network"):
            simulate_batch(
                network, policy, update_periods=[0.25], horizons=1.0,
                scenarios=[scenario],
            )

    def test_network_cache_is_bounded(self):
        from repro.scenarios.scenario import NETWORK_CACHE_LIMIT

        network = pigou_network(degree=1)
        # A ramp: every sample time is a distinct modulation.
        scenario = Scenario(
            demand=PiecewiseConstantSchedule(
                list(np.arange(1.0, 300.0)), [1.0 + 0.001 * k for k in range(300)]
            )
        )
        for t in np.arange(0.5, 299.0, 1.0):
            scenario.network_at(network, float(t))
        assert len(scenario._cache) <= NETWORK_CACHE_LIMIT

    def test_effective_network_prices_closures(self):
        network = braess_network()
        scenario = Scenario(
            incidents=[
                LinkIncident(("a", "b", 0), 10.0, 20.0, capacity_factor=0.0, closure_penalty=10.0)
            ]
        )
        effective = scenario.network_at(network, 12.0)
        flows = np.full(network.num_paths, 1.0 / network.num_paths)
        latencies = dict(zip(network.paths.describe(), effective.path_latencies(flows)))
        assert latencies["s->a->b->t"] > 10.0
        assert latencies["s->a->t"] < 10.0
