"""Unit tests for the Beckmann potential and the Lemma 3 decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.wardrop import (
    FlowVector,
    decompose_phase,
    error_terms,
    potential,
    potential_of_edge_flows,
    potential_trace,
    virtual_potential_gain,
)


class TestPotentialValue:
    def test_two_link_closed_form(self, two_links):
        # Each ThresholdLatency(beta=1) has integral beta*(x-1/2)^2/2 for x>1/2.
        flow = FlowVector(two_links, [0.75, 0.25])
        expected = 0.5 * (0.75 - 0.5) ** 2
        assert potential(flow) == pytest.approx(expected)

    def test_equilibrium_minimises_potential(self, two_links):
        equilibrium = FlowVector(two_links, [0.5, 0.5])
        for first in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]:
            other = FlowVector(two_links, [first, 1.0 - first])
            assert potential(equilibrium) <= potential(other) + 1e-12

    def test_matches_edge_flow_form(self, braess):
        flow = FlowVector.uniform(braess)
        assert potential(flow) == pytest.approx(
            potential_of_edge_flows(braess, flow.edge_flows())
        )

    def test_potential_trace(self, two_links):
        flows = [FlowVector(two_links, [x, 1 - x]) for x in [0.5, 0.7, 0.9]]
        trace = potential_trace(flows)
        assert len(trace) == 3
        assert trace[0] <= trace[1] <= trace[2]


class TestLemma3Decomposition:
    @pytest.mark.parametrize("start,end", [(0.9, 0.6), (0.5, 0.5), (0.2, 0.8)])
    def test_identity_holds_exactly_two_links(self, two_links, start, end):
        stale = FlowVector(two_links, [start, 1 - start])
        current = FlowVector(two_links, [end, 1 - end])
        decomposition = decompose_phase(stale, current)
        assert decomposition.identity_residual == pytest.approx(0.0, abs=1e-12)

    def test_identity_holds_on_braess(self, braess):
        rng = np.random.default_rng(42)
        for _ in range(10):
            stale = FlowVector.random(braess, rng)
            current = FlowVector.random(braess, rng)
            decomposition = decompose_phase(stale, current)
            assert decomposition.identity_residual == pytest.approx(0.0, abs=1e-10)

    def test_error_terms_nonnegative_for_monotone_latencies(self, braess):
        # U_e = int (l(u) - l(fhat)) du over [fhat, f]; for non-decreasing l
        # this is always >= 0 regardless of direction of the change.
        rng = np.random.default_rng(7)
        for _ in range(10):
            stale = FlowVector.random(braess, rng)
            current = FlowVector.random(braess, rng)
            assert np.all(error_terms(stale, current) >= -1e-12)

    def test_virtual_gain_zero_for_no_move(self, braess):
        flow = FlowVector.uniform(braess)
        assert virtual_potential_gain(flow, flow) == pytest.approx(0.0)

    def test_virtual_gain_negative_for_selfish_move(self, two_links):
        # Moving flow from the loaded (expensive) link to the empty one.
        stale = FlowVector(two_links, [0.9, 0.1])
        current = FlowVector(two_links, [0.7, 0.3])
        assert virtual_potential_gain(stale, current) < 0.0

    def test_cross_network_rejected(self, two_links, braess):
        with pytest.raises(ValueError):
            virtual_potential_gain(FlowVector.uniform(two_links), FlowVector.uniform(braess))

    def test_satisfies_lemma4_flag(self, two_links):
        stale = FlowVector(two_links, [0.9, 0.1])
        current = FlowVector(two_links, [0.85, 0.15])
        decomposition = decompose_phase(stale, current)
        # A small move in the selfish direction keeps Delta Phi below V/2.
        assert decomposition.satisfies_lemma4()
