"""Batched bulletin boards: one stale-information board per ensemble row.

The scalar :class:`~repro.core.bulletin.BulletinBoard` freezes the network
state once per phase of length ``T``.  When an ensemble of ``B`` independent
replicas is integrated as a single ``(B, P)`` array, every row keeps its own
board: rows may use different update periods, so their phase clocks tick at
different wall-clock times even though the engine advances them phase by
phase in lockstep (row ``r`` is always inside *its own* phase ``k``; the
rows' absolute times simply differ, which is fine because replicas are
independent).

:class:`BatchBulletinBoard` stores the posted flows, posted edge latencies
and posted path latencies of all rows as stacked arrays, and refreshes any
subset of rows in one vectorised network evaluation.  The rows may route on
a single shared network or on the members of a
:class:`~repro.wardrop.family.NetworkFamily` (same topology, per-row latency
coefficients); in the family case row ``r``'s snapshot is evaluated with
member ``r``'s latency functions.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..wardrop.family import NetworkFamily
from ..wardrop.network import WardropNetwork


class BatchBulletinBoard:
    """``B`` bulletin boards with per-row update periods, stored as arrays.

    Attributes
    ----------
    update_periods:
        Array of shape ``(B,)`` with each row's refresh interval ``T_r``.
    phase_index:
        Array of shape ``(B,)`` counting completed refreshes per row (−1
        before the first post, matching the scalar board).
    posted_flows / posted_edge_latencies / posted_path_latencies:
        The stacked snapshots, shapes ``(B, P)``, ``(B, E)``, ``(B, P)``.
    posted_times:
        The per-row phase-start times ``t_hat_r`` of the current snapshots.
    """

    def __init__(
        self,
        network: Union[WardropNetwork, NetworkFamily],
        update_periods: np.ndarray,
    ):
        update_periods = np.asarray(update_periods, dtype=float)
        if update_periods.ndim != 1:
            raise ValueError("update_periods must be a one-dimensional array")
        if np.any(update_periods <= 0):
            raise ValueError("all update periods must be positive")
        self.update_periods = update_periods
        self.family: Optional[NetworkFamily] = None
        self.set_networks(network)
        batch = len(update_periods)
        self.posted_flows = np.zeros((batch, self.network.num_paths))
        self.posted_edge_latencies = np.zeros((batch, self.network.num_edges))
        self.posted_path_latencies = np.zeros((batch, self.network.num_paths))
        self.posted_times = np.full(batch, -np.inf)
        self.phase_index = np.full(batch, -1, dtype=int)
        self._ever_posted = np.zeros(batch, dtype=bool)

    def __len__(self) -> int:
        return len(self.update_periods)

    def set_networks(self, network: Union[WardropNetwork, NetworkFamily]) -> None:
        """Swap the latency source to another same-topology network/family.

        The scenario layer calls this at every phase boundary: posting then
        prices the rows' live flows in their *current* environments.  Only the
        latency functions may differ -- posted arrays, clocks and phase
        counters are untouched, exactly as when the scalar simulator points
        its board at the phase's effective network.
        """
        if isinstance(network, NetworkFamily):
            if network.size != len(self):
                raise ValueError(
                    f"family of {network.size} networks for {len(self)} boards"
                )
            self.family = network
            self.network = network.base
        else:
            self.family = None
            self.network = network

    def phase_starts(self, times: np.ndarray) -> np.ndarray:
        """Return ``t_hat_r = floor(t_r / T_r) * T_r`` for every row."""
        times = np.asarray(times, dtype=float)
        return np.floor(times / self.update_periods) * self.update_periods

    def post_rows(
        self,
        times: np.ndarray,
        path_flows: np.ndarray,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """Refresh the boards of the rows selected by ``mask`` (all by default).

        ``times`` is the per-row current time (shape ``(B,)`` or a scalar
        broadcast to all rows); ``path_flows`` is the live ``(B, P)`` state.
        Only the masked rows' snapshots change, exactly like calling the
        scalar board's ``post`` on those replicas.
        """
        network = self.network
        times = np.broadcast_to(np.asarray(times, dtype=float), (len(self),))
        if mask is None:
            mask = np.ones(len(self), dtype=bool)
        if not mask.any():
            return
        flows = np.asarray(path_flows, dtype=float)[mask]
        edge_flows = network.edge_flows_batch(flows)
        if self.family is None:
            edge_latencies = network.edge_latencies_batch(edge_flows)
        else:
            edge_latencies = self.family.edge_latencies_batch(
                edge_flows, np.flatnonzero(mask)
            )
        self.posted_flows[mask] = flows
        self.posted_edge_latencies[mask] = edge_latencies
        self.posted_path_latencies[mask] = network.path_latencies_from_edge_latencies_batch(
            edge_latencies
        )
        self.posted_times[mask] = self.phase_starts(times)[mask]
        self.phase_index[mask] += 1
        self._ever_posted |= mask

    def needs_update(self, times: np.ndarray) -> np.ndarray:
        """Return the boolean mask of rows whose refresh is due at ``times``."""
        due = self.phase_starts(times) > self.posted_times + 1e-12
        return due | ~self._ever_posted
