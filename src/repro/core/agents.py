"""Finite-population agent-based simulator with Poisson activation clocks.

The paper's analysis lives in the fluid limit (an infinite population of
infinitesimal agents), but its motivation is a finite distributed system:
``n`` agents, each controlling ``1/n``-th of the demand, each activated at
the jumps of its own unit-rate Poisson process, each applying the two-step
sample-and-migrate policy against the bulletin board.

This module implements that finite system directly as a discrete-event
simulation.  It serves two purposes in the reproduction:

* it validates that the fluid-limit ODE is the right abstraction -- as ``n``
  grows the empirical population shares converge to the ODE trajectory
  (benchmark E9), and
* it gives downstream users a simulator that matches the deployment story
  (real routers/agents are finite), not just the analysis tool.

Randomness schedule (the seeding contract)
------------------------------------------
The union of all agents' Poisson clocks is a Poisson process of rate ``n``,
so the number of activations inside one bulletin-board phase of length ``d``
is ``Poisson(n * d)`` and the activated agents are i.i.d. uniform.  The
simulator therefore draws its randomness *per phase, in blocks*:

1. ``K = rng.poisson(n * d)``        -- the activation count of the phase,
2. ``rng.integers(n, size=K)``       -- the activated agents, in clock order,
3. ``rng.random(K)``                 -- one sampling uniform per activation,
4. ``rng.random(K)``                 -- one migration coin per activation.

Under stale information the decisions inside a phase depend only on the
frozen snapshot, and under up-to-date information only on the *order* of
activations (which is exchangeable with their i.i.d. draw order), so this
block schedule is still an exact simulation, not a time-discretised one.
Crucially, the block schedule is what makes the batched engine
(:class:`repro.batch.agents.BatchAgentSimulator`) *bit-identical* per row:
a batched replica with seed ``s`` issues exactly the same generator calls as
a standalone :class:`AgentBasedSimulator` with seed ``s`` and applies the
same floating-point kernels, so assignments, trajectories and final flows
agree bit for bit (see ``tests/batch/test_agent_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..scenarios.scenario import Scenario

from ..telemetry.runtime import get_telemetry
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .bulletin import BulletinBoard
from .policy import ReroutingPolicy
from .trajectory import PhaseRecord, Trajectory

StoppingCondition = Callable[[float, FlowVector], bool]

DEFAULT_NUM_AGENTS = 1000


@dataclass
class AgentSimulationConfig:
    """Configuration of a finite-agent simulation.

    Attributes
    ----------
    num_agents:
        Population size ``n``; each agent carries ``1/n`` of the total demand
        (agents are assigned to commodities proportionally to the demands).
    update_period:
        Bulletin-board refresh interval ``T``.
    horizon:
        Total simulated time.
    seed:
        Seed of the random generator driving activations, sampling and
        migration coin flips.
    record_interval:
        Trajectory point-thinning interval: points are recorded at phase
        boundaries, every ``round(record_interval / T)``-th phase (defaults
        to every phase; the final state is always recorded).  Must be at
        least the update period -- the phase-block schedule records at phase
        boundaries only.  Phase records are never thinned.
    stale:
        If ``True`` (default) the agents see the bulletin-board snapshot
        posted at the phase start; if ``False`` every activation sees the
        live flow and latencies (the up-to-date information model).
    """

    num_agents: int = DEFAULT_NUM_AGENTS
    update_period: float = 0.1
    horizon: float = 50.0
    seed: int = 0
    record_interval: Optional[float] = None
    stale: bool = True

    def __post_init__(self) -> None:
        if self.num_agents < 1:
            raise ValueError("need at least one agent")
        if self.update_period <= 0 or self.horizon <= 0:
            raise ValueError("update period and horizon must be positive")
        if self.record_interval is not None and self.record_interval < self.update_period:
            raise ValueError(
                "record_interval must be at least the update period: trajectory "
                "points are recorded at phase boundaries (denser sampling is "
                "not supported by the phase-block schedule)"
            )


# Shared kernels ------------------------------------------------------------
#
# The helpers below are the *single* definition of the per-phase arithmetic:
# the scalar simulator consumes them event by event, the batched engine
# consumes them as stacked arrays, and because both paths perform the same
# floating-point operations on the same values the two engines agree bit for
# bit row by row.


def build_population(
    network: WardropNetwork,
    num_agents: int,
    initial_values: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return the initial ``(assignment, weights)`` arrays of one replica.

    Agents are partitioned over commodities proportionally to the demands
    and, within a commodity, over paths proportionally to the initial flow
    (largest-remainder rounding keeps the counts exact); each agent carries
    ``demand / count`` of its commodity's demand.  ``initial_values`` is the
    target path-flow vector (uniform split when ``None``).
    """
    if initial_values is None:
        initial_values = FlowVector.uniform(network).values()
    initial_values = np.asarray(initial_values, dtype=float)
    assignment = np.empty(num_agents, dtype=np.int64)
    weights = np.empty(num_agents, dtype=float)
    counts = _largest_remainder(
        np.array([c.demand for c in network.commodities]), num_agents
    )
    cursor = 0
    for i, commodity in enumerate(network.commodities):
        indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
        commodity_agents = counts[i]
        shares = initial_values[indices]
        total = shares.sum()
        if total > 0:
            path_weights = shares / total
        else:
            path_weights = np.full(len(indices), 1.0 / len(indices))
        per_path = _largest_remainder(path_weights, commodity_agents)
        for local, count in enumerate(per_path):
            assignment[cursor : cursor + count] = indices[local]
            cursor += count
        weights[cursor - commodity_agents : cursor] = commodity.demand / max(
            commodity_agents, 1
        )
    return assignment, weights


def realised_flow(assignment: np.ndarray, weights: np.ndarray, num_paths: int) -> np.ndarray:
    """Return the path-flow vector induced by an assignment of weighted agents."""
    return np.bincount(assignment, weights=weights, minlength=num_paths)


def planned_phase_counts(horizons, periods) -> np.ndarray:
    """Return the number of executed bulletin-board phases per row.

    ``ceil(horizon / period)`` plans one phase too many when
    ``horizon / period`` lands just above an integer (e.g. a horizon computed
    as ``48 * 0.2``); trailing phases whose start would already reach the
    horizon are dropped.  Both the scalar and the batched agent engine derive
    their phase grids from this one helper, so they execute exactly the same
    phases for the same configuration -- part of the bit-equivalence
    contract.  Accepts scalars or arrays (broadcast together).
    """
    horizons = np.asarray(horizons, dtype=float)
    periods = np.asarray(periods, dtype=float)
    counts = np.maximum(np.ceil(horizons / periods).astype(int), 1)
    while True:
        overshoot = (counts > 1) & ((counts - 1) * periods >= horizons)
        if not np.any(overshoot):
            return counts
        counts = np.where(overshoot, counts - 1, counts)


@dataclass(frozen=True)
class SamplingLayout:
    """Topology-level index tables behind the sampling kernel.

    ``member_paths[p, j]`` is the ``j``-th global path index of the commodity
    that path ``p`` belongs to (padded by repeating index 0, which is never
    selected because the padded cdf columns equal 1).  ``valid_cols[p, j]``
    is 1.0 on the real columns and 0.0 on the padding.
    """

    member_paths: np.ndarray
    valid_cols: np.ndarray


def sampling_layout(network: WardropNetwork) -> SamplingLayout:
    """Build the per-path commodity index tables of one topology."""
    num_paths = network.num_paths
    widest = max(
        len(network.paths.commodity_indices(i)) for i in range(network.num_commodities)
    )
    member_paths = np.zeros((num_paths, widest), dtype=np.int64)
    valid_cols = np.zeros((num_paths, widest), dtype=float)
    for i in range(network.num_commodities):
        indices = np.fromiter(network.paths.commodity_indices(i), dtype=np.int64)
        member_paths[indices, : len(indices)] = indices
        valid_cols[indices, : len(indices)] = 1.0
    return SamplingLayout(member_paths=member_paths, valid_cols=valid_cols)


def sampling_tables(sigma: np.ndarray, layout: SamplingLayout) -> Tuple[np.ndarray, np.ndarray]:
    """Turn sampling matrices into within-commodity cdf tables.

    ``sigma`` has shape ``(..., P, P)`` (any leading batch dimensions).
    Returns ``(cdf, valid)`` where ``cdf[..., p, j]`` is the normalised
    cumulative probability that an agent on path ``p`` samples the ``j``-th
    path of its commodity, and ``valid[..., p]`` flags rows with positive
    total mass.  The sampled local index of an activation with uniform ``u``
    is ``(cdf[..., p, :] <= u).sum()``: padded and final columns are exactly
    1.0 and ``u < 1``, so the index always lands on a real column.
    """
    layout_shape = layout.member_paths.shape
    indices = np.broadcast_to(layout.member_paths, sigma.shape[:-1] + layout_shape[-1:])
    raw = np.take_along_axis(sigma, indices, axis=-1) * layout.valid_cols
    cdf = np.cumsum(raw, axis=-1)
    totals = cdf[..., -1].copy()
    valid = totals > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        cdf /= totals[..., None]
    return cdf, valid


def decide_event(
    current: int,
    u_sample: float,
    u_migrate: float,
    cdf: np.ndarray,
    valid: np.ndarray,
    mu: np.ndarray,
    member_paths: np.ndarray,
) -> int:
    """Return the path one activation migrates to, or ``-1`` for a no-op.

    The single scalar definition of the two-step decision: sample a path of
    the own commodity by thresholding the cdf row with ``u_sample``, then
    migrate iff ``u_migrate`` clears the posted migration probability.  Both
    scalar information models consume it, and the batched kernels perform
    exactly these operations as stacked arrays.
    """
    if not valid[current]:
        return -1
    local = int((cdf[current] <= u_sample).sum())
    sampled = member_paths[current, local]
    if sampled == current:
        return -1
    if u_migrate < mu[current, sampled]:
        return int(sampled)
    return -1


def apply_events(
    assignment: np.ndarray,
    agents: np.ndarray,
    u_sample: np.ndarray,
    u_migrate: np.ndarray,
    cdf: np.ndarray,
    valid: np.ndarray,
    mu: np.ndarray,
    member_paths: np.ndarray,
) -> None:
    """Apply one stale phase's activations to ``assignment``, in clock order.

    This is the reference event loop; the batched engine replays the same
    decisions as stacked array operations (grouped by the activation's
    occurrence rank per agent, which preserves each agent's clock order while
    different agents, who cannot interact within a frozen phase, are
    processed together).
    """
    for j in range(len(agents)):
        agent = agents[j]
        sampled = decide_event(
            assignment[agent], u_sample[j], u_migrate[j], cdf, valid, mu, member_paths
        )
        if sampled >= 0:
            assignment[agent] = sampled


class AgentBasedSimulator:
    """Exact discrete-event simulation of finitely many rerouting agents.

    After :meth:`run` the attribute ``final_assignment`` holds the last
    agent-to-path assignment (the batched engine exposes the same array per
    row, and the equivalence tests compare them bit for bit).

    ``scenario`` makes the environment nonstationary exactly as in the fluid
    simulator: the modulation is sampled at each phase start, the board posts
    the current environment's latencies, and in fresh mode every activation
    prices the live flow in the phase's frozen environment.  The randomness
    schedule is untouched, so a stationary scenario reproduces the
    scenario-free run bit for bit.
    """

    def __init__(
        self,
        network: WardropNetwork,
        policy: ReroutingPolicy,
        config: AgentSimulationConfig,
        scenario: Optional["Scenario"] = None,
    ):
        self.network = network
        self.policy = policy
        self.config = config
        self.scenario = scenario
        self.final_assignment: Optional[np.ndarray] = None

    def run(
        self,
        initial_flow: Optional[FlowVector] = None,
        stop_when: Optional[StoppingCondition] = None,
    ) -> Trajectory:
        """Run the discrete-event simulation and return the recorded trajectory.

        ``stop_when(time, flow)`` is evaluated at every phase boundary on the
        realised flow -- the same contract as the fluid simulator's -- and
        ends the run early when it returns ``True`` (the final state is
        always recorded, even between ``record_interval`` samples).
        """
        config = self.config
        network = self.network
        policy = self.policy
        n = config.num_agents
        num_paths = network.num_paths
        tele = get_telemetry()
        run_span = tele.span(
            "engine_run",
            engine="agents",
            instance=network.graph.graph.get("name") or "-",
            stale=config.stale,
            agents=n,
            paths=num_paths,
        )
        events_counter = tele.counter("agents.events")
        phases_counter = tele.counter("agents.phases_integrated")
        rng = np.random.default_rng(config.seed)
        assignment, weights = build_population(
            network, n, initial_flow.values() if initial_flow is not None else None
        )
        layout = sampling_layout(network)
        member_paths = layout.member_paths

        trajectory = Trajectory(
            network=network,
            policy_name=f"{policy.label()} (n={n})",
            update_period=config.update_period if config.stale else 0.0,
        )
        flow_values = realised_flow(assignment, weights, num_paths)
        trajectory.record(0.0, FlowVector(network, flow_values, validate=False), 0)

        scenario = self.scenario
        if scenario is not None:
            scenario.require_edges(network)
        board: Optional[BulletinBoard] = None
        flow_live = np.empty(0)
        if config.stale:
            board = BulletinBoard(network, config.update_period)
            if scenario is not None:
                board.network = scenario.network_at(network, 0.0)
            board.post(0.0, flow_values)
        else:
            # Only the fresh-information event loop reads the live flow.
            flow_live = flow_values.copy()

        period = config.update_period
        horizon = config.horizon
        num_phases = int(planned_phase_counts(horizon, period))
        stride = 1
        if config.record_interval is not None:
            stride = max(1, int(round(config.record_interval / period)))
        previous = FlowVector(network, flow_values, validate=False)

        for phase in range(num_phases):
            start = phase * period
            end = min((phase + 1) * period, horizon)
            duration = end - start
            phase_network = (
                scenario.network_at(network, start) if scenario is not None else network
            )
            count = int(rng.poisson(n * duration))
            agents = rng.integers(n, size=count)
            u_sample = rng.random(count)
            u_migrate = rng.random(count)
            phase_span = tele.span("phase", index=phase, activations=count)
            events_counter.add(count)

            if config.stale:
                with tele.span("field_eval"):
                    snapshot = board.snapshot
                    sigma = policy.sampling.probabilities(
                        network, snapshot.path_flows, snapshot.path_latencies
                    )
                    mu = policy.migration.matrix(snapshot.path_latencies)
                    cdf, valid = sampling_tables(sigma, layout)
                with tele.span("apply_events", events=count):
                    apply_events(
                        assignment, agents, u_sample, u_migrate, cdf, valid, mu, member_paths
                    )
            else:
                # The live tables depend only on flow_live, so they stay
                # valid until a migration changes it -- recomputing them
                # lazily is bit-neutral and skips the dominant cost of
                # no-op activations.
                tables_valid = False
                for j in range(count):
                    if not tables_valid:
                        latencies = phase_network.path_latencies(flow_live)
                        sigma = policy.sampling.probabilities(network, flow_live, latencies)
                        mu = policy.migration.matrix(latencies)
                        cdf, valid = sampling_tables(sigma, layout)
                        tables_valid = True
                    agent = agents[j]
                    current = assignment[agent]
                    sampled = decide_event(
                        current, u_sample[j], u_migrate[j], cdf, valid, mu, member_paths
                    )
                    if sampled >= 0:
                        assignment[agent] = sampled
                        weight = weights[agent]
                        flow_live[current] -= weight
                        flow_live[sampled] += weight
                        tables_valid = False

            flow_values = realised_flow(assignment, weights, num_paths)
            flow = FlowVector(network, flow_values, validate=False)
            trajectory.record_phase(
                PhaseRecord(
                    index=phase,
                    start_time=start,
                    end_time=end,
                    start_flow=previous,
                    end_flow=flow,
                )
            )
            sampled_now = (phase + 1) % stride == 0 or phase == num_phases - 1
            if sampled_now:
                trajectory.record(end, flow, phase)
            previous = flow
            phases_counter.add()
            phase_span.close()
            if stop_when is not None and stop_when(end, flow):
                if not sampled_now:
                    trajectory.record(end, flow, phase)
                tele.event("stop_when_fired", time=end, phase=phase)
                break
            if config.stale:
                if end < horizon:
                    if scenario is not None:
                        # The snapshot posted at `end` feeds the next phase,
                        # so it is priced in that phase's environment.
                        board.network = scenario.network_at(network, end)
                    board.post(end, flow_values)
                    tele.event("bulletin_refresh", time=end)
                    tele.counter("agents.bulletin_refreshes").add()
            else:
                flow_live = flow_values.copy()

        self.final_assignment = assignment
        run_span.annotate(phases=len(trajectory.phases))
        run_span.close()
        tele.counter("agents.runs").add()
        return trajectory


def _largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Apportion ``total`` integer units proportionally to ``weights``."""
    weights = np.clip(np.asarray(weights, dtype=float), 0.0, None)
    if weights.sum() <= 0:
        weights = np.ones_like(weights)
    exact = weights / weights.sum() * total
    floors = np.floor(exact).astype(int)
    remainder = total - int(floors.sum())
    if remainder > 0:
        order = np.argsort(-(exact - floors))
        floors[order[:remainder]] += 1
    return floors


def simulate_agents(
    network: WardropNetwork,
    policy: ReroutingPolicy,
    num_agents: int,
    update_period: float,
    horizon: float,
    initial_flow: Optional[FlowVector] = None,
    seed: int = 0,
    stale: bool = True,
    stop_when: Optional[StoppingCondition] = None,
    scenario: Optional["Scenario"] = None,
) -> Trajectory:
    """Convenience wrapper around :class:`AgentBasedSimulator`."""
    config = AgentSimulationConfig(
        num_agents=num_agents,
        update_period=update_period,
        horizon=horizon,
        seed=seed,
        stale=stale,
    )
    return AgentBasedSimulator(network, policy, config, scenario=scenario).run(
        initial_flow, stop_when=stop_when
    )
