"""Edge cases of the vectorised stopping conditions (`repro.batch.stopping`).

Covers the degenerate stopping patterns -- every row stops at the very first
phase boundary, no row ever stops -- and the paired batch/scalar property:
for a well-formed :class:`StopCondition` the batch predicate and the derived
per-row scalar predicates agree everywhere, and a condition whose two views
disagree is caught by the paired property check.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import (
    StopCondition,
    distance_stop,
    equilibrium_gap_stop,
    simulate_batch,
)
from repro.core import uniform_policy
from repro.instances import two_link_network
from repro.wardrop import FlowVector, NetworkFamily


def assert_paired_consistent(condition, times, flows, rows):
    """The paired property: batch mask == per-row scalar evaluations.

    Raises ``AssertionError`` when any row's scalar adapter disagrees with
    the vectorised predicate -- the guard the equivalence suite relies on.
    """
    batch_mask = np.asarray(condition(times, flows, rows), dtype=bool)
    network = two_link_network(beta=2.0)
    for i, row in enumerate(rows):
        scalar = condition.scalar(int(row))(
            float(times[i]), FlowVector(network, flows[i], validate=False)
        )
        assert bool(batch_mask[i]) == scalar, (
            f"batch/scalar disagreement at row {row}: {batch_mask[i]} vs {scalar}"
        )


@pytest.fixture
def settled_batch(two_links):
    policy = uniform_policy(two_links)
    starts = [FlowVector(two_links, [0.7, 0.3]), FlowVector(two_links, [0.6, 0.4])]
    return two_links, policy, starts


def test_all_rows_stop_in_phase_zero(settled_batch):
    network, policy, starts = settled_batch
    # An infinitely forgiving tolerance fires at the first phase boundary.
    condition = distance_stop(np.full((2, 2), 0.5), tolerance=10.0)
    result = simulate_batch(
        network, policy, [0.1, 0.1], 5.0, initial_flows=starts, stop_when=condition
    )
    assert np.array_equal(result.stop_phases, [0, 0])
    assert result.stopped_rows().all()
    # The stopping phase itself is still recorded: initial point + one phase.
    assert np.array_equal(result.num_points, [2, 2])
    assert np.allclose(result.times[:, 1], 0.1)


def test_no_row_ever_stops(settled_batch):
    network, policy, starts = settled_batch
    # An unreachable target: the total demand is 1, so distance 0 to the
    # all-ones flow is impossible.
    condition = distance_stop(np.ones((2, 2)), tolerance=0.0)
    result = simulate_batch(
        network, policy, [0.1, 0.1], 2.0, initial_flows=starts, stop_when=condition
    )
    assert np.array_equal(result.stop_phases, [-1, -1])
    assert not result.stopped_rows().any()
    assert np.array_equal(result.num_points, [21, 21])


def test_paired_property_holds_for_builtin_conditions(two_links):
    rng = np.random.default_rng(7)
    family = NetworkFamily.replicate(two_links, 4)
    flows = rng.dirichlet(np.ones(2), size=4)
    times = rng.random(4) * 3.0
    rows = np.arange(4)
    for condition in (
        distance_stop(np.full((4, 2), 0.5), tolerance=0.25),
        equilibrium_gap_stop(two_links, delta=0.05),
        equilibrium_gap_stop(family, delta=0.05),
    ):
        assert_paired_consistent(condition, times, flows, rows)


def test_paired_property_catches_disagreeing_predicates():
    # A rigged condition whose decision depends on the batch size: the
    # vectorised view (several rows) and the scalar adapter (single-row
    # batches) then disagree, which the paired property must surface.
    def batch(times, flows, rows):
        return np.full(len(rows), len(rows) > 1, dtype=bool)

    condition = StopCondition(batch=batch)
    flows = np.full((3, 2), 0.5)
    times = np.zeros(3)
    with pytest.raises(AssertionError, match="disagreement"):
        assert_paired_consistent(condition, times, flows, np.arange(3))


def test_stop_when_shape_mismatch_raises(settled_batch):
    network, policy, starts = settled_batch

    def bad_condition(times, flows, rows):
        return np.zeros(len(rows) + 1, dtype=bool)

    with pytest.raises(ValueError, match="stop_when returned shape"):
        simulate_batch(
            network, policy, [0.1, 0.1], 1.0, initial_flows=starts,
            stop_when=bad_condition,
        )
