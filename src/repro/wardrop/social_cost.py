"""Social cost, optimal flow and the price of anarchy.

The paper's motivation sits in the selfish-routing literature (Roughgarden &
Tardos): the social cost of a flow is its average latency
``C(f) = sum_P f_P * l_P(f) = sum_e f_e * l_e(f_e)``, and the *price of
anarchy* compares the cost at Wardrop equilibrium with the minimum possible
cost.  These quantities are not needed by the convergence theorems but are
standard outputs of a Wardrop toolkit, are exercised by the Pigou/Braess
example applications, and give the benchmarks a cost axis in addition to the
potential axis.

The socially optimal flow is computed by observing the classical
correspondence (also cited in the paper, Section 1.2): a flow minimises the
social cost iff it is a Wardrop equilibrium with respect to the *marginal
cost* latencies ``l_e(x) + x * l_e'(x)``.  We therefore reuse the Frank--
Wolfe equilibrium solver on a marginal-cost twin of the network.
"""

from __future__ import annotations

from typing import Hashable, Tuple

import networkx as nx
import numpy as np

from .flow import FlowVector
from .latency import LatencyFunction
from .network import LATENCY_ATTR, WardropNetwork


def social_cost(flow: FlowVector) -> float:
    """Return the total/average latency ``C(f) = sum_e f_e * l_e(f_e)``.

    With demands normalised to one this equals the average latency ``L``.
    """
    edge_flows = flow.edge_flows()
    edge_latencies = flow.edge_latencies()
    return float(np.dot(edge_flows, edge_latencies))


class MarginalCostLatency(LatencyFunction):
    """The marginal-cost transform ``h(x) = l(x) + x * l'(x)`` of a latency.

    The antiderivative of ``h`` is ``x * l(x)`` which is exactly the edge's
    contribution to the social cost, so minimising the Beckmann potential of
    the transformed network minimises the social cost of the original one.

    The transform assumes ``l`` is convex and differentiable, which holds for
    every class in :mod:`repro.wardrop.latency`; the derivative of ``h`` is
    approximated by a symmetric finite difference since the second derivative
    of ``l`` is not exposed.
    """

    def __init__(self, base: LatencyFunction):
        self.base = base

    def value(self, x: float) -> float:
        return self.base.value(x) + x * self.base.derivative(x)

    def derivative(self, x: float, step: float = 1e-6) -> float:
        lo = max(0.0, x - step)
        hi = min(1.0, x + step)
        if hi <= lo:
            return 0.0
        return (self.value(hi) - self.value(lo)) / (hi - lo)

    def integral(self, x: float) -> float:
        return x * self.base.value(x)

    def max_slope(self, lo: float = 0.0, hi: float = 1.0) -> float:
        # h'(x) = 2 l'(x) + x l''(x); bound it coarsely by sampling.
        samples = np.linspace(lo, hi, 17)
        return float(max(self.derivative(float(x)) for x in samples))

    def __repr__(self) -> str:
        return f"MarginalCostLatency({self.base!r})"


def marginal_cost_network(network: WardropNetwork) -> WardropNetwork:
    """Return a copy of the network with marginal-cost latencies.

    A Wardrop equilibrium of the returned network is a social optimum of the
    original network.
    """
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(network.graph.nodes())
    for u, v, key in network.graph.edges(keys=True):
        # Resolved through latency_function (not the raw graph attribute) so
        # the per-edge overrides of `with_latencies` clones are honoured.
        latency = network.latency_function((u, v, key))
        graph.add_edge(u, v, key=key, **{LATENCY_ATTR: MarginalCostLatency(latency)})
    return WardropNetwork(graph, network.commodities, normalise=False)


def optimal_flow(network: WardropNetwork, tolerance: float = 1e-8, max_iterations: int = 2000) -> FlowVector:
    """Return (approximately) the socially optimal flow of the network."""
    from ..solvers.frank_wolfe import solve_wardrop_equilibrium

    twin = marginal_cost_network(network)
    result = solve_wardrop_equilibrium(twin, tolerance=tolerance, max_iterations=max_iterations)
    return FlowVector(network, result.flow.values())


def price_of_anarchy(network: WardropNetwork, tolerance: float = 1e-8) -> Tuple[float, float, float]:
    """Return ``(equilibrium_cost, optimal_cost, ratio)`` for the network.

    The ratio is the empirical price of anarchy of the instance.  Returns
    ``ratio = 1.0`` when the optimal cost is zero (both costs are then zero
    as well for non-negative latencies).
    """
    from ..solvers.frank_wolfe import solve_wardrop_equilibrium

    equilibrium = solve_wardrop_equilibrium(network, tolerance=tolerance).flow
    optimum = optimal_flow(network, tolerance=tolerance)
    cost_eq = social_cost(equilibrium)
    cost_opt = social_cost(optimum)
    if cost_opt <= 1e-15:
        return cost_eq, cost_opt, 1.0
    return cost_eq, cost_opt, cost_eq / cost_opt
