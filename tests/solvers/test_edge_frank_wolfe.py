"""The edge-flow Frank--Wolfe solver against the path-based ground truth."""

import numpy as np
import pytest

from repro.instances import braess_network, grid_network, pigou_network
from repro.largescale import ShortestPathOracle
from repro.solvers import (
    solve_edge_flow_equilibrium,
    solve_wardrop_equilibrium,
)


@pytest.mark.parametrize(
    "factory",
    [
        braess_network,
        lambda: pigou_network(degree=2),
        lambda: grid_network(3, 3, num_commodities=2, seed=3),
    ],
)
def test_edge_flows_match_the_path_based_solver(factory):
    network = factory()
    path_result = solve_wardrop_equilibrium(network, tolerance=1e-12)
    edge_result = solve_edge_flow_equilibrium(network, tolerance=1e-10)
    assert edge_result.converged
    oracle = ShortestPathOracle(network.graph, network.commodities)
    positions = oracle.network_edge_positions(network)
    reference = network.edge_flows(path_result.flow.values())
    assert np.abs(edge_result.edge_flows[positions] - reference).max() < 1e-6
    # Off-path graph edges (if any) carry no equilibrium flow here.
    off_path = np.setdiff1d(np.arange(oracle.num_edges), positions)
    assert np.all(edge_result.edge_flows[off_path] <= 1e-9)


def test_result_diagnostics_are_consistent():
    network = braess_network()
    result = solve_edge_flow_equilibrium(network, tolerance=1e-8)
    assert result.relative_gap <= 1e-8
    assert result.sptt <= result.tstt + 1e-12
    assert result.iterations >= 1
    assert len(result.gap_history) == result.iterations
    assert result.potential_value == pytest.approx(
        solve_wardrop_equilibrium(network, tolerance=1e-12).potential_value, abs=1e-8
    )


def test_warm_start_accepts_and_validates_shapes():
    network = braess_network()
    oracle = ShortestPathOracle(network.graph, network.commodities)
    cold = solve_edge_flow_equilibrium(network, tolerance=1e-8, oracle=oracle)
    warm = solve_edge_flow_equilibrium(
        network, tolerance=1e-8, oracle=oracle, initial_edge_flows=cold.edge_flows
    )
    assert warm.iterations <= cold.iterations
    assert np.abs(warm.edge_flows - cold.edge_flows).max() < 1e-6
    with pytest.raises(ValueError, match="initial edge flows"):
        solve_edge_flow_equilibrium(
            network, oracle=oracle, initial_edge_flows=np.ones(3)
        )


def test_dijkstra_rejects_negative_costs():
    network = braess_network()
    oracle = ShortestPathOracle(network.graph, network.commodities)
    with pytest.raises(ValueError, match="non-negative"):
        oracle.all_or_nothing(-np.ones(oracle.num_edges))
