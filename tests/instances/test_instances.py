"""Unit tests for the instance library and registry."""

from __future__ import annotations

import math

import pytest

from repro.instances import (
    available_instances,
    braess_equilibrium,
    braess_equilibrium_latency,
    braess_network,
    equilibrium_flow,
    get_instance,
    grid_network,
    heterogeneous_affine_links,
    identical_linear_links,
    lopsided_flow,
    oscillation_initial_flow,
    pigou_equilibrium,
    pigou_network,
    pigou_optimal_cost,
    pigou_like_links,
    random_layered_network,
    register_instance,
    two_link_network,
)
from repro.wardrop import assert_valid, is_wardrop_equilibrium, social_cost


class TestTwoLinks:
    def test_structure(self):
        network = two_link_network(beta=2.0)
        assert network.num_paths == 2
        assert network.max_slope() == pytest.approx(2.0)

    def test_equilibrium_flow_has_zero_latency(self):
        network = two_link_network(beta=2.0)
        flow = equilibrium_flow(network)
        assert flow.max_used_latency() == pytest.approx(0.0)
        assert is_wardrop_equilibrium(flow)

    def test_oscillation_initial_flow_matches_formula(self):
        network = two_link_network()
        period = 0.4
        flow = oscillation_initial_flow(network, period)
        assert flow[0] == pytest.approx(1.0 / (math.exp(-period) + 1.0))
        flow.check_feasible()

    def test_oscillation_initial_flow_rejects_bad_period(self):
        with pytest.raises(ValueError):
            oscillation_initial_flow(two_link_network(), 0.0)

    def test_lopsided_flow(self):
        network = two_link_network()
        flow = lopsided_flow(network, 0.8)
        assert flow[0] == pytest.approx(0.8)
        with pytest.raises(ValueError):
            lopsided_flow(network, 1.2)


class TestPigou:
    def test_equilibrium(self):
        for degree in [1, 2, 4]:
            network = pigou_network(degree)
            flow = pigou_equilibrium(network)
            assert is_wardrop_equilibrium(flow)
            assert social_cost(flow) == pytest.approx(1.0)

    def test_optimal_cost_formula(self):
        # Linear Pigou: optimum 3/4.
        assert pigou_optimal_cost(1) == pytest.approx(0.75)
        assert pigou_optimal_cost(2) < pigou_optimal_cost(1)

    def test_optimal_cost_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            pigou_optimal_cost(0)


class TestBraess:
    def test_three_paths_with_shortcut(self):
        network = braess_network(with_shortcut=True)
        assert network.num_paths == 3
        assert network.max_path_length() == 3

    def test_two_paths_without_shortcut(self):
        network = braess_network(with_shortcut=False)
        assert network.num_paths == 2

    def test_equilibria(self):
        for with_shortcut in [True, False]:
            network = braess_network(with_shortcut)
            flow = braess_equilibrium(network)
            assert is_wardrop_equilibrium(flow)
            assert flow.max_used_latency() == pytest.approx(
                braess_equilibrium_latency(with_shortcut)
            )

    def test_paradox(self):
        # Adding the shortcut makes the equilibrium strictly worse.
        assert braess_equilibrium_latency(True) > braess_equilibrium_latency(False)


class TestParallelFamilies:
    def test_identical_links(self):
        network = identical_linear_links(6, slope=2.0)
        assert network.num_paths == 6
        assert network.max_slope() == pytest.approx(2.0)

    def test_heterogeneous_links_reproducible(self):
        a = heterogeneous_affine_links(5, seed=3)
        b = heterogeneous_affine_links(5, seed=3)
        assert a.max_latency() == pytest.approx(b.max_latency())

    def test_pigou_like(self):
        network = pigou_like_links(4, degree=3)
        assert network.num_paths == 4
        assert_valid(network)

    def test_rejects_too_few_links(self):
        with pytest.raises(ValueError):
            identical_linear_links(0)
        with pytest.raises(ValueError):
            pigou_like_links(1)


class TestGridsAndRandom:
    def test_grid_structure(self):
        network = grid_network(3, 4, num_commodities=2, seed=0)
        assert network.num_commodities == 2
        assert network.max_path_length() >= 3
        assert_valid(network)

    def test_grid_rejects_tiny(self):
        with pytest.raises(ValueError):
            grid_network(1, 3)

    def test_random_layered_valid_and_reproducible(self):
        a = random_layered_network(seed=5)
        b = random_layered_network(seed=5)
        assert a.num_paths == b.num_paths
        assert_valid(a)


class TestRegistry:
    def test_all_registered_instances_build_and_validate(self):
        for name in available_instances():
            network = get_instance(name)
            assert network.num_paths >= 1
            assert_valid(network)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            get_instance("no-such-instance")

    def test_register_and_overwrite_guard(self):
        register_instance("test-custom", lambda: two_link_network(1.5), overwrite=True)
        assert "test-custom" in available_instances()
        with pytest.raises(ValueError):
            register_instance("test-custom", lambda: two_link_network(1.5))
        register_instance("test-custom", lambda: two_link_network(2.5), overwrite=True)
        assert get_instance("test-custom").max_slope() == pytest.approx(2.5)
