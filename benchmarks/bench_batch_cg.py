"""E12 -- batched column generation at city scale (synthetic city grid).

A >= 32-row ensemble runs the stale-information dynamics with *column
generation* on the synthetic city network (16x16 street grid with arterial
corridors, 960 directed links) while a link incident (a capacity drop on the
busiest arterial at equilibrium) hits at a different time in every row --
one :class:`~repro.scenarios.scenario.Scenario` per row, all driven as **one**
:func:`~repro.largescale.batch_columns.simulate_with_column_generation_batch`
call.  The rows start from the TNTP loader's one-free-flow-path seeding and
grow the shared restricted set by the union of their discoveries.  The
benchmark verifies three things:

* **certificates** -- every row ends with an oracle relative-duality-gap
  certificate ``<= 1e-3`` in its final effective environment: the batched
  driver does not merely run, it documents per row that it settled at a
  Wardrop equilibrium of the full 960-link network,
* **exactness** -- on the grown-and-frozen (closed) path set, batched CG
  rows are bit-identical to the scalar
  :func:`~repro.largescale.columns.simulate_with_column_generation` driver,
* **throughput** -- the single batched call clearly outruns the equivalent
  loop of scalar column-generation runs.

Each row's final gap is emitted as a ``repro-bench/1`` record carrying
``method="cg-rowNN"`` and ``gap``, so ``repro report --bench`` renders the
per-row duality-gap table straight from the records file.

Run as a script (the CI smoke job does) or through pytest:

    PYTHONPATH=src python benchmarks/bench_batch_cg.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_batch_cg.py -q
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import print_table
from repro.telemetry import telemetry_session
from repro.telemetry.bench import BENCH_SCHEMA, bench_timer, emit_record
from repro.core import ReroutingPolicy, ScaledLinearMigration, UniformSampling
from repro.instances import synthetic_city_network
from repro.largescale import ActivePathSet, ShortestPathOracle
from repro.largescale.batch_columns import simulate_with_column_generation_batch
from repro.largescale.columns import simulate_with_column_generation
from repro.scenarios import LinkIncident, Scenario
from repro.solvers import solve_edge_flow_equilibrium
from repro.solvers.edge_frank_wolfe import relative_duality_gap

GAP_TARGET = 1e-3
INCIDENT_FACTOR = 0.4
# Raw demand per OD pair: side streets run at a volume/capacity ratio high
# enough that congestion moves the shortest paths (so rows actually discover
# detour columns) while the dynamics still certify <= GAP_TARGET in the
# benchmark horizon.  The instance-registry default (600) is milder.
CITY_DEMAND = 1200.0
# Migration smoothness in units of the max free-flow cost; 4x settles within
# the horizon at this congestion level and stays a valid probability.
ALPHA_SCALE = 4.0


def incident_scenarios(edge, starts, duration: float) -> List[Scenario]:
    return [
        Scenario(
            name=f"incident@{start:g}",
            incidents=[
                LinkIncident(
                    edge, float(start), float(start) + duration,
                    capacity_factor=INCIDENT_FACTOR,
                )
            ],
        )
        for start in starts
    ]


def run_benchmark(smoke: bool = False, scalar_rows: Optional[int] = None) -> dict:
    if smoke:
        blocks, od_pairs, batch = 8, 6, 8
        horizon, period, steps = 10.0, 0.25, 5
        duration, first_start, last_start = 1.0, 1.0, 2.5
    else:
        blocks, od_pairs, batch = 16, 12, 32
        horizon, period, steps = 16.0, 0.25, 10
        duration, first_start, last_start = 2.0, 2.0, 5.0
    if scalar_rows is None:
        scalar_rows = min(batch, 4)
    instance_label = "city-grid-incident" if not smoke else "city-grid-mini-incident"

    network = synthetic_city_network(
        blocks=blocks, od_pairs=od_pairs, demand=CITY_DEMAND
    )
    num_links = network.graph.number_of_edges()
    oracle = ShortestPathOracle.for_network(network)
    # The incident hits the busiest link at the static equilibrium -- the
    # detour routes around it are exactly what the rows must discover.
    equilibrium = solve_edge_flow_equilibrium(network, tolerance=1e-4, oracle=oracle)
    incident_edge = oracle.edges[int(np.argmax(equilibrium.edge_flows))]
    starts = np.linspace(first_start, last_start, batch)
    scenarios = incident_scenarios(incident_edge, starts, duration)

    alpha = ALPHA_SCALE / float(np.max(oracle.free_flow_costs(network)))
    policy = ReroutingPolicy(
        UniformSampling(), ScaledLinearMigration(alpha), name="uniform+scaled"
    )

    # --- the tentpole measurement: one batched CG call over all rows -------
    active = ActivePathSet.from_network(network)
    with bench_timer(
        "bench_batch_cg", "E12 batched CG ensemble",
        engine="cg-batch", instance=instance_label, cases=batch,
    ) as batched_timer:
        result = simulate_with_column_generation_batch(
            active, policy,
            update_period=period, horizon=horizon,
            scenarios=scenarios, stale=True,
            steps_per_phase=steps,
        )
    batched_seconds = batched_timer.seconds
    gaps = result.duality_gaps

    # One record per row: `repro report --bench` pivots method+gap records
    # into the per-row duality-gap table.
    for row in range(batch):
        emit_record(
            {
                "schema": BENCH_SCHEMA,
                "bench": "bench_batch_cg",
                "section": f"row {row} certificate",
                "engine": "cg-batch",
                "instance": instance_label,
                "cases": 1,
                "seconds": batched_seconds / batch,
                "rate": batch / batched_seconds,
                "method": f"cg-row{row:02d}",
                "gap": float(gaps[row]),
            }
        )

    # --- scalar counterpart loop (open mode, per-row independent growth) ---
    with bench_timer(
        "bench_batch_cg", "E12 scalar CG loop",
        engine="cg-scalar", instance=instance_label, cases=scalar_rows,
    ) as scalar_timer:
        scalar_gaps = []
        for row in range(scalar_rows):
            scalar_result = simulate_with_column_generation(
                ActivePathSet.from_network(network), policy,
                update_period=period, horizon=horizon,
                scenario=scenarios[row], stale=True,
                steps_per_phase=steps,
            )
            final_net = scalar_result.network
            full_flows = oracle.expand_edge_values(
                final_net, final_net.edge_flows(scalar_result.final_flow.values())
            )
            scalar_gaps.append(
                relative_duality_gap(
                    scenarios[row].network_at(final_net, horizon), oracle, full_flows
                )
            )
    scalar_seconds = scalar_timer.seconds
    scalar_seconds_full = scalar_seconds * batch / scalar_rows
    speedup = scalar_seconds_full / batched_seconds

    # --- exactness: closed (grown-and-frozen) batched CG is bit-identical --
    frozen = ActivePathSet.from_network(result.network, closed=True)
    check_rows = min(scalar_rows, 3)
    with bench_timer(
        "bench_batch_cg", "E12 closed-mode identity check",
        engine="cg-batch-closed", instance=instance_label, cases=check_rows,
    ):
        closed_result = simulate_with_column_generation_batch(
            frozen, policy,
            update_period=period, horizon=horizon,
            scenarios=scenarios[:check_rows], stale=True,
            steps_per_phase=steps,
        )
        exact = True
        for row in range(check_rows):
            scalar_closed = simulate_with_column_generation(
                ActivePathSet.from_network(result.network, closed=True), policy,
                update_period=period, horizon=horizon,
                scenario=scenarios[row], stale=True,
                steps_per_phase=steps,
            )
            scalar_matrix = np.array(
                [point.flow.values() for point in scalar_closed.trajectory.points]
            )
            exact = exact and np.array_equal(
                scalar_matrix, closed_result.flow_matrix(row)
            )

    rows = [
        {
            "row": row,
            "incident": f"[{starts[row]:g}, {starts[row] + duration:g})",
            "duality_gap": float(gaps[row]),
            "certified": bool(gaps[row] <= GAP_TARGET),
        }
        for row in range(batch)
    ]
    print_table(
        rows,
        title=(
            f"E12: batched column generation on the synthetic city "
            f"({num_links} links, {od_pairs} OD pairs), incident on "
            f"{incident_edge[0]}->{incident_edge[1]} at {batch} staggered "
            f"times, T={period}"
        ),
    )
    summary = {
        "batch": batch,
        "links": num_links,
        "initial_paths": od_pairs,
        "final_paths": result.network.num_paths,
        "columns_added": result.total_columns_added,
        "growth_events": len(result.growth_events),
        "max_duality_gap": float(gaps.max()),
        "certified_rows": int((gaps <= GAP_TARGET).sum()),
        "bit_identical_closed": exact,
        "closed_rows_checked": check_rows,
        "scalar_rows_measured": scalar_rows,
        "scalar_gaps": [float(g) for g in scalar_gaps],
        "batched_seconds": round(batched_seconds, 2),
        "scalar_seconds_full": round(scalar_seconds_full, 2),
        "speedup": round(speedup, 1),
    }
    print(
        f"one batched CG call: {batch} rows, {num_links} links, "
        f"{summary['initial_paths']} -> {summary['final_paths']} columns "
        f"({summary['columns_added']} added in {summary['growth_events']} growth "
        f"events) in {batched_seconds:.2f}s"
    )
    print(
        f"certificates: {summary['certified_rows']}/{batch} rows at relative "
        f"duality gap <= {GAP_TARGET:g} (max {summary['max_duality_gap']:.2e}); "
        f"closed-mode bit-identical rows: {'yes' if exact else 'NO'}"
    )
    print(
        f"scalar CG loop ({scalar_rows} rows measured): {scalar_seconds:.2f}s "
        f"(~{scalar_seconds_full:.2f}s for all {batch}) -> {speedup:.1f}x"
    )
    return summary


def test_batch_cg_smoke():
    """Pytest entry: the smoke ensemble certifies every row and stays exact."""
    summary = run_benchmark(smoke=True)
    assert summary["max_duality_gap"] <= GAP_TARGET
    assert summary["certified_rows"] == summary["batch"]
    assert summary["bit_identical_closed"]
    assert summary["columns_added"] > 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the fast 8-row / 8x8-blocks variant (CI-friendly)",
    )
    parser.add_argument(
        "--scalar-rows",
        type=int,
        default=None,
        help="measure only this many scalar counterpart rows (extrapolated)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry session and write its JSONL trace here",
    )
    args = parser.parse_args(argv)
    if args.trace is not None:
        with telemetry_session(trace_path=args.trace):
            summary = run_benchmark(smoke=args.smoke, scalar_rows=args.scalar_rows)
        print(f"wrote trace {args.trace}")
    else:
        summary = run_benchmark(smoke=args.smoke, scalar_rows=args.scalar_rows)
    if not smoke_ok(summary):
        return 1
    return 0


def smoke_ok(summary: dict) -> bool:
    """The acceptance bar shared by script and CI runs."""
    return (
        summary["max_duality_gap"] <= GAP_TARGET
        and summary["bit_identical_closed"]
    )


if __name__ == "__main__":
    sys.exit(main())
