"""A registry of named instances used by examples, benchmarks and tests.

``get_instance(name)`` builds a fresh network for a registered name; the
registry keeps the benchmark harness declarative (each bench names the
instances it sweeps instead of re-implementing constructors).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..wardrop.network import WardropNetwork
from .braess import braess_network
from .grids import grid_network
from .parallel_links import heterogeneous_affine_links, identical_linear_links, pigou_like_links
from .pigou import pigou_network
from .random_networks import random_layered_network
from .tntp import sioux_falls_network
from .two_links import two_link_network

InstanceFactory = Callable[[], WardropNetwork]

_REGISTRY: Dict[str, InstanceFactory] = {
    "two-links": lambda: two_link_network(beta=1.0),
    "two-links-steep": lambda: two_link_network(beta=8.0),
    "pigou-linear": lambda: pigou_network(degree=1),
    "pigou-quadratic": lambda: pigou_network(degree=2),
    "braess": lambda: braess_network(with_shortcut=True),
    "braess-no-shortcut": lambda: braess_network(with_shortcut=False),
    "parallel-4": lambda: identical_linear_links(4),
    "parallel-8-affine": lambda: heterogeneous_affine_links(8, seed=7),
    "parallel-16-affine": lambda: heterogeneous_affine_links(16, seed=7),
    "pigou-like-6": lambda: pigou_like_links(6, degree=2),
    "grid-3x3": lambda: grid_network(3, 3, num_commodities=1, seed=3),
    "grid-3x3-2c": lambda: grid_network(3, 3, num_commodities=2, seed=3),
    "random-layered": lambda: random_layered_network(num_layers=3, width=3, seed=11),
    # Real road networks (TNTP fixtures): restricted path sets seeded with
    # free-flow shortest paths, meant to grow by column generation.
    "sioux-falls": sioux_falls_network,
    "sioux-falls-mini": lambda: sioux_falls_network(max_od_pairs=40),
}


def register_instance(name: str, factory: InstanceFactory, overwrite: bool = False) -> None:
    """Register a new named instance factory.

    Raises ``ValueError`` if the name is already taken and ``overwrite`` is
    not set.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"instance {name!r} is already registered")
    _REGISTRY[name] = factory


def get_instance(name: str) -> WardropNetwork:
    """Build and return the registered instance ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError as error:
        raise KeyError(
            f"unknown instance {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from error
    return factory()


def available_instances() -> List[str]:
    """Return the sorted list of registered instance names."""
    return sorted(_REGISTRY)
