"""E9 -- Validity of the fluid limit: finite agents vs the ODE trajectory.

The paper's analysis is carried out in the fluid limit of infinitely many
infinitesimal agents.  This benchmark runs the finite-population
discrete-event simulator (Poisson activation clocks, the same two-step
policy, the same bulletin board) for growing population sizes and reports the
deviation of the final flow shares from the fluid-limit trajectory: the
deviation should shrink roughly like 1/sqrt(n).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import print_table
from repro.core import replicator_policy, simulate, simulate_agents
from repro.instances import lopsided_flow, pigou_network, two_link_network

POPULATIONS = [100, 1000, 10000]
HORIZON = 15.0

INSTANCES = {
    "two-links(beta=4)": lambda: two_link_network(beta=4.0),
    "pigou-linear": lambda: pigou_network(degree=1),
}


def deviation_for(network, num_agents, seed=0):
    policy = replicator_policy(network, exploration=1e-3)
    period = policy.safe_update_period(network)
    start = lopsided_flow(network, 0.9) if network.num_paths == 2 else None
    fluid = simulate(
        network, policy, update_period=period, horizon=HORIZON, initial_flow=start
    )
    finite = simulate_agents(
        network, policy, num_agents=num_agents, update_period=period,
        horizon=HORIZON, initial_flow=start, seed=seed,
    )
    return float(np.abs(finite.final_flow.values() - fluid.final_flow.values()).sum())


@pytest.mark.experiment("E9")
def test_finite_agents_approach_fluid_limit(report_header):
    rows = []
    for name, make_instance in INSTANCES.items():
        network = make_instance()
        for population in POPULATIONS:
            deviations = [deviation_for(network, population, seed=s) for s in range(3)]
            rows.append(
                {
                    "instance": name,
                    "n_agents": population,
                    "mean_L1_deviation": float(np.mean(deviations)),
                    "expected_scale(1/sqrt(n))": 1.0 / np.sqrt(population),
                }
            )
    print_table(rows, title="E9: finite-agent simulation vs fluid limit")
    for name in INSTANCES:
        per_instance = [row for row in rows if row["instance"] == name]
        smallest = per_instance[0]["mean_L1_deviation"]
        largest = per_instance[-1]["mean_L1_deviation"]
        # Two orders of magnitude more agents must shrink the deviation.
        assert largest < smallest


@pytest.mark.experiment("E9")
def test_benchmark_agent_simulation(benchmark, report_header):
    network = two_link_network(beta=4.0)
    deviation = benchmark(deviation_for, network, 1000)
    assert deviation < 0.5
