"""Scalar metrics extracted from trajectories for reports and benches.

These helpers keep the benchmark code declarative: a bench builds a
trajectory, then asks this module for the handful of scalars it prints
(potential gap, equilibrium violation, Lemma 4 compliance rate, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..core.trajectory import Trajectory
from ..wardrop.equilibrium import equilibrium_violation
from ..wardrop.potential import decompose_phase, potential


@dataclass(frozen=True)
class PhasePotentialStats:
    """Per-run statistics of the Lemma 3/4 phase decomposition.

    Attributes
    ----------
    phases:
        Number of phases analysed.
    max_identity_residual:
        Largest absolute residual of the Lemma 3 identity
        ``delta Phi = sum U_e + V`` (should be integrator noise only).
    lemma4_violations:
        Number of phases where ``delta Phi > V / 2`` by more than the slack --
        zero is the Lemma 4 prediction when ``T <= T*``.
    max_potential_increase:
        Largest per-phase increase of the potential (0 for monotone runs).
    """

    phases: int
    max_identity_residual: float
    lemma4_violations: int
    max_potential_increase: float


def phase_potential_stats(trajectory: Trajectory, slack: float = 1e-7) -> PhasePotentialStats:
    """Evaluate the Lemma 3 identity and the Lemma 4 inequality per phase."""
    residuals: List[float] = []
    violations = 0
    max_increase = 0.0
    for phase in trajectory.phases:
        decomposition = decompose_phase(phase.start_flow, phase.end_flow)
        residuals.append(abs(decomposition.identity_residual))
        if not decomposition.satisfies_lemma4(slack=slack):
            violations += 1
        max_increase = max(max_increase, decomposition.delta_phi)
    return PhasePotentialStats(
        phases=len(trajectory.phases),
        max_identity_residual=max(residuals) if residuals else 0.0,
        lemma4_violations=violations,
        max_potential_increase=max(max_increase, 0.0),
    )


def final_potential_gap(trajectory: Trajectory, optimal_potential: float) -> float:
    """Return ``Phi(final flow) - Phi*``."""
    return potential(trajectory.final_flow) - optimal_potential


def final_equilibrium_violation(trajectory: Trajectory) -> float:
    """Return the Wardrop-equilibrium violation of the final flow."""
    return equilibrium_violation(trajectory.final_flow)


def potential_decrease_rate(trajectory: Trajectory) -> float:
    """Return the average per-phase potential decrease over the run.

    Positive values mean the potential went down on average; oscillating runs
    hover around zero.
    """
    values = np.array([potential(phase.end_flow) for phase in trajectory.phases])
    if len(values) < 2:
        return 0.0
    return float(-(values[-1] - values[0]) / (len(values) - 1))


def trajectory_summary_row(trajectory: Trajectory, optimal_potential: float) -> dict:
    """Return a dictionary of the headline metrics of a run (for table rows)."""
    return {
        "policy": trajectory.policy_name,
        "T": trajectory.update_period,
        "phases": len(trajectory.phases),
        "final_gap": final_potential_gap(trajectory, optimal_potential),
        "final_violation": final_equilibrium_violation(trajectory),
        "avg_latency": trajectory.final_flow.average_latency(),
    }
