"""The batched fluid-limit simulation engine.

:class:`BatchSimulator` evolves ``B`` independent replicas of the rerouting
dynamics on the *same* network as one stacked ``(B, P)`` array: one
vectorised right-hand side per integration step instead of one Python-level
simulation per replica.  Rows may differ in initial flow, bulletin-board
update period, horizon, steps-per-phase resolution and (via a list of
policies) policy parameters, so a whole parameter sweep becomes a single
integration.

Correctness contract
--------------------
Row ``r`` of a batched run reproduces the scalar
:class:`~repro.core.simulator.ReroutingSimulator` trajectory for the same
configuration *exactly* (bit for bit in practice, and certainly within
1e-10): the engine mirrors the scalar phase/step-count arithmetic
(:func:`~repro.core.dynamics.num_integration_steps`), uses batched kernels
that perform the same floating-point operations row by row, and applies the
same clip-and-rescale projection at phase boundaries.  The equivalence is
enforced by the property tests in ``tests/batch``.

Because rows are independent, the engine advances all rows through *their
own* phase ``k`` simultaneously even when their update periods differ — the
rows' absolute clocks simply diverge, which is harmless.  Rows whose horizon
is exhausted are frozen with a zero step size until the longest-running row
finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from ..core.dynamics import batch_stepper_for
from ..core.policy import ReroutingPolicy
from ..core.trajectory import PhaseRecord, Trajectory
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .board import BatchBulletinBoard

Policies = Union[ReroutingPolicy, Sequence[ReroutingPolicy]]


@dataclass
class BatchConfig:
    """Configuration of a batched run; per-row fields broadcast from scalars.

    Attributes
    ----------
    update_periods:
        Shape ``(B,)`` — each row's bulletin-board period ``T_r``.  This
        array fixes the batch size ``B``.
    horizons:
        Scalar or shape ``(B,)`` — total simulated time per row.
    steps_per_phase:
        Scalar or shape ``(B,)`` — integrator sub-steps per phase.
    method:
        Integration scheme shared by the batch, ``"rk4"`` or ``"euler"``.
    stale:
        If ``True`` (default) boards refresh only at phase boundaries
        (Eq. 3); if ``False`` the live state is used at every stage (Eq. 1).
    """

    update_periods: np.ndarray = field(default_factory=lambda: np.array([0.1]))
    horizons: Union[float, np.ndarray] = 50.0
    steps_per_phase: Union[int, np.ndarray] = 50
    method: str = "rk4"
    stale: bool = True

    def __post_init__(self) -> None:
        self.update_periods = np.atleast_1d(np.asarray(self.update_periods, dtype=float))
        batch = len(self.update_periods)
        self.horizons = np.broadcast_to(
            np.asarray(self.horizons, dtype=float), (batch,)
        ).copy()
        self.steps_per_phase = np.broadcast_to(
            np.asarray(self.steps_per_phase, dtype=int), (batch,)
        ).copy()
        if np.any(self.update_periods <= 0):
            raise ValueError("all update periods must be positive")
        if np.any(self.horizons <= 0):
            raise ValueError("all horizons must be positive")
        if np.any(self.steps_per_phase <= 0):
            raise ValueError("steps_per_phase must be positive")

    @property
    def batch_size(self) -> int:
        return len(self.update_periods)


@dataclass
class BatchResult:
    """The recorded phase-boundary states of a batched run.

    ``times[r, k]`` and ``flows[r, k]`` hold row ``r``'s ``k``-th recorded
    sample (``k = 0`` is the initial state, then one sample per completed
    phase); only the first ``num_points[r]`` slots of row ``r`` are valid.
    """

    network: WardropNetwork
    policy_names: List[str]
    update_periods: np.ndarray
    horizons: np.ndarray
    stale: bool
    times: np.ndarray
    flows: np.ndarray
    num_points: np.ndarray

    @property
    def batch_size(self) -> int:
        return len(self.update_periods)

    def __len__(self) -> int:
        return self.batch_size

    def num_phases(self, row: int) -> int:
        """Return the number of completed bulletin-board phases of one row."""
        return int(self.num_points[row]) - 1

    def final_flows(self) -> np.ndarray:
        """Return the ``(B, P)`` array of final flows, one row per replica."""
        rows = np.arange(self.batch_size)
        return self.flows[rows, self.num_points - 1].copy()

    def final_flow(self, row: int) -> FlowVector:
        """Return one row's final flow as a :class:`FlowVector`."""
        return FlowVector(
            self.network, self.flows[row, self.num_points[row] - 1], validate=False
        )

    def flow_matrix(self, row: int) -> np.ndarray:
        """Return one row's ``(samples, P)`` matrix of recorded flows."""
        return self.flows[row, : self.num_points[row]].copy()

    def trajectory(self, row: int) -> Trajectory:
        """Materialise one row as a scalar :class:`Trajectory`.

        The result has the same points, phase records and metadata as a
        scalar simulator run of that configuration, so the whole analysis
        toolkit (convergence counting, oscillation detection, sweep row
        builders) applies unchanged.
        """
        count = int(self.num_points[row])
        trajectory = Trajectory(
            network=self.network,
            policy_name=self.policy_names[row],
            update_period=float(self.update_periods[row]) if self.stale else 0.0,
        )
        vectors = [
            FlowVector(self.network, self.flows[row, k], validate=False)
            for k in range(count)
        ]
        for k in range(count):
            trajectory.record(float(self.times[row, k]), vectors[k], max(k - 1, 0))
        for p in range(count - 1):
            trajectory.record_phase(
                PhaseRecord(
                    index=p,
                    start_time=float(self.times[row, p]),
                    end_time=float(self.times[row, p + 1]),
                    start_flow=vectors[p],
                    end_flow=vectors[p + 1],
                )
            )
        return trajectory

    def trajectories(self) -> List[Trajectory]:
        """Materialise every row (convenience for small batches)."""
        return [self.trajectory(row) for row in range(self.batch_size)]


class BatchSimulator:
    """Simulates ``B`` independent replicas of the rerouting dynamics at once.

    Parameters
    ----------
    network:
        The shared :class:`WardropNetwork` (all rows route on it).
    policies:
        Either one :class:`ReroutingPolicy` applied to every row (the fast,
        fully vectorised path) or a sequence of ``B`` policies, one per row
        (sampling/migration matrices are then assembled row by row, which
        still amortises the integration loop across the batch).
    config:
        The :class:`BatchConfig` with per-row periods/horizons/resolutions.
    """

    def __init__(self, network: WardropNetwork, policies: Policies, config: BatchConfig):
        self.network = network
        self.config = config
        if isinstance(policies, ReroutingPolicy):
            self._shared_policy: Optional[ReroutingPolicy] = policies
            self._policies: List[ReroutingPolicy] = [policies] * config.batch_size
        else:
            policies = list(policies)
            if len(policies) != config.batch_size:
                raise ValueError(
                    f"got {len(policies)} policies for a batch of {config.batch_size}"
                )
            self._shared_policy = policies[0] if len(set(map(id, policies))) == 1 else None
            self._policies = policies

    # Initial states ---------------------------------------------------------

    def _initial_flows(self, initial_flows) -> np.ndarray:
        batch = self.config.batch_size
        network = self.network
        if initial_flows is None:
            uniform = FlowVector.uniform(network).values()
            return np.tile(uniform, (batch, 1))
        if isinstance(initial_flows, FlowVector):
            if initial_flows.network is not network:
                raise ValueError("initial flow belongs to a different network")
            return np.tile(initial_flows.values(), (batch, 1))
        if isinstance(initial_flows, np.ndarray):
            flows = np.asarray(initial_flows, dtype=float)
            if flows.shape != (batch, network.num_paths):
                raise ValueError(
                    f"initial flows have shape {flows.shape}, expected "
                    f"({batch}, {network.num_paths})"
                )
            return flows.copy()
        vectors = list(initial_flows)
        if len(vectors) != batch:
            raise ValueError(f"got {len(vectors)} initial flows for a batch of {batch}")
        for vector in vectors:
            if vector.network is not network:
                raise ValueError("initial flow belongs to a different network")
        return np.stack([vector.values() for vector in vectors])

    # Right-hand sides -------------------------------------------------------

    def _stale_rates(self, board: BatchBulletinBoard):
        """Return a field closure for one stale phase (frozen sigma and mu).

        Within a phase the sampling and migration matrices depend only on the
        posted snapshot, so they are assembled once per phase instead of once
        per integrator stage — the values (and hence the trajectory) are
        identical to the scalar simulator's, which recomputes them each call.
        """
        network = self.network
        if self._shared_policy is not None:
            policy = self._shared_policy
            sigma = policy.sampling.probabilities_batch(
                network, board.posted_flows, board.posted_path_latencies
            )
            mu = policy.migration.matrix_batch(board.posted_path_latencies)
        else:
            sigma = np.stack(
                [
                    pol.sampling.probabilities(
                        network, board.posted_flows[r], board.posted_path_latencies[r]
                    )
                    for r, pol in enumerate(self._policies)
                ]
            )
            mu = np.stack(
                [
                    pol.migration.matrix(board.posted_path_latencies[r])
                    for r, pol in enumerate(self._policies)
                ]
            )

        def field(_t, state: np.ndarray) -> np.ndarray:
            rho = (state[:, :, None] * sigma) * mu
            return rho.sum(axis=1) - rho.sum(axis=2)

        return field

    def _fresh_rates(self):
        """Return the up-to-date-information field (live state every stage)."""
        network = self.network
        if self._shared_policy is not None:
            policy = self._shared_policy

            def field(_t, state: np.ndarray) -> np.ndarray:
                live_latencies = network.path_latencies_batch(state)
                return policy.growth_rates_batch(network, state, state, live_latencies)

        else:
            policies = self._policies

            def field(_t, state: np.ndarray) -> np.ndarray:
                live_latencies = network.path_latencies_batch(state)
                return np.stack(
                    [
                        pol.growth_rates(network, state[r], state[r], live_latencies[r])
                        for r, pol in enumerate(policies)
                    ]
                )

        return field

    # Main loop --------------------------------------------------------------

    def run(self, initial_flows=None) -> BatchResult:
        """Integrate every replica to its horizon and return the batch result.

        ``initial_flows`` may be ``None`` (uniform split for every row), a
        single :class:`FlowVector` (shared start), a sequence of ``B`` flow
        vectors or a raw ``(B, P)`` array.
        """
        config = self.config
        network = self.network
        batch = config.batch_size
        periods = config.update_periods
        horizons = config.horizons
        flows = self._initial_flows(initial_flows)
        stepper = batch_stepper_for(config.method)

        # Per-row phase counts, mirroring the scalar ceil(horizon / T).
        planned_phases = np.ceil(horizons / periods).astype(int)
        max_phases = int(planned_phases.max())

        times = np.zeros((batch, max_phases + 1))
        recorded = np.zeros((batch, max_phases + 1, network.num_paths))
        recorded[:, 0] = flows
        num_points = np.ones(batch, dtype=int)

        board: Optional[BatchBulletinBoard] = None
        if config.stale:
            board = BatchBulletinBoard(network, periods)
            board.post_rows(0.0, flows)
            field = self._stale_rates(board)
        else:
            field = self._fresh_rates()

        max_steps = periods / config.steps_per_phase
        for phase in range(max_phases):
            starts = phase * periods
            # The scalar loop stops as soon as a phase boundary reaches the
            # horizon, so a row is active only while its phase starts early.
            active = (phase < planned_phases) & (starts < horizons)
            if not active.any():
                break
            ends = np.minimum((phase + 1) * periods, horizons)
            durations = np.where(active, ends - starts, 0.0)

            if config.stale and phase > 0:
                # Mirror the scalar board's maybe_update: floating-point
                # effects in floor(t / T) occasionally leave a snapshot in
                # place for one more phase, and rows must reproduce that.
                due = board.needs_update(starts) & active
                if due.any():
                    board.post_rows(starts, flows, mask=due)
                    field = self._stale_rates(board)

            # Same sub-step count as the scalar integrate(): ceil(duration/step).
            num_steps = np.maximum(1, np.ceil(durations / max_steps)).astype(int)
            step_sizes = durations / num_steps
            state = flows
            for k in range(int(num_steps.max())):
                live = (k < num_steps) & active
                step = np.where(live, step_sizes, 0.0)[:, None]
                tick = (starts + k * step_sizes)[:, None]
                state = stepper(field, tick, state, step)

            projected = FlowVector.project_batch(network, state)
            flows = np.where(active[:, None], projected, flows)
            times[active, phase + 1] = ends[active]
            recorded[active, phase + 1] = flows[active]
            num_points[active] += 1

        labels = [policy.label() for policy in self._policies]
        return BatchResult(
            network=network,
            policy_names=labels,
            update_periods=periods.copy(),
            horizons=horizons.copy(),
            stale=config.stale,
            times=times,
            flows=recorded,
            num_points=num_points,
        )


def simulate_batch(
    network: WardropNetwork,
    policies: Policies,
    update_periods,
    horizons,
    initial_flows=None,
    stale: bool = True,
    steps_per_phase=50,
    method: str = "rk4",
) -> BatchResult:
    """Convenience wrapper mirroring :func:`repro.core.simulator.simulate`."""
    config = BatchConfig(
        update_periods=np.asarray(update_periods, dtype=float),
        horizons=horizons,
        steps_per_phase=steps_per_phase,
        method=method,
        stale=stale,
    )
    return BatchSimulator(network, policies, config).run(initial_flows)
