"""Validation helpers for Wardrop instances.

The theory of the paper only applies under explicit assumptions on the
instance: latency functions must be continuous, non-decreasing and have a
bounded first derivative, the demands must be normalised and every commodity
must actually be routable.  :func:`validate_network` packages these checks
into a single call that examples and the simulator run up front so that
violations surface as clear errors instead of silently wrong dynamics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .commodity import demands_are_normalised
from .network import WardropNetwork


class InstanceValidationError(ValueError):
    """Raised when a Wardrop instance violates the model assumptions."""


@dataclass
class ValidationReport:
    """The outcome of validating an instance.

    ``issues`` lists human-readable descriptions of every violated
    assumption; an empty list means the instance is valid.
    """

    issues: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def raise_if_invalid(self) -> None:
        if self.issues:
            raise InstanceValidationError("; ".join(self.issues))


def validate_network(network: WardropNetwork, samples: int = 32) -> ValidationReport:
    """Check the model assumptions of Section 2.1 on a network.

    The checks are:

    * demands sum to one (the paper's normalisation),
    * every commodity has at least one path (guaranteed at construction but
      re-checked for defence in depth),
    * every latency function is non-negative and non-decreasing on ``[0, 1]``
      (spot-checked on a grid),
    * every latency function has a finite slope bound, so the network
      constant ``beta`` is finite and the safe update period is positive.
    """
    report = ValidationReport()
    if not demands_are_normalised(network.commodities):
        report.issues.append("commodity demands do not sum to one")
    for index in range(network.num_commodities):
        if not network.paths.commodity_paths(index):
            report.issues.append(f"commodity {index} has no paths")
    for edge in network.edges:
        latency = network.latency_function(edge)
        try:
            latency.validate(samples=samples)
        except ValueError as error:
            report.issues.append(f"edge {edge}: {error}")
        slope = latency.max_slope(0.0, 1.0)
        if not slope < float("inf"):
            report.issues.append(f"edge {edge}: latency slope is unbounded")
    if network.max_latency() <= 0 and network.max_slope() <= 0:
        report.issues.append("all latencies are identically zero; the game is degenerate")
    return report


def assert_valid(network: WardropNetwork) -> None:
    """Validate a network and raise :class:`InstanceValidationError` on failure."""
    validate_network(network).raise_if_invalid()
