"""Analysis toolkit: convergence counting, oscillation detection, sweeps, tables."""

from .convergence import (
    ConvergenceSummary,
    count_bad_phases,
    final_distance_to,
    fluid_limit_deviation,
    potential_is_monotone,
    time_to_approximate_equilibrium,
    time_to_potential_gap,
)
from .metrics import (
    PhasePotentialStats,
    final_equilibrium_violation,
    final_potential_gap,
    phase_potential_stats,
    potential_decrease_rate,
    trajectory_summary_row,
)
from .network_report import NetworkReport, network_report
from .oscillation import OscillationReport, analyse_oscillation, phase_start_latency_trace
from .reporting import format_value, print_table, render_comparison, render_table
from .sweeps import (
    SweepCase,
    SweepResult,
    cartesian,
    convergence_row_builder,
    run_sweep,
)

__all__ = [
    "ConvergenceSummary",
    "NetworkReport",
    "OscillationReport",
    "PhasePotentialStats",
    "SweepCase",
    "SweepResult",
    "analyse_oscillation",
    "cartesian",
    "convergence_row_builder",
    "count_bad_phases",
    "final_distance_to",
    "final_equilibrium_violation",
    "final_potential_gap",
    "fluid_limit_deviation",
    "format_value",
    "network_report",
    "phase_potential_stats",
    "phase_start_latency_trace",
    "potential_decrease_rate",
    "potential_is_monotone",
    "print_table",
    "render_comparison",
    "render_table",
    "run_sweep",
    "time_to_approximate_equilibrium",
    "time_to_potential_gap",
    "trajectory_summary_row",
]
