"""Bit-equivalence of the batched agent engine and the scalar simulator.

Every batched replica row must reproduce a standalone
:class:`~repro.core.agents.AgentBasedSimulator` run with the same seed *bit
for bit*: the final agent-to-path assignments, every recorded trajectory
point (times, flows, phase indices), the phase records and the final flows.
The grid covers two instances, stale and fresh information, heterogeneous
populations/periods/horizons per row, network families and per-row policies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import BatchAgentConfig, BatchAgentSimulator, simulate_agent_batch
from repro.core import (
    AgentBasedSimulator,
    AgentSimulationConfig,
    replicator_policy,
    scaled_policy,
    uniform_policy,
)
from repro.instances import lopsided_flow, pigou_network, two_link_network
from repro.wardrop import FlowVector, NetworkFamily

ROWS = [
    {"num_agents": 40, "update_period": 0.2, "horizon": 2.0, "seed": 3},
    {"num_agents": 75, "update_period": 0.25, "horizon": 1.7, "seed": 11},
    {"num_agents": 120, "update_period": 0.2, "horizon": 2.1, "seed": 42},
]


def scalar_run(network, policy, row, initial_flow, stale):
    config = AgentSimulationConfig(stale=stale, **row)
    simulator = AgentBasedSimulator(network, policy, config)
    trajectory = simulator.run(initial_flow)
    return trajectory, simulator.final_assignment


def assert_rows_bit_identical(result, network_of_row, policy_of_row, rows, starts, stale):
    for index, row in enumerate(rows):
        network = network_of_row(index)
        trajectory, assignment = scalar_run(
            network, policy_of_row(index), row, starts[index], stale
        )
        batched = result.trajectory(index)
        # Assignments: the exact agent-to-path map after the last phase.
        assert np.array_equal(assignment, result.assignments[index])
        # Trajectories: every sample time, flow vector and phase index.
        assert np.array_equal(trajectory.times, batched.times)
        assert np.array_equal(trajectory.flow_matrix(), batched.flow_matrix())
        assert [p.phase_index for p in trajectory.points] == [
            p.phase_index for p in batched.points
        ]
        assert len(trajectory.phases) == len(batched.phases)
        for scalar_phase, batch_phase in zip(trajectory.phases, batched.phases):
            assert scalar_phase.index == batch_phase.index
            assert scalar_phase.start_time == batch_phase.start_time
            assert scalar_phase.end_time == batch_phase.end_time
            assert np.array_equal(
                scalar_phase.start_flow.values(), batch_phase.start_flow.values()
            )
            assert np.array_equal(
                scalar_phase.end_flow.values(), batch_phase.end_flow.values()
            )
        # Final flows, both as arrays and through the FlowVector accessor.
        assert np.array_equal(
            trajectory.final_flow.values(), result.final_flow(index).values()
        )
        assert np.array_equal(trajectory.final_flow.values(), result.final_flows()[index])
        assert batched.policy_name == trajectory.policy_name
        assert batched.update_period == trajectory.update_period


@pytest.mark.parametrize("stale", [True, False], ids=["stale", "fresh"])
@pytest.mark.parametrize(
    "make_network",
    [lambda: two_link_network(beta=4.0), lambda: pigou_network(degree=2)],
    ids=["two-links", "pigou-quadratic"],
)
def test_rows_bit_identical_to_scalar_runs(make_network, stale):
    network = make_network()
    policy = replicator_policy(network, exploration=1e-3)
    start = lopsided_flow(network, 0.85) if network.num_paths == 2 else None
    result = simulate_agent_batch(
        network,
        policy,
        num_agents=[row["num_agents"] for row in ROWS],
        update_periods=[row["update_period"] for row in ROWS],
        horizons=[row["horizon"] for row in ROWS],
        initial_flows=start,
        seeds=[row["seed"] for row in ROWS],
        stale=stale,
    )
    assert_rows_bit_identical(
        result, lambda i: network, lambda i: policy, ROWS, [start] * len(ROWS), stale
    )


@pytest.mark.parametrize("stale", [True, False], ids=["stale", "fresh"])
def test_family_rows_match_their_member_networks(stale):
    constants = [0.6, 0.85, 1.1]
    family = NetworkFamily([pigou_network(degree=1, constant=c) for c in constants])
    policy = uniform_policy(family.base, max_latency=family.max_latency())
    starts = [FlowVector(member, [0.3, 0.7]) for member in family.networks]
    result = simulate_agent_batch(
        family,
        policy,
        num_agents=[row["num_agents"] for row in ROWS],
        update_periods=[row["update_period"] for row in ROWS],
        horizons=[row["horizon"] for row in ROWS],
        initial_flows=starts,
        seeds=[row["seed"] for row in ROWS],
        stale=stale,
    )
    assert_rows_bit_identical(
        result, lambda i: family.member(i), lambda i: policy, ROWS, starts, stale
    )


def test_per_row_policies_use_the_row_loop_fallback():
    network = two_link_network(beta=4.0)
    policies = [scaled_policy(0.3), scaled_policy(0.6), scaled_policy(0.9)]
    start = lopsided_flow(network, 0.8)
    config = BatchAgentConfig(
        num_agents=np.array([row["num_agents"] for row in ROWS]),
        update_periods=[row["update_period"] for row in ROWS],
        horizons=[row["horizon"] for row in ROWS],
        seeds=[row["seed"] for row in ROWS],
    )
    result = BatchAgentSimulator(network, policies, config).run(start)
    assert_rows_bit_identical(
        result, lambda i: network, lambda i: policies[i], ROWS, [start] * len(ROWS), True
    )


def test_batch_size_broadcasts_from_any_per_row_field(two_links):
    """Scalar n with a seed list is the natural constant-n replica sweep."""
    policy = uniform_policy(two_links)
    result = simulate_agent_batch(
        two_links, policy, num_agents=40, update_periods=0.25, horizons=1.0,
        seeds=range(3),
    )
    assert result.batch_size == 3
    assert list(result.num_agents) == [40, 40, 40]
    for row in range(3):
        trajectory, assignment = scalar_run(
            two_links,
            policy,
            {"num_agents": 40, "update_period": 0.25, "horizon": 1.0, "seed": row},
            None,
            True,
        )
        assert np.array_equal(assignment, result.assignments[row])
        assert np.array_equal(trajectory.flow_matrix(), result.trajectory(row).flow_matrix())
    with pytest.raises(ValueError):
        simulate_agent_batch(
            two_links, policy, num_agents=[10, 20, 30], update_periods=[0.1, 0.2],
            horizons=1.0,
        )


def test_uniform_default_start_and_shared_seed_broadcast(two_links):
    policy = uniform_policy(two_links)
    result = simulate_agent_batch(
        two_links, policy, num_agents=[30, 30], update_periods=0.25, horizons=1.5, seeds=7
    )
    # Identical configuration and seed: the rows are exact clones.
    assert np.array_equal(result.assignments[0], result.assignments[1])
    assert np.array_equal(result.flows[0], result.flows[1])
    trajectory, assignment = scalar_run(
        two_links,
        policy,
        {"num_agents": 30, "update_period": 0.25, "horizon": 1.5, "seed": 7},
        None,
        True,
    )
    assert np.array_equal(assignment, result.assignments[0])
    assert np.array_equal(trajectory.flow_matrix(), result.trajectory(0).flow_matrix())


def test_horizon_rounding_edge_keeps_engines_identical(two_links):
    """horizon = k * T computed in floating point can land just above k*T
    (e.g. 48 * 0.2); ceil then plans one empty trailing phase, which both
    engines must skip identically (code-review regression)."""
    policy = uniform_policy(two_links)
    horizon = 48 * 0.2  # = 9.600000000000001 > 9.6
    result = simulate_agent_batch(
        two_links, policy, num_agents=[60], update_periods=0.2, horizons=horizon, seeds=13
    )
    trajectory, assignment = scalar_run(
        two_links,
        policy,
        {"num_agents": 60, "update_period": 0.2, "horizon": horizon, "seed": 13},
        None,
        True,
    )
    assert len(trajectory.phases) == result.num_phases(0) == 48
    assert np.array_equal(trajectory.times, result.trajectory(0).times)
    assert np.array_equal(trajectory.flow_matrix(), result.trajectory(0).flow_matrix())
    assert np.array_equal(assignment, result.assignments[0])


def test_config_validation():
    with pytest.raises(ValueError):
        BatchAgentConfig(num_agents=np.array([0, 10]))
    with pytest.raises(ValueError):
        BatchAgentConfig(num_agents=np.array([10]), update_periods=0.0)
    with pytest.raises(ValueError):
        BatchAgentConfig(num_agents=np.array([10]), horizons=-1.0)


def test_family_size_must_match_batch(two_links):
    family = NetworkFamily.replicate(two_links, 2)
    config = BatchAgentConfig(num_agents=np.array([10, 10, 10]))
    with pytest.raises(ValueError):
        BatchAgentSimulator(family, uniform_policy(two_links), config)
