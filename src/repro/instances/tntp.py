"""TNTP road-network instances: parser, loader and the Sioux Falls fixture.

The TNTP format (https://github.com/bstabler/TransportationNetworks) is the
de-facto standard exchange format of the traffic-assignment literature: a
``_net.tntp`` file lists directed links with BPR volume-delay parameters
behind a ``<KEY> value`` metadata header, and a ``_trips.tntp`` file lists
the origin--destination demand matrix.  This module parses both, converts
them into the normalised Wardrop model of the reproduction and registers the
bundled Sioux Falls instance (24 nodes, 76 links, 528 OD pairs).

Unit conversion.  The paper's model routes a total demand of one over
latency functions defined on ``[0, 1]``.  A TNTP instance with raw total
demand ``R`` is converted by dividing all demands *and all link capacities*
by ``R``: a normalised flow share ``x`` then experiences exactly the latency
the raw instance assigns to the raw flow ``R * x`` (BPR depends on flow only
through ``flow / capacity``).  Latency values keep their raw units
(minutes), and raw total system travel time is recovered as ``R *
sum_e x_e * l_e(x_e)`` -- the loader records ``R`` in
``graph.graph["total_demand"]``.

Loaded networks are *restricted*: each commodity is seeded with its
free-flow shortest path (one Dijkstra per origin), and no full path
enumeration ever runs -- growing the route set is the job of
:mod:`repro.largescale.columns`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path as FilePath
from typing import Dict, List, Optional, Tuple, Union

import networkx as nx

from ..largescale.incidence import have_scipy
from ..largescale.shortest import ShortestPathOracle
from ..wardrop.commodity import Commodity
from ..wardrop.latency import BPRLatency
from ..wardrop.network import LATENCY_ATTR, WardropNetwork
from ..wardrop.paths import PathSet

DATA_DIR = FilePath(__file__).parent / "data"
SIOUX_FALLS_NET = DATA_DIR / "siouxfalls_net.tntp"
SIOUX_FALLS_TRIPS = DATA_DIR / "siouxfalls_trips.tntp"

# Reference equilibrium total system travel time of the bundled fixture (raw
# TNTP units: vehicle-minutes), computed by the edge-flow Frank--Wolfe solver
# at relative duality gap <= 5e-5 (TSTT is stable to ~0.003% across
# tolerances there).  The round-trip test accepts 0.5% around it.
SIOUX_FALLS_REFERENCE_TSTT = 7_459_000.0


@dataclass(frozen=True)
class TntpLink:
    """One parsed ``_net.tntp`` link row (raw TNTP units)."""

    init_node: int
    term_node: int
    capacity: float
    length: float
    free_flow_time: float
    b: float
    power: float
    speed: float
    toll: float
    link_type: int


def _strip_tntp(text: str) -> List[str]:
    """Return the semantically relevant lines: no comments, no blanks.

    ``~`` starts a comment that runs to the end of the line (the format also
    uses a leading ``~`` for the column-header line).  ``;`` is left in
    place because its meaning is per-section: a row terminator in net files
    (dropped by :func:`parse_tntp_network`) but the entry separator in trips
    files (split on by :func:`parse_tntp_trips`).
    """
    lines = []
    for raw in text.splitlines():
        line = raw.split("~", 1)[0].strip()
        if line:
            lines.append(line)
    return lines


def _parse_metadata(lines: List[str]) -> Tuple[Dict[str, str], int]:
    """Parse the ``<KEY> value`` header; returns (metadata, body offset).

    The header ends at ``<END OF METADATA>``.  A malformed header line (a
    ``<`` without its closing ``>``) raises ``ValueError`` rather than being
    silently skipped.
    """
    metadata: Dict[str, str] = {}
    for offset, line in enumerate(lines):
        if not line.startswith("<"):
            # Header ended without the canonical sentinel; tolerate it.
            return metadata, offset
        match = re.match(r"^<([^<>]*)>\s*(.*)$", line)
        if match is None:
            raise ValueError(f"malformed TNTP metadata line: {line!r}")
        key = match.group(1).strip().upper()
        if key == "END OF METADATA":
            return metadata, offset + 1
        metadata[key] = match.group(2).strip()
    return metadata, len(lines)


def _metadata_number(metadata: Dict[str, str], key: str) -> Optional[float]:
    value = metadata.get(key)
    if value is None or value == "":
        return None
    try:
        return float(value)
    except ValueError as error:
        raise ValueError(f"TNTP metadata <{key}> is not a number: {value!r}") from error


def parse_tntp_network(text: str) -> Tuple[Dict[str, str], List[TntpLink]]:
    """Parse a ``_net.tntp`` file into metadata and link rows.

    Raises ``ValueError`` on malformed metadata, malformed link rows, or a
    link count that contradicts the ``<NUMBER OF LINKS>`` header.
    """
    lines = _strip_tntp(text)
    metadata, offset = _parse_metadata(lines)
    links: List[TntpLink] = []
    for line in lines[offset:]:
        # ';' terminates a link row; spacing around it varies across the
        # TransportationNetworks files (some glue it to the last field).
        fields = line.replace(";", " ").split()
        if len(fields) < 10:
            raise ValueError(f"malformed TNTP link row ({len(fields)} fields): {line!r}")
        links.append(
            TntpLink(
                init_node=int(fields[0]),
                term_node=int(fields[1]),
                capacity=float(fields[2]),
                length=float(fields[3]),
                free_flow_time=float(fields[4]),
                b=float(fields[5]),
                power=float(fields[6]),
                speed=float(fields[7]),
                toll=float(fields[8]),
                link_type=int(float(fields[9])),
            )
        )
    declared = _metadata_number(metadata, "NUMBER OF LINKS")
    if declared is not None and int(declared) != len(links):
        raise ValueError(
            f"TNTP header declares {int(declared)} links, file has {len(links)}"
        )
    return metadata, links


def parse_tntp_trips(text: str) -> Tuple[Dict[str, str], Dict[Tuple[int, int], float]]:
    """Parse a ``_trips.tntp`` file into metadata and an OD demand map.

    Zero-demand pairs and self-loops are dropped (they carry no flow).  The
    declared ``<TOTAL OD FLOW>`` is cross-checked against the parsed total
    (including the dropped zero/diagonal entries, which contribute nothing).
    """
    lines = _strip_tntp(text)
    metadata, offset = _parse_metadata(lines)
    demands: Dict[Tuple[int, int], float] = {}
    origin: Optional[int] = None
    total = 0.0
    for line in lines[offset:]:
        if line.lower().startswith("origin"):
            fields = line.split()
            if len(fields) != 2:
                raise ValueError(f"malformed TNTP origin line: {line!r}")
            origin = int(fields[1])
            continue
        if origin is None:
            raise ValueError(f"TNTP trips row before any 'Origin' line: {line!r}")
        for entry in line.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            if ":" not in entry:
                raise ValueError(f"malformed TNTP trips entry: {entry!r}")
            destination_text, demand_text = entry.split(":", 1)
            destination = int(destination_text)
            demand = float(demand_text)
            if demand < 0:
                raise ValueError(f"negative TNTP demand: {entry!r}")
            total += demand
            if demand > 0 and destination != origin:
                demands[(origin, destination)] = demands.get(
                    (origin, destination), 0.0
                ) + demand
    declared = _metadata_number(metadata, "TOTAL OD FLOW")
    if declared is not None and abs(declared - total) > max(1e-6 * max(declared, 1.0), 1e-9):
        raise ValueError(
            f"TNTP header declares total OD flow {declared}, file sums to {total}"
        )
    return metadata, demands


def load_tntp_instance(
    net_path: Union[str, FilePath],
    trips_path: Union[str, FilePath],
    name: str = "",
    max_od_pairs: Optional[int] = None,
    incidence_mode: Optional[str] = None,
) -> WardropNetwork:
    """Build a restricted :class:`WardropNetwork` from a TNTP file pair.

    Parameters
    ----------
    net_path / trips_path:
        The ``_net.tntp`` and ``_trips.tntp`` files.
    name:
        Stored in ``graph.graph["name"]`` for reports.
    max_od_pairs:
        Optionally keep only the ``K`` highest-demand OD pairs (ties broken
        by OD ids) -- the down-scaled variants used by fast tests.
    incidence_mode:
        Incidence backend; defaults to ``"sparse"`` when scipy is available
        (road networks are the sparse layer's home turf), else ``"dense"``.

    The returned network carries ``first_thru_node``, ``total_demand`` (the
    raw trips before normalisation, *after* any ``max_od_pairs`` filter) and
    ``name`` in ``graph.graph``; its path set holds exactly one free-flow
    shortest path per commodity and is meant to grow by column generation.
    """
    net_text = FilePath(net_path).read_text()
    trips_text = FilePath(trips_path).read_text()
    return load_tntp_from_text(
        net_text,
        trips_text,
        name=name,
        max_od_pairs=max_od_pairs,
        incidence_mode=incidence_mode,
    )


def load_tntp_from_text(
    net_text: str,
    trips_text: str,
    name: str = "",
    max_od_pairs: Optional[int] = None,
    incidence_mode: Optional[str] = None,
) -> WardropNetwork:
    """Build a restricted :class:`WardropNetwork` from TNTP file *contents*.

    Same conversion as :func:`load_tntp_instance` without touching the
    filesystem -- generated instances (the synthetic city of
    :mod:`repro.instances.city`) emit TNTP text and load it through this
    exact code path, which guarantees they stay TNTP-convertible.
    """
    net_metadata, links = parse_tntp_network(net_text)
    trips_metadata, demands = parse_tntp_trips(trips_text)
    if not links:
        raise ValueError("TNTP network has no links")
    if not demands:
        raise ValueError("TNTP trips have no positive demand")

    if max_od_pairs is not None:
        if max_od_pairs < 1:
            raise ValueError("max_od_pairs must be positive")
        ranked = sorted(demands.items(), key=lambda item: (-item[1], item[0]))
        demands = dict(ranked[:max_od_pairs])

    total = sum(demands.values())
    first_thru = _metadata_number(net_metadata, "FIRST THRU NODE")
    first_thru_node = int(first_thru) if first_thru is not None else None

    graph = nx.MultiDiGraph()
    for link in links:
        power = link.power
        if abs(power - round(power)) > 1e-9 or round(power) < 1:
            raise ValueError(
                f"BPR power must be a positive integer, link "
                f"{link.init_node}->{link.term_node} has {power}"
            )
        graph.add_edge(
            link.init_node,
            link.term_node,
            **{
                LATENCY_ATTR: BPRLatency(
                    free_flow_time=link.free_flow_time,
                    capacity=link.capacity / total,
                    alpha=link.b,
                    beta=int(round(power)),
                )
            },
        )
    graph.graph["name"] = name
    graph.graph["total_demand"] = total
    if first_thru_node is not None:
        graph.graph["first_thru_node"] = first_thru_node
    declared_zones = _metadata_number(net_metadata, "NUMBER OF ZONES")
    if declared_zones is not None:
        graph.graph["num_zones"] = int(declared_zones)

    commodities = [
        Commodity(source=o, sink=d, demand=demand, name=f"{o}->{d}")
        for (o, d), demand in sorted(demands.items())
    ]
    oracle = ShortestPathOracle(graph, commodities, first_thru_node=first_thru_node)
    seeds = oracle.shortest_commodity_paths(oracle.free_flow_costs())
    if incidence_mode is None:
        incidence_mode = "sparse" if have_scipy() else "dense"
    return WardropNetwork(
        graph,
        commodities,
        normalise=True,
        paths=PathSet([[seed] for seed in seeds]),
        incidence_mode=incidence_mode,
    )


def sioux_falls_network(
    max_od_pairs: Optional[int] = None,
    incidence_mode: Optional[str] = None,
) -> WardropNetwork:
    """Load the bundled Sioux Falls instance (24 nodes / 76 links / 528 OD pairs)."""
    return load_tntp_instance(
        SIOUX_FALLS_NET,
        SIOUX_FALLS_TRIPS,
        name="sioux-falls",
        max_od_pairs=max_od_pairs,
        incidence_mode=incidence_mode,
    )
