"""Braess paradox under adaptive rerouting with stale information.

A traffic-engineering flavoured example: the Braess network gains a
zero-latency shortcut, which *worsens* the equilibrium latency from 3/2 to 2.
The example lets the paper's smooth adaptive agents discover both equilibria
from scratch (with a stale bulletin board), confirms the paradox, and reports
the price of anarchy of the instance computed by the baseline solvers.

Run with::

    python examples/braess_paradox.py
"""

from __future__ import annotations

from repro.analysis import print_table
from repro.core import replicator_policy, simulate
from repro.instances import braess_equilibrium_latency, braess_network
from repro.solvers import solve_wardrop_equilibrium
from repro.wardrop import FlowVector, price_of_anarchy, social_cost


def adaptive_equilibrium(network, horizon=60.0):
    """Let the replicator policy find the equilibrium under stale information."""
    policy = replicator_policy(network, exploration=1e-3)
    period = policy.safe_update_period(network)
    start = FlowVector.uniform(network)
    trajectory = simulate(
        network, policy, update_period=period, horizon=horizon, initial_flow=start
    )
    return trajectory.final_flow


def main() -> None:
    rows = []
    for with_shortcut in [False, True]:
        network = braess_network(with_shortcut=with_shortcut)
        adaptive = adaptive_equilibrium(network)
        reference = solve_wardrop_equilibrium(network).flow
        rows.append(
            {
                "shortcut": with_shortcut,
                "paths": network.num_paths,
                "adaptive latency": adaptive.max_used_latency(),
                "solver latency": reference.max_used_latency(),
                "paper/known latency": braess_equilibrium_latency(with_shortcut),
                "social cost": social_cost(adaptive),
            }
        )
    print_table(rows, title="Braess paradox: equilibrium found by stale-information agents")

    network = braess_network(with_shortcut=True)
    cost_eq, cost_opt, ratio = price_of_anarchy(network)
    print(f"Price of anarchy of the Braess instance: {cost_eq:.4g} / {cost_opt:.4g} = {ratio:.4g}")
    print(
        "\nNote how the adaptive agents, each following the simple two-step\n"
        "sample-and-migrate rule against a stale bulletin board, end up at the\n"
        "same (worse!) equilibrium the convex solver computes -- selfish\n"
        "adaptation finds Wardrop equilibria, not social optima."
    )


if __name__ == "__main__":
    main()
