"""Nonstationary scenarios: time-varying demand, incidents, moving equilibria.

Every workload elsewhere in the reproduction is stationary -- fixed demand
rate, fixed latency coefficients -- but the paper's claim that adaptive
sampling policies converge despite *stale* information earns its keep
precisely when the environment drifts and the dynamics must chase a moving
equilibrium.  This package supplies that workload class:

* :mod:`~repro.scenarios.schedule` -- demand and latency-coefficient
  profiles over time (piecewise-constant, piecewise-linear ramps, periodic
  peaks) with a vectorised ``at``/``at_batch`` evaluation API,
* :mod:`~repro.scenarios.incidents` -- link capacity drops and closures on
  time windows,
* :mod:`~repro.scenarios.scenario` -- :class:`Scenario`, which compiles the
  effects into per-edge ``(gain, stretch, offset)`` modulations applied at
  phase boundaries, and :class:`ScenarioEnsemble`, its batched counterpart
  stacking per-row scenarios through
  :class:`~repro.wardrop.latency.LatencyStack`,
* :mod:`~repro.scenarios.tracking` -- per-interval ground-truth equilibria
  (path or edge-flow Frank--Wolfe) and the tracking metrics
  (:func:`tracking_error`, :func:`time_to_reequilibrate`,
  :func:`tracking_regret`),
* :mod:`~repro.scenarios.presets` -- the named scenario catalogue
  (``morning-peak``, ``braess-closure``, ``sioux-falls-incident``) behind
  the CLI's ``--scenario`` flag.

All engines accept scenarios: the scalar fluid simulator, the finite-agent
simulator and the batched :class:`~repro.batch.engine.BatchSimulator` (whose
rows may carry *different* scenarios -- an incident-timing sweep runs as one
ensemble, each row bit-identical to its scalar counterpart), plus the
column-generation driver, which re-seeds routes around closures.
"""

from .incidents import DEFAULT_CLOSURE_PENALTY, IncidentPlan, LinkIncident
from .presets import ScenarioBuilder, available_scenarios, get_scenario, register_scenario
from .scenario import Modulation, Scenario, ScenarioEnsemble
from .schedule import (
    CoefficientSchedule,
    ConstantSchedule,
    DemandSchedule,
    PeriodicSchedule,
    PiecewiseConstantSchedule,
    PiecewiseLinearSchedule,
    Schedule,
    peak_schedule,
)
from .tracking import (
    EquilibriumTrack,
    IntervalEquilibrium,
    interval_equilibria,
    time_to_reequilibrate,
    tracking_error,
    tracking_regret,
)

__all__ = [
    "CoefficientSchedule",
    "ConstantSchedule",
    "DEFAULT_CLOSURE_PENALTY",
    "DemandSchedule",
    "EquilibriumTrack",
    "IncidentPlan",
    "IntervalEquilibrium",
    "LinkIncident",
    "Modulation",
    "PeriodicSchedule",
    "PiecewiseConstantSchedule",
    "PiecewiseLinearSchedule",
    "Scenario",
    "ScenarioBuilder",
    "ScenarioEnsemble",
    "Schedule",
    "available_scenarios",
    "get_scenario",
    "interval_equilibria",
    "peak_schedule",
    "register_scenario",
    "time_to_reequilibrate",
    "tracking_error",
    "tracking_regret",
]
