"""Finite-population agent-based simulator with Poisson activation clocks.

The paper's analysis lives in the fluid limit (an infinite population of
infinitesimal agents), but its motivation is a finite distributed system:
``n`` agents, each controlling ``1/n``-th of the demand, each activated at
the jumps of its own unit-rate Poisson process, each applying the two-step
sample-and-migrate policy against the bulletin board.

This module implements that finite system directly as a discrete-event
simulation.  It serves two purposes in the reproduction:

* it validates that the fluid-limit ODE is the right abstraction -- as ``n``
  grows the empirical population shares converge to the ODE trajectory
  (benchmark E9), and
* it gives downstream users a simulator that matches the deployment story
  (real routers/agents are finite), not just the analysis tool.

The union of all agents' Poisson clocks is itself a Poisson process of rate
``n``; the simulation therefore draws exponential inter-activation times of
mean ``1/n`` and picks the activated agent uniformly -- an exact simulation,
not a time-discretised one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .bulletin import BulletinBoard
from .policy import ReroutingPolicy
from .trajectory import PhaseRecord, Trajectory


@dataclass
class AgentSimulationConfig:
    """Configuration of a finite-agent simulation.

    Attributes
    ----------
    num_agents:
        Population size ``n``; each agent carries ``1/n`` of the total demand
        (agents are assigned to commodities proportionally to the demands).
    update_period:
        Bulletin-board refresh interval ``T``.
    horizon:
        Total simulated time.
    seed:
        Seed of the random generator driving activations, sampling and
        migration coin flips.
    record_interval:
        Trajectory sampling interval (defaults to the update period).
    """

    num_agents: int = 1000
    update_period: float = 0.1
    horizon: float = 50.0
    seed: int = 0
    record_interval: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_agents < 1:
            raise ValueError("need at least one agent")
        if self.update_period <= 0 or self.horizon <= 0:
            raise ValueError("update period and horizon must be positive")


class AgentBasedSimulator:
    """Exact discrete-event simulation of finitely many rerouting agents."""

    def __init__(self, network: WardropNetwork, policy: ReroutingPolicy, config: AgentSimulationConfig):
        self.network = network
        self.policy = policy
        self.config = config

    # Population setup -------------------------------------------------------

    def _initial_assignment(self, initial_flow: Optional[FlowVector], rng: np.random.Generator) -> np.ndarray:
        """Assign each agent to a path, matching the initial flow as closely as possible.

        Agents are partitioned over commodities proportionally to the demands
        and, within a commodity, over paths proportionally to the initial
        flow (largest-remainder rounding keeps the counts exact).
        """
        network = self.network
        flow = initial_flow or FlowVector.uniform(network)
        n = self.config.num_agents
        assignment = np.empty(n, dtype=int)
        cursor = 0
        counts = _largest_remainder(
            np.array([c.demand for c in network.commodities]), n
        )
        for i in range(network.num_commodities):
            indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
            commodity_agents = counts[i]
            shares = flow.values()[indices]
            total = shares.sum()
            weights = shares / total if total > 0 else np.full(len(indices), 1.0 / len(indices))
            per_path = _largest_remainder(weights, commodity_agents)
            for local, count in enumerate(per_path):
                assignment[cursor : cursor + count] = indices[local]
                cursor += count
        return assignment

    def _agent_weights(self) -> np.ndarray:
        """Return the demand carried by each agent (uniform within a commodity)."""
        network = self.network
        n = self.config.num_agents
        counts = _largest_remainder(np.array([c.demand for c in network.commodities]), n)
        weights = np.empty(n)
        cursor = 0
        for i, commodity in enumerate(network.commodities):
            count = counts[i]
            weights[cursor : cursor + count] = commodity.demand / max(count, 1)
            cursor += count
        return weights

    def _commodity_of_agents(self) -> np.ndarray:
        network = self.network
        n = self.config.num_agents
        counts = _largest_remainder(np.array([c.demand for c in network.commodities]), n)
        commodities = np.empty(n, dtype=int)
        cursor = 0
        for i, count in enumerate(counts):
            commodities[cursor : cursor + count] = i
            cursor += count
        return commodities

    # Simulation ----------------------------------------------------------------

    def run(self, initial_flow: Optional[FlowVector] = None) -> Trajectory:
        """Run the discrete-event simulation and return the recorded trajectory."""
        config = self.config
        network = self.network
        rng = np.random.default_rng(config.seed)
        assignment = self._initial_assignment(initial_flow, rng)
        weights = self._agent_weights()
        agent_commodity = self._commodity_of_agents()
        n = config.num_agents

        def current_flow_values() -> np.ndarray:
            values = np.zeros(network.num_paths)
            np.add.at(values, assignment, weights)
            return values

        board = BulletinBoard(network, config.update_period)
        trajectory = Trajectory(
            network=network,
            policy_name=f"{self.policy.label()} (n={n})",
            update_period=config.update_period,
        )
        record_interval = config.record_interval or config.update_period

        time = 0.0
        flow_values = current_flow_values()
        board.post(time, flow_values)
        trajectory.record(time, FlowVector(network, flow_values, validate=False), board.phase_index)
        next_record = record_interval
        phase_start_flow = FlowVector(network, flow_values, validate=False)
        phase_start_time = 0.0

        while time < config.horizon:
            time += rng.exponential(1.0 / n)
            if time > config.horizon:
                break
            # Refresh the bulletin board at phase boundaries we may have crossed.
            if board.needs_update(time):
                flow_values = current_flow_values()
                end_flow = FlowVector(network, flow_values, validate=False)
                trajectory.record_phase(
                    PhaseRecord(
                        index=board.phase_index,
                        start_time=phase_start_time,
                        end_time=board.phase_start(time),
                        start_flow=phase_start_flow,
                        end_flow=end_flow,
                    )
                )
                board.post(time, flow_values)
                phase_start_flow = end_flow
                phase_start_time = board.phase_start(time)
            snapshot = board.snapshot

            # Activate one uniformly random agent and apply the two-step policy.
            agent = int(rng.integers(n))
            current_path = int(assignment[agent])
            commodity = int(agent_commodity[agent])
            indices = np.fromiter(network.paths.commodity_indices(commodity), dtype=int)
            sigma = self.policy.sampling.probabilities(
                network, snapshot.path_flows, snapshot.path_latencies
            )
            distribution = sigma[current_path, indices]
            total = distribution.sum()
            if total <= 0:
                continue
            sampled_local = int(rng.choice(len(indices), p=distribution / total))
            sampled_path = int(indices[sampled_local])
            if sampled_path == current_path:
                continue
            probability = self.policy.migration.probability(
                float(snapshot.path_latencies[current_path]),
                float(snapshot.path_latencies[sampled_path]),
            )
            if rng.random() < probability:
                assignment[agent] = sampled_path

            while next_record <= time:
                trajectory.record(
                    next_record,
                    FlowVector(network, current_flow_values(), validate=False),
                    board.phase_index,
                )
                next_record += record_interval

        final_flow = FlowVector(network, current_flow_values(), validate=False)
        trajectory.record(min(time, config.horizon), final_flow, board.phase_index)
        return trajectory


def _largest_remainder(weights: np.ndarray, total: int) -> np.ndarray:
    """Apportion ``total`` integer units proportionally to ``weights``."""
    weights = np.clip(np.asarray(weights, dtype=float), 0.0, None)
    if weights.sum() <= 0:
        weights = np.ones_like(weights)
    exact = weights / weights.sum() * total
    floors = np.floor(exact).astype(int)
    remainder = total - int(floors.sum())
    if remainder > 0:
        order = np.argsort(-(exact - floors))
        floors[order[:remainder]] += 1
    return floors


def simulate_agents(
    network: WardropNetwork,
    policy: ReroutingPolicy,
    num_agents: int,
    update_period: float,
    horizon: float,
    initial_flow: Optional[FlowVector] = None,
    seed: int = 0,
) -> Trajectory:
    """Convenience wrapper around :class:`AgentBasedSimulator`."""
    config = AgentSimulationConfig(
        num_agents=num_agents,
        update_period=update_period,
        horizon=horizon,
        seed=seed,
    )
    return AgentBasedSimulator(network, policy, config).run(initial_flow)
