"""Baseline equilibrium solvers used as ground truth for the dynamics.

The adaptive rerouting policies of the paper converge to Wardrop equilibria;
these solvers compute the same equilibria by classical convex optimisation
so that the dynamics can be validated against them.  Two interfaces, four
interchangeable methods (see :mod:`repro.solvers.options` for the table):

* **path space** (enumerable instances): classical Frank--Wolfe on the
  Beckmann potential (``method="fw"``) and path-based projection gradient
  (``method="pg"``), both through :func:`solve_wardrop_equilibrium`;
* **edge space** (road networks, no path enumeration): plain, conjugate and
  biconjugate Frank--Wolfe (``method="fw" | "cfw" | "bfw"``) through
  :func:`solve_edge_flow_equilibrium`;
* **exact**: water-filling for parallel links.
"""

from .edge_frank_wolfe import (
    EdgeEquilibriumResult,
    edge_potential,
    relative_duality_gap,
    solve_edge_flow_equilibrium,
)
from .frank_wolfe import (
    EquilibriumResult,
    all_or_nothing_flow,
    duality_gap,
    optimal_potential,
    solve_wardrop_equilibrium,
)
from .line_search import bisection_root, golden_section_minimise
from .options import ALL_METHODS, EDGE_METHODS, PATH_METHODS, SolverOptions, check_method
from .parallel_links import equilibrium_latency_level, solve_parallel_links
from .projection_gradient import solve_path_projection_gradient

__all__ = [
    "ALL_METHODS",
    "EDGE_METHODS",
    "EdgeEquilibriumResult",
    "EquilibriumResult",
    "PATH_METHODS",
    "SolverOptions",
    "all_or_nothing_flow",
    "bisection_root",
    "check_method",
    "duality_gap",
    "edge_potential",
    "equilibrium_latency_level",
    "golden_section_minimise",
    "optimal_potential",
    "relative_duality_gap",
    "solve_edge_flow_equilibrium",
    "solve_parallel_links",
    "solve_path_projection_gradient",
    "solve_wardrop_equilibrium",
]
