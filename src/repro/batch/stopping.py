"""Vectorised early-stopping conditions for the batched engine.

The batched engine's ``stop_when(times, flows, rows)`` receives the
phase-end times, the projected ``(R, P)`` phase-end flows and the batch row
indices of the active sub-batch, and returns a boolean mask — True freezes a
row.  The helpers here build such predicates *together with* their scalar
counterparts (:meth:`StopCondition.scalar`), so a batched run and its
per-row scalar reference stop on exactly the same criterion evaluated with
exactly the same floating-point operations; the equivalence tests assert the
recorded stop phases match the scalar simulator's early-exit phases exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

import numpy as np

from ..wardrop.family import NetworkFamily
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork

BatchPredicate = Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]


@dataclass
class StopCondition:
    """A vectorised stopping condition with a scalar counterpart.

    Calling the condition forwards to the batch predicate, so an instance
    can be passed directly as ``stop_when`` to the batched engine;
    :meth:`scalar` adapts it to the scalar simulator's
    ``stop_when(time, flow)`` signature for one specific batch row.
    """

    batch: BatchPredicate

    def __call__(self, times: np.ndarray, flows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        return self.batch(times, flows, rows)

    def scalar(self, row: int):
        """Return the scalar ``stop_when(time, flow)`` for batch row ``row``.

        The adapter evaluates the batch predicate on a single-row batch, so
        scalar and batched runs apply identical arithmetic.
        """

        def predicate(time: float, flow: FlowVector) -> bool:
            mask = self.batch(
                np.asarray([time], dtype=float),
                flow.values()[None, :],
                np.asarray([row]),
            )
            return bool(np.asarray(mask)[0])

        return predicate


def _stack_targets(targets) -> np.ndarray:
    if isinstance(targets, np.ndarray):
        return np.asarray(targets, dtype=float)
    return np.stack(
        [
            target.values() if isinstance(target, FlowVector) else np.asarray(target, dtype=float)
            for target in targets
        ]
    )


def distance_stop(
    targets: Union[np.ndarray, Sequence[FlowVector]], tolerance: float
) -> StopCondition:
    """Stop a row once its L1 distance to a per-row target flow is ≤ tolerance.

    ``targets`` is a ``(B, P)`` array or a list of ``B`` flow vectors —
    typically the known Wardrop equilibria of the family members — matching
    the scalar criterion ``flow.distance_to(target) <= tolerance``.
    """
    stacked = _stack_targets(targets)
    tolerance = float(tolerance)

    def batch(times: np.ndarray, flows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        return np.abs(flows - stacked[rows]).sum(axis=1) <= tolerance

    return StopCondition(batch=batch)


def equilibrium_gap_stop(
    network: Union[WardropNetwork, NetworkFamily],
    delta: float,
    threshold: float = 1e-9,
) -> StopCondition:
    """Stop a row once every used path is within ``delta`` of its commodity optimum.

    A row stops when, for each commodity, the maximum latency over paths
    carrying more than ``threshold`` flow exceeds the commodity's minimum
    path latency by at most ``delta`` — the delta-approximate-equilibrium
    criterion of the convergence theorems, evaluated on the live (family
    member) latencies.
    """
    family = network if isinstance(network, NetworkFamily) else None
    base = family.base if family is not None else network
    delta = float(delta)
    commodity_indices = [
        np.fromiter(base.paths.commodity_indices(i), dtype=int)
        for i in range(base.num_commodities)
    ]

    def batch(times: np.ndarray, flows: np.ndarray, rows: np.ndarray) -> np.ndarray:
        if family is not None:
            latencies = family.path_latencies_batch(flows, rows)
        else:
            latencies = base.path_latencies_batch(flows)
        settled = np.ones(len(rows), dtype=bool)
        for indices in commodity_indices:
            block_latencies = latencies[:, indices]
            used = flows[:, indices] > threshold
            worst = np.where(used, block_latencies, -np.inf).max(axis=1)
            best = block_latencies.min(axis=1)
            settled &= worst - best <= delta
        return settled

    return StopCondition(batch=batch)
