"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.instances import (
    braess_network,
    grid_network,
    identical_linear_links,
    pigou_network,
    random_layered_network,
    two_link_network,
)
from repro.wardrop import FlowVector


@pytest.fixture
def two_links():
    """The paper's two-link oscillation instance with beta = 1."""
    return two_link_network(beta=1.0)


@pytest.fixture
def two_links_steep():
    """The two-link instance with a steep slope (beta = 8)."""
    return two_link_network(beta=8.0)


@pytest.fixture
def pigou():
    """The linear Pigou instance."""
    return pigou_network(degree=1)


@pytest.fixture
def braess():
    """The Braess network with the zero-latency shortcut."""
    return braess_network(with_shortcut=True)


@pytest.fixture
def parallel_four():
    """Four identical linear links."""
    return identical_linear_links(4)


@pytest.fixture
def small_grid():
    """A 3x3 grid with one commodity."""
    return grid_network(3, 3, num_commodities=1, seed=3)


@pytest.fixture
def layered():
    """A small random layered DAG with two commodities."""
    return random_layered_network(num_layers=2, width=2, num_commodities=2, seed=5)


@pytest.fixture
def uniform_flow(braess):
    """The uniform starting flow on the Braess network."""
    return FlowVector.uniform(braess)
