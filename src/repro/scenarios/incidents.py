"""Link incidents: capacity drops and closures on time windows.

Traffic-assignment practice treats disruptions -- an accident blocking a
lane, a bridge closure, roadworks -- as first-class scenario inputs.  A
:class:`LinkIncident` describes one such event on one edge:

* a *capacity drop* to a fraction ``capacity_factor`` of the original
  capacity.  The affected latency becomes ``l(x / capacity_factor)``, which
  for BPR road latencies is exactly a capacity rescale (BPR depends on flow
  only through ``flow / capacity``) and for every other monotone latency is
  the natural "congestion arrives sooner" semantics;
* a *closure* (``capacity_factor = 0``): the latency gains a prohibitive
  additive constant ``closure_penalty``, so the dynamics drain the link and
  the shortest-path oracle routes around it.  On a fixed path set a closure
  is *soft* (paths over the link stay in the strategy set, at prohibitive
  latency); under column generation the closure additionally invalidates the
  crossing columns and re-seeds detour routes the moment the incident starts
  (see :func:`repro.largescale.columns.simulate_with_column_generation`).

An :class:`IncidentPlan` composes any number of incidents, possibly
overlapping on the same edge (factors multiply, penalties add).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

EdgeKey = Tuple  # (u, v, key) triples, matching repro.wardrop.paths.EdgeKey

# The default additive latency of a closed link.  It only needs to dominate
# the instance's realistic latencies; scenario authors working in raw-minute
# units (TNTP) or toy units alike can override it per incident.
DEFAULT_CLOSURE_PENALTY = 1e3


@dataclass(frozen=True)
class LinkIncident:
    """One disruption on one edge over the half-open window ``[start, end)``.

    ``capacity_factor`` in ``(0, 1]`` scales the link capacity down for the
    duration; ``0`` closes the link outright (``closure_penalty`` is then the
    additive latency that makes it prohibitive).
    """

    edge: EdgeKey
    start: float
    end: float
    capacity_factor: float = 0.0
    closure_penalty: float = DEFAULT_CLOSURE_PENALTY

    def __post_init__(self) -> None:
        object.__setattr__(self, "edge", tuple(self.edge))
        if self.end <= self.start:
            raise ValueError("incident window must have positive length")
        if not 0.0 <= self.capacity_factor <= 1.0:
            raise ValueError("capacity_factor must lie in [0, 1] (0 closes the link)")
        if self.capacity_factor == 0.0 and self.closure_penalty <= 0:
            raise ValueError("a closure needs a positive closure_penalty")

    @property
    def closes(self) -> bool:
        return self.capacity_factor == 0.0

    def active_at(self, t: float) -> bool:
        return self.start <= t < self.end


class IncidentPlan:
    """A composition of link incidents, queried by time."""

    def __init__(self, incidents: Sequence[LinkIncident]):
        self.incidents: List[LinkIncident] = list(incidents)

    def __len__(self) -> int:
        return len(self.incidents)

    def edges(self) -> List[EdgeKey]:
        """Return the distinct edges any incident may touch."""
        seen: List[EdgeKey] = []
        for incident in self.incidents:
            if incident.edge not in seen:
                seen.append(incident.edge)
        return seen

    def breakpoints(self, start: float, end: float) -> List[float]:
        """Return incident start/end instants inside ``[start, end)``."""
        points = set()
        for incident in self.incidents:
            for t in (incident.start, incident.end):
                if start < t < end:
                    points.add(float(t))
        return sorted(points)

    def modulation_at(self, t: float) -> Dict[EdgeKey, Tuple[float, float, float]]:
        """Return ``{edge: (gain, stretch, offset)}`` of the active incidents.

        Overlapping capacity drops multiply their stretch factors; overlapping
        closures add their penalties.  Edges with no active incident are
        absent from the result.
        """
        effects: Dict[EdgeKey, Tuple[float, float, float]] = {}
        for incident in self.incidents:
            if not incident.active_at(t):
                continue
            gain, stretch, offset = effects.get(incident.edge, (1.0, 1.0, 0.0))
            if incident.closes:
                offset += incident.closure_penalty
            else:
                stretch *= 1.0 / incident.capacity_factor
            effects[incident.edge] = (gain, stretch, offset)
        return effects

    def closed_edges(self, t: float) -> FrozenSet[EdgeKey]:
        """Return the edges with an active *closure* at time ``t``."""
        return frozenset(
            incident.edge
            for incident in self.incidents
            if incident.closes and incident.active_at(t)
        )

    def __repr__(self) -> str:
        return f"IncidentPlan({self.incidents!r})"
