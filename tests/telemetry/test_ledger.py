"""The run ledger: fingerprints, automatic emission, loading."""

from __future__ import annotations

import json

import pytest

from repro.core import simulate, uniform_policy
from repro.instances import two_link_network
from repro.telemetry import telemetry_session
from repro.telemetry.bench import bench_timer, clear_records
from repro.telemetry.ledger import (
    LEDGER_ENV,
    LEDGER_SCHEMA,
    RUNS_FILENAME,
    config_fingerprint,
    ledger_dir,
    ledger_path,
    load_ledger,
    session_entries,
    set_ledger_dir,
)


@pytest.fixture(autouse=True)
def isolated_ledger(monkeypatch):
    monkeypatch.delenv(LEDGER_ENV, raising=False)
    previous = set_ledger_dir(None)
    clear_records()
    yield
    set_ledger_dir(previous)
    clear_records()


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = config_fingerprint({"engine": "fluid-scalar", "instance": "braess"})
        b = config_fingerprint({"instance": "braess", "engine": "fluid-scalar"})
        assert a == b
        assert len(a) == 12

    def test_measurement_fields_do_not_change_it(self):
        base = {"engine": "edge-fw", "instance": "sioux-falls", "method": "bfw"}
        fast = config_fingerprint({**base, "seconds": 1.0, "rate": 8.0, "gap": 1e-6})
        slow = config_fingerprint({**base, "seconds": 9.0, "rate": 0.9, "gap": 1e-2})
        assert fast == slow

    def test_config_fields_do_change_it(self):
        a = config_fingerprint({"engine": "edge-fw", "method": "fw"})
        b = config_fingerprint({"engine": "edge-fw", "method": "bfw"})
        assert a != b


class TestDirectoryResolution:
    def test_disabled_by_default(self):
        assert ledger_dir() is None
        assert ledger_path() is None

    def test_env_variable_enables(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path))
        assert ledger_dir() == tmp_path
        assert ledger_path() == tmp_path / RUNS_FILENAME

    def test_override_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env"))
        set_ledger_dir(tmp_path / "override")
        assert ledger_dir() == tmp_path / "override"


class TestSessionEmission:
    def test_engine_run_is_ledgered_with_phases_and_fingerprint(self, tmp_path):
        set_ledger_dir(tmp_path)
        network = two_link_network(beta=1.0)
        with telemetry_session():
            simulate(network, uniform_policy(network), update_period=0.1, horizon=1.0)
        entries = load_ledger(tmp_path)
        assert len(entries) == 1
        (entry,) = entries
        assert entry["schema"] == LEDGER_SCHEMA
        assert entry["kind"] == "engine_run"
        assert entry["engine"] == "fluid-scalar"
        assert entry["phases"] == 10
        assert entry["wall_seconds"] > 0
        assert len(entry["fingerprint"]) == 12
        assert entry["recorded_unix"] > 0

    def test_no_directory_means_no_write(self, tmp_path):
        network = two_link_network(beta=1.0)
        with telemetry_session():
            simulate(network, uniform_policy(network), update_period=0.1, horizon=1.0)
        assert not (tmp_path / RUNS_FILENAME).exists()

    def test_repeated_runs_share_a_fingerprint(self, tmp_path):
        set_ledger_dir(tmp_path)
        network = two_link_network(beta=1.0)
        for _ in range(2):
            with telemetry_session():
                simulate(
                    network, uniform_policy(network), update_period=0.1, horizon=1.0
                )
        entries = load_ledger(tmp_path)
        assert len(entries) == 2
        assert entries[0]["fingerprint"] == entries[1]["fingerprint"]

    def test_session_entries_empty_without_spans(self):
        with telemetry_session() as tele:
            pass
        assert session_entries(tele) == []


class TestBenchEmission:
    def test_bench_record_is_ledgered(self, tmp_path):
        set_ledger_dir(tmp_path)
        with bench_timer("bench_x", "warm", engine="fluid-batch", cases=4):
            pass
        entries = load_ledger(tmp_path)
        assert len(entries) == 1
        (entry,) = entries
        assert entry["kind"] == "bench"
        assert entry["bench"] == "bench_x"
        assert entry["engine"] == "fluid-batch"
        assert "fingerprint" in entry


class TestLoader:
    def test_loads_from_directory_or_file(self, tmp_path):
        set_ledger_dir(tmp_path)
        with bench_timer("bench_x", "warm"):
            pass
        by_dir = load_ledger(tmp_path)
        by_file = load_ledger(tmp_path / RUNS_FILENAME)
        assert by_dir == by_file

    def test_skips_foreign_and_broken_lines(self, tmp_path):
        path = tmp_path / RUNS_FILENAME
        with open(path, "w") as handle:
            handle.write(json.dumps({"schema": LEDGER_SCHEMA, "kind": "bench"}) + "\n")
            handle.write("not json\n")
            handle.write(json.dumps({"schema": "other/1"}) + "\n")
            handle.write("\n")
        assert len(load_ledger(path)) == 1
