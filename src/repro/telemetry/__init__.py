"""Telemetry: structured tracing, metrics and profiling hooks for every engine.

The subsystem is zero-dependency and off by default: engines fetch the
active session with :func:`get_telemetry`, which returns a shared no-op
object unless a :func:`telemetry_session` is active, so instrumented hot
paths cost nothing measurable when tracing is disabled and never change
numerical results either way.

* :mod:`~repro.telemetry.tracer` -- nested spans with wall time and
  attribute bags, plus the no-op :class:`NullTracer` default;
* :mod:`~repro.telemetry.metrics` -- the counter/gauge/histogram/series
  registry engines update at phase boundaries;
* :mod:`~repro.telemetry.runtime` -- the active-session plumbing
  (:func:`get_telemetry`, :func:`telemetry_session`) and JSONL export;
* :mod:`~repro.telemetry.report` -- renders a trace into per-engine /
  per-phase timing and throughput tables (the ``repro report`` command);
* :mod:`~repro.telemetry.bench` -- the unified machine-readable timing
  records of the benchmark harness (one schema, reused by CI);
* :mod:`~repro.telemetry.ledger` -- the persistent append-only run ledger
  capturing every engine run and bench record across processes;
* :mod:`~repro.telemetry.compare` -- cross-run regression comparison over
  traces, bench records and ledgers (the ``repro compare`` command);
* :mod:`~repro.telemetry.profiler` -- the opt-in wall-clock sampling
  profiler attributing time to span stacks and code locations.
"""

from .bench import BenchTimer, bench_timer, emit_record, load_records, render_throughput_matrix
from .compare import (
    CompareError,
    compare_bench_records,
    compare_traces,
    load_comparable,
    render_comparison_report,
)
from .ledger import (
    LEDGER_ENV,
    config_fingerprint,
    ledger_dir,
    load_ledger,
    record_bench,
    record_session,
    set_ledger_dir,
)
from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    Series,
)
from .profiler import SamplingProfiler, profile_rows
from .report import TraceFormatError, load_trace, render_trace_report
from .runtime import (
    NULL_TELEMETRY,
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BenchTimer",
    "bench_timer",
    "emit_record",
    "load_records",
    "render_throughput_matrix",
    "CompareError",
    "compare_bench_records",
    "compare_traces",
    "load_comparable",
    "render_comparison_report",
    "LEDGER_ENV",
    "config_fingerprint",
    "ledger_dir",
    "load_ledger",
    "record_bench",
    "record_session",
    "set_ledger_dir",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "SamplingProfiler",
    "profile_rows",
    "TraceFormatError",
    "load_trace",
    "render_trace_report",
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
