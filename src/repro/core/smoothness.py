"""Alpha-smoothness (Definition 2) and the safe update period of Lemma 4.

A migration rule ``mu`` is *alpha-smooth* if ``mu(l_P, l_Q) <= alpha *
(l_P - l_Q)`` whenever ``l_P >= l_Q``.  Lemma 4 / Corollary 5 of the paper
then guarantee convergence of the stale-information dynamics whenever the
bulletin board update period satisfies

    T <= T* = 1 / (4 * D * alpha * beta)

where ``D`` is the maximum path length and ``beta`` the maximum slope of the
latency functions.  This module provides

* an empirical alpha-smoothness verifier (samples latency pairs and measures
  the ratio ``mu / (l_P - l_Q)``),
* the safe-period computation for a network/policy pair,
* helpers to build the *largest* smooth policy for a prescribed update
  period (the "how much must I slow down?" question the paper answers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..wardrop.network import WardropNetwork
from .migration import MigrationRule, ScaledLinearMigration


@dataclass(frozen=True)
class SmoothnessCheck:
    """The result of empirically estimating a migration rule's smoothness.

    ``estimated_alpha`` is the largest observed ratio
    ``mu(l_P, l_Q) / (l_P - l_Q)``; ``is_smooth`` reports whether the ratio
    stayed bounded by ``claimed_alpha`` (when one was supplied).
    """

    estimated_alpha: float
    claimed_alpha: Optional[float]
    is_smooth: bool
    violations: int


def check_alpha_smoothness(
    rule: MigrationRule,
    max_latency: float,
    claimed_alpha: Optional[float] = None,
    samples: int = 400,
    seed: int = 0,
) -> SmoothnessCheck:
    """Empirically check Definition 2 for a migration rule.

    Latency pairs ``l_P > l_Q`` are sampled from ``[0, max_latency]``,
    including pairs with very small gaps where non-smooth rules (better
    response) blow up.  ``claimed_alpha`` defaults to the rule's own
    ``smoothness`` attribute.
    """
    if claimed_alpha is None:
        claimed_alpha = rule.smoothness
    rng = np.random.default_rng(seed)
    worst_ratio = 0.0
    violations = 0
    for _ in range(samples):
        low = float(rng.uniform(0.0, max_latency))
        # Bias gaps towards zero: smoothness is a statement about small gaps.
        gap = float(rng.uniform(0.0, max_latency - low)) * float(rng.uniform(0.0, 1.0) ** 3)
        gap = max(gap, 1e-12)
        high = min(max_latency, low + gap)
        probability = rule.probability(high, low)
        if probability < 0.0:
            violations += 1
            continue
        ratio = probability / (high - low) if high > low else 0.0
        worst_ratio = max(worst_ratio, ratio)
        if claimed_alpha is not None and probability > claimed_alpha * (high - low) + 1e-9:
            violations += 1
    is_smooth = claimed_alpha is not None and violations == 0
    return SmoothnessCheck(
        estimated_alpha=worst_ratio,
        claimed_alpha=claimed_alpha,
        is_smooth=is_smooth,
        violations=violations,
    )


def safe_update_period(network: WardropNetwork, alpha: float) -> float:
    """Return the Lemma 4 safe update period ``T* = 1/(4 D alpha beta)``.

    Networks whose latency functions are all constant have ``beta = 0``; then
    any update period is safe and the function returns ``inf``.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    depth = network.max_path_length()
    beta = network.max_slope()
    if beta <= 0:
        return float("inf")
    return 1.0 / (4.0 * depth * alpha * beta)


def safe_update_period_for_rule(network: WardropNetwork, rule: MigrationRule) -> float:
    """Return the safe update period for a rule with known smoothness.

    Raises ``ValueError`` for rules that are not alpha-smooth (better
    response) since no positive update period is safe for them.
    """
    alpha = rule.smoothness
    if alpha is None:
        raise ValueError(f"{rule.name} is not alpha-smooth; no safe update period exists")
    return safe_update_period(network, alpha)


def max_safe_alpha(network: WardropNetwork, update_period: float) -> float:
    """Return the largest smoothness parameter safe for a given update period.

    Inverts ``T* = 1/(4 D alpha beta)``: given the bulletin board refresh
    interval that the environment imposes, this is how aggressive the
    migration rule may be -- the "slow down by a factor depending on T and
    beta" message of the paper.
    """
    if update_period <= 0:
        raise ValueError("update period must be positive")
    depth = network.max_path_length()
    beta = network.max_slope()
    if beta <= 0:
        return float("inf")
    return 1.0 / (4.0 * depth * beta * update_period)


def migration_rule_for_period(network: WardropNetwork, update_period: float) -> ScaledLinearMigration:
    """Return the most aggressive scaled-linear rule safe for ``update_period``."""
    return ScaledLinearMigration(max_safe_alpha(network, update_period))
