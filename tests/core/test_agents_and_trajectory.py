"""Unit tests for the finite-agent simulator and the Trajectory container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AgentBasedSimulator,
    AgentSimulationConfig,
    Trajectory,
    replicator_policy,
    simulate,
    simulate_agents,
    uniform_policy,
)
from repro.core.agents import _largest_remainder
from repro.instances import lopsided_flow, two_link_network
from repro.wardrop import FlowVector


class TestLargestRemainder:
    def test_exact_split(self):
        assert list(_largest_remainder(np.array([0.5, 0.5]), 10)) == [5, 5]

    def test_total_preserved(self):
        counts = _largest_remainder(np.array([0.4, 0.35, 0.25]), 7)
        assert counts.sum() == 7

    def test_degenerate_weights(self):
        counts = _largest_remainder(np.array([0.0, 0.0]), 4)
        assert counts.sum() == 4


class TestAgentSimulation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            AgentSimulationConfig(num_agents=0)
        with pytest.raises(ValueError):
            AgentSimulationConfig(update_period=0.0)
        with pytest.raises(ValueError, match="record_interval"):
            AgentSimulationConfig(update_period=0.1, record_interval=0.01)

    def test_flow_conservation(self, two_links):
        policy = uniform_policy(two_links)
        trajectory = simulate_agents(
            two_links, policy, num_agents=100, update_period=0.2, horizon=3.0, seed=0
        )
        for point in trajectory.points:
            assert point.flow.values().sum() == pytest.approx(1.0, abs=1e-9)
            assert np.all(point.flow.values() >= -1e-12)

    def test_reproducible_with_seed(self, two_links):
        policy = uniform_policy(two_links)
        a = simulate_agents(two_links, policy, 100, 0.2, 2.0, seed=42)
        b = simulate_agents(two_links, policy, 100, 0.2, 2.0, seed=42)
        assert np.allclose(a.final_flow.values(), b.final_flow.values())

    def test_moves_towards_equilibrium(self, two_links_steep):
        policy = replicator_policy(two_links_steep)
        period = policy.safe_update_period(two_links_steep)
        start = lopsided_flow(two_links_steep, 0.95)
        trajectory = simulate_agents(
            two_links_steep, policy, num_agents=2000, update_period=period,
            horizon=30.0, initial_flow=start, seed=3,
        )
        final_gap = abs(trajectory.final_flow.values()[0] - 0.5)
        initial_gap = abs(start.values()[0] - 0.5)
        assert final_gap < initial_gap / 2

    def test_approaches_fluid_limit_as_population_grows(self, two_links_steep):
        policy = replicator_policy(two_links_steep)
        period = policy.safe_update_period(two_links_steep)
        start = lopsided_flow(two_links_steep, 0.9)
        horizon = 10.0
        fluid = simulate(
            two_links_steep, policy, update_period=period, horizon=horizon, initial_flow=start
        )
        errors = []
        for n in [50, 2000]:
            finite = simulate_agents(
                two_links_steep, policy, num_agents=n, update_period=period,
                horizon=horizon, initial_flow=start, seed=7,
            )
            errors.append(abs(finite.final_flow.values()[0] - fluid.final_flow.values()[0]))
        assert errors[1] < errors[0]

    def test_initial_assignment_matches_flow(self, two_links):
        policy = uniform_policy(two_links)
        config = AgentSimulationConfig(num_agents=10, update_period=0.5, horizon=0.1, seed=0)
        simulator = AgentBasedSimulator(two_links, policy, config)
        trajectory = simulator.run(FlowVector(two_links, [0.7, 0.3]))
        assert trajectory.initial_flow.values() == pytest.approx([0.7, 0.3], abs=1e-9)

    def test_fresh_information_mode_conserves_flow(self, two_links):
        policy = uniform_policy(two_links)
        trajectory = simulate_agents(
            two_links, policy, num_agents=80, update_period=0.2, horizon=3.0,
            seed=5, stale=False,
        )
        assert trajectory.update_period == 0.0
        for point in trajectory.points:
            assert point.flow.values().sum() == pytest.approx(1.0, abs=1e-9)

    def test_final_assignment_reproduces_final_flow(self, two_links):
        policy = uniform_policy(two_links)
        config = AgentSimulationConfig(num_agents=50, update_period=0.2, horizon=2.0, seed=9)
        simulator = AgentBasedSimulator(two_links, policy, config)
        trajectory = simulator.run()
        assignment = simulator.final_assignment
        assert assignment is not None and len(assignment) == 50
        counts = np.bincount(assignment, minlength=two_links.num_paths)
        np.testing.assert_allclose(
            counts / 50, trajectory.final_flow.values(), atol=1e-12
        )

    def test_record_interval_thins_points_but_not_phases(self, two_links):
        policy = uniform_policy(two_links)
        config = AgentSimulationConfig(
            num_agents=40, update_period=0.1, horizon=1.0, seed=1, record_interval=0.5
        )
        trajectory = AgentBasedSimulator(two_links, policy, config).run()
        # Initial point + one point per fifth phase (phases 5 and 10).
        assert len(trajectory.points) == 3
        assert len(trajectory.phases) == 10
        assert trajectory.points[-1].time == pytest.approx(1.0)


class TestTrajectory:
    def _trajectory(self, network) -> Trajectory:
        policy = uniform_policy(network)
        return simulate(
            network, policy, update_period=0.1, horizon=1.0,
            initial_flow=lopsided_flow(network, 0.9),
        )

    def test_basic_accessors(self, two_links):
        trajectory = self._trajectory(two_links)
        assert len(trajectory) == len(trajectory.points)
        assert trajectory.initial_flow.values()[0] == pytest.approx(0.9)
        assert trajectory.times[0] == 0.0
        assert trajectory.flow_matrix().shape == (len(trajectory), two_links.num_paths)

    def test_traces_have_consistent_length(self, two_links):
        trajectory = self._trajectory(two_links)
        n = len(trajectory)
        assert len(trajectory.potential_trace()) == n
        assert len(trajectory.average_latency_trace()) == n
        assert len(trajectory.max_used_latency_trace()) == n
        assert len(trajectory.unsatisfied_trace(0.1)) == n
        assert len(trajectory.weakly_unsatisfied_trace(0.1)) == n

    def test_sample_at_picks_nearest(self, two_links):
        trajectory = self._trajectory(two_links)
        point = trajectory.sample_at(0.52)
        assert point.time == pytest.approx(0.5, abs=0.06)

    def test_sample_at_empty_raises(self, two_links):
        empty = Trajectory(network=two_links)
        with pytest.raises(ValueError):
            empty.sample_at(0.0)

    def test_describe(self, two_links):
        trajectory = self._trajectory(two_links)
        text = trajectory.describe()
        assert "Trajectory" in text
        assert "phases" in text
        assert Trajectory(network=two_links).describe() == "Trajectory(empty)"
