"""Command-line interface for the reproduction library.

The CLI exposes the workflows a downstream user needs most often without
writing Python:

* ``list-instances`` -- show the registered example networks,
* ``describe``       -- print an instance's structure and theory constants
  (``D``, ``beta``, ``l_max``, the safe update period for the linear rule),
* ``solve``          -- compute the Wardrop equilibrium (``--method`` picks
  plain/conjugate/biconjugate Frank--Wolfe or projection gradient),
* ``simulate``       -- run a rerouting policy under bulletin-board staleness
  and report convergence / oscillation diagnostics,
* ``sweep``          -- run a whole update-period sweep through the batched
  experiment runner and export the result table,
* ``oscillate``      -- reproduce the Section 3.2 best-response oscillation
  for a chosen ``beta`` and update period,
* ``report``         -- render a telemetry trace (or benchmark records with
  ``--bench``) into per-engine timing and throughput tables, or solve an
  instance and print its network-level report with ``--network``,
* ``compare``        -- diff two observability artifacts (traces, bench
  records or run-ledger files) and flag regressions past a noise threshold.

``simulate`` and ``sweep`` accept ``--trace PATH`` (write the JSONL span
trace + metrics snapshot), ``--metrics`` (print the metrics table;
``sweep`` additionally merges the flattened metrics into the persisted
rows), ``--profile`` (run the wall-clock sampling profiler and print its
top self-time table) and ``--ledger DIR`` (append the run's engine records
to the persistent run ledger; ``REPRO_LEDGER_DIR`` sets the same default);
``sweep --progress`` streams per-case started/finished and batch-fusion
events to stderr as the runner works.

Examples::

    python -m repro.cli list-instances
    python -m repro.cli describe braess
    python -m repro.cli solve pigou-quadratic
    python -m repro.cli simulate two-links-steep --policy replicator --period auto
    python -m repro.cli simulate pigou-linear --method agents --agents 5000 --period 0.1
    python -m repro.cli sweep braess --policy uniform --periods 0.05,0.1,0.2 --csv out.csv
    python -m repro.cli sweep pigou-linear,pigou-quadratic --periods 0.1,0.2 --engine batch
    python -m repro.cli sweep sioux-falls --scenario sioux-falls-incident --trace out.jsonl
    python -m repro.cli solve sioux-falls --edge-flow --report
    python -m repro.cli report out.jsonl
    python -m repro.cli report bench-records.jsonl --bench
    python -m repro.cli report sioux-falls --network
    python -m repro.cli compare baseline.jsonl current.jsonl
    python -m repro.cli oscillate --beta 4 --period 0.5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    SweepCase,
    analyse_oscillation,
    convergence_row_builder,
    phase_start_latency_trace,
    print_table,
    run_sweep,
)
from .core import (
    better_response_policy,
    oscillation_amplitude,
    replicator_policy,
    simulate,
    simulate_agents,
    simulate_best_response,
    uniform_policy,
)
from .instances import available_instances, get_instance, oscillation_initial_flow, two_link_network
from .solvers import solve_wardrop_equilibrium
from .wardrop import FlowVector, equilibrium_violation, potential

POLICY_BUILDERS = {
    "uniform": uniform_policy,
    "replicator": replicator_policy,
    "better-response": lambda network: better_response_policy(),
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Adaptive routing with stale information' (Fischer & Vöcking).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser(
        "list-instances",
        help="list registered example networks (any command also accepts "
        "'tntp:<net_path>,<trips_path>' for an external TNTP file pair)",
    )

    describe = subparsers.add_parser("describe", help="describe an instance and its theory constants")
    describe.add_argument("instance", help="registered instance name")

    solve = subparsers.add_parser(
        "solve", help="compute the Wardrop equilibrium (FW/CFW/BFW/PG)"
    )
    solve.add_argument("instance", help="registered instance name")
    solve.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="duality-gap tolerance (default 1e-8 path-based; 1e-4 relative "
        "gap with --edge-flow)",
    )
    solve.add_argument(
        "--edge-flow",
        action="store_true",
        help="solve in edge-flow space via the shortest-path oracle (no path "
        "enumeration; the tolerance is then the relative duality gap "
        "TSTT/SPTT - 1) and report TSTT in raw TNTP units",
    )
    solve.add_argument(
        "--method",
        choices=["fw", "cfw", "bfw", "pg"],
        default="fw",
        help="solver method: fw (Frank--Wolfe, any space), cfw/bfw "
        "(conjugate/biconjugate FW, edge space -- implies --edge-flow), pg "
        "(path-based projection gradient, path space only)",
    )
    solve.add_argument(
        "--report",
        action="store_true",
        help="print the network-level report of the solved equilibrium: "
        "per-link volume and v/c ratio, per-OD costs, TSTT/SPTT summary",
    )

    run = subparsers.add_parser("simulate", help="simulate a rerouting policy under staleness")
    run.add_argument("instance", help="registered instance name")
    run.add_argument("--policy", choices=sorted(POLICY_BUILDERS), default="replicator")
    run.add_argument(
        "--period",
        default="auto",
        help="bulletin-board update period T, or 'auto' for the safe period 1/(4 D alpha beta)",
    )
    run.add_argument("--horizon", type=float, default=60.0, help="simulated time horizon")
    run.add_argument("--fresh", action="store_true", help="use up-to-date information instead")
    run.add_argument(
        "--method",
        choices=["rk4", "euler", "agents"],
        default="rk4",
        help="integration scheme, or 'agents' for the finite-population simulator",
    )
    run.add_argument(
        "--agents", type=int, default=1000, help="population size n for --method agents"
    )
    run.add_argument(
        "--seed", type=int, default=0, help="random seed for --method agents"
    )
    run.add_argument(
        "--column-generation",
        action="store_true",
        help="grow the route set by shortest-path column generation at every "
        "bulletin refresh instead of using the instance's enumerated paths "
        "(fluid methods only)",
    )
    run.add_argument(
        "--scenario",
        default=None,
        help="run under a named nonstationary scenario (see repro.scenarios: "
        "morning-peak, braess-closure, sioux-falls-incident, ...)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry trace of the run and write it to this JSONL "
        "file (render it with `repro report PATH`)",
    )
    run.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry metrics during the run and print them as a table",
    )
    run.add_argument(
        "--profile",
        action="store_true",
        help="sample the run with the wall-clock profiler and print the top "
        "self-time locations (samples are included in --trace output)",
    )
    run.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="append this run's engine records to the persistent run ledger "
        "in DIR (the REPRO_LEDGER_DIR environment variable sets the same "
        "default)",
    )

    sweep = subparsers.add_parser(
        "sweep", help="sweep the update period through the batched experiment runner"
    )
    sweep.add_argument(
        "instance",
        help="registered instance name, or a comma-separated list of names "
        "(same-topology instances fuse into one NetworkFamily batch)",
    )
    sweep.add_argument("--policy", choices=sorted(POLICY_BUILDERS), default="replicator")
    sweep.add_argument(
        "--periods",
        default="0.05,0.1,0.2,0.4",
        help="comma-separated bulletin-board update periods T",
    )
    sweep.add_argument("--horizon", type=float, default=30.0, help="simulated time horizon")
    sweep.add_argument("--delta", type=float, default=0.1, help="equilibrium latency slack delta")
    sweep.add_argument("--epsilon", type=float, default=0.1, help="unsatisfied volume target eps")
    sweep.add_argument(
        "--engine",
        choices=["auto", "batch", "processes", "serial"],
        default="auto",
        help="execution backend for the sweep cases",
    )
    sweep.add_argument("--processes", type=int, default=None, help="worker pool size")
    sweep.add_argument(
        "--method",
        choices=["rk4", "euler", "agents"],
        default="rk4",
        help="integration scheme, or 'agents' for the finite-population simulator",
    )
    sweep.add_argument(
        "--agents", type=int, default=1000, help="population size n for --method agents"
    )
    sweep.add_argument("--steps-per-phase", type=int, default=50, help="sub-steps per phase")
    sweep.add_argument("--fresh", action="store_true", help="use up-to-date information instead")
    sweep.add_argument(
        "--column-generation",
        action="store_true",
        help="run every case with shortest-path column generation (fluid "
        "methods only; same-network cases with equal periods fuse onto the "
        "batched CG driver, which unions open-mode discoveries -- use "
        "--engine serial for independent per-row route sets)",
    )
    sweep.add_argument(
        "--scenario",
        default=None,
        help="run every case under a named nonstationary scenario "
        "(same-topology scenario cases still fuse into one batch)",
    )
    sweep.add_argument("--csv", default=None, help="write the result rows to this CSV file")
    sweep.add_argument("--jsonl", default=None, help="write the result rows to this JSONL file")
    sweep.add_argument(
        "--include-seed",
        action="store_true",
        help="add each case's deterministic seed as a 'seed' column",
    )
    sweep.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="record a telemetry trace of the whole sweep and write it to "
        "this JSONL file (render it with `repro report PATH`)",
    )
    sweep.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry metrics, print them as a table and merge the "
        "flattened values into the persisted result rows (tele_* columns)",
    )
    sweep.add_argument(
        "--progress",
        action="store_true",
        help="stream per-case started/finished and batch-fusion events to "
        "stderr while the runner works",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help="sample the sweep with the wall-clock profiler and print the "
        "top self-time locations (samples are included in --trace output)",
    )
    sweep.add_argument(
        "--ledger",
        default=None,
        metavar="DIR",
        help="append the sweep's engine records to the persistent run ledger "
        "in DIR (the REPRO_LEDGER_DIR environment variable sets the same "
        "default)",
    )

    report = subparsers.add_parser(
        "report", help="render a telemetry trace or benchmark records file"
    )
    report.add_argument(
        "path",
        help="JSONL file: a telemetry trace (repro-trace/1, from --trace) or "
        "benchmark timing records (repro-bench/1, with --bench); with "
        "--network, a registered instance name instead",
    )
    report.add_argument(
        "--bench",
        action="store_true",
        help="treat the file as benchmark records and render the "
        "engine x instance throughput matrix",
    )
    report.add_argument(
        "--network",
        action="store_true",
        help="treat PATH as a registered instance name: solve its edge-flow "
        "equilibrium and print the network-level report (per-link v/c, "
        "per-OD costs, TSTT/SPTT summary)",
    )

    compare = subparsers.add_parser(
        "compare",
        help="compare two observability artifacts and flag regressions",
        description="Compare two JSONL observability artifacts -- telemetry "
        "traces (exclusive span self-times), benchmark records or run-ledger "
        "files (wall time per config fingerprint) -- and print a delta table "
        "with regression/improvement verdicts past a noise threshold.",
    )
    compare.add_argument(
        "path_a", help="baseline artifact: trace, bench-records or ledger JSONL"
    )
    compare.add_argument(
        "path_b", help="candidate artifact compared against the baseline"
    )
    compare.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="noise threshold for verdicts: slower than baseline x (1 + t) "
        "flags a regression, faster than x (1 - t) an improvement "
        "(default 0.15)",
    )
    compare.add_argument(
        "--bench",
        action="store_true",
        help="force bench-record comparison instead of auto-detecting",
    )
    compare.add_argument(
        "--trace",
        action="store_true",
        help="force trace comparison instead of auto-detecting",
    )
    compare.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit with status 1 when any regression is flagged (the "
        "default exit stays 0 so CI comparisons are non-blocking)",
    )

    oscillate = subparsers.add_parser(
        "oscillate", help="reproduce the Section 3.2 best-response oscillation"
    )
    oscillate.add_argument("--beta", type=float, default=4.0, help="latency slope beta")
    oscillate.add_argument("--period", type=float, default=0.5, help="update period T")
    oscillate.add_argument("--phases", type=int, default=30, help="number of update periods")
    return parser


def _cmd_list_instances() -> int:
    for name in available_instances():
        print(name)
    return 0


def _cmd_describe(instance: str) -> int:
    network = get_instance(instance)
    print(network.describe())
    policy = uniform_policy(network)
    print(f"  safe update period (linear rule) = {policy.safe_update_period(network):.6g}")
    return 0


def _cmd_solve(
    instance: str,
    tolerance: Optional[float],
    edge_flow: bool = False,
    method: str = "fw",
    report: bool = False,
) -> int:
    network = get_instance(instance)
    if method in ("cfw", "bfw"):
        edge_flow = True
    elif method == "pg" and edge_flow:
        print("error: --method pg is path-based; drop --edge-flow", file=sys.stderr)
        return 2
    if edge_flow:
        return _cmd_solve_edge_flow(
            instance, network, tolerance if tolerance is not None else 1e-4, method,
            report=report,
        )
    result = solve_wardrop_equilibrium(
        network, tolerance=tolerance if tolerance is not None else 1e-8, method=method
    )
    rows = [
        {
            "path": description,
            "flow": value,
            "latency": latency,
        }
        for description, value, latency in zip(
            network.paths.describe(), result.flow.values(), result.flow.path_latencies()
        )
    ]
    print_table(rows, title=f"Wardrop equilibrium of {instance} ({result.method})")
    print(f"potential = {result.potential_value:.6g}, duality gap = {result.duality_gap:.3g}, "
          f"iterations = {result.iterations}, converged = {result.converged}")
    if report:
        from .analysis.network_report import network_report

        print()
        print(network_report(network, flow=result.flow).render())
    return 0


def _cmd_solve_edge_flow(
    instance: str, network, tolerance: float, method: str = "fw", report: bool = False
) -> int:
    """Solve in edge-flow space (no path enumeration) and print raw-unit TSTT.

    The instance's latencies act on normalised flow shares, so the solver's
    TSTT/SPTT come back in (latency x share) units; multiplying by the raw
    total demand recorded by the TNTP loader recovers the literature's
    vehicle-minutes.  Instances without TNTP metadata have total demand 1 and
    the two unit systems coincide.
    """
    from .largescale import ShortestPathOracle
    from .solvers import solve_edge_flow_equilibrium

    oracle = ShortestPathOracle.for_network(network)
    result = solve_edge_flow_equilibrium(
        network, tolerance=tolerance, oracle=oracle, method=method
    )
    total = float(network.graph.graph.get("total_demand", 1.0))
    order = sorted(
        range(oracle.num_edges), key=lambda i: -result.edge_flows[i]
    )[:10]
    rows = [
        {
            "link": f"{oracle.edges[i][0]}->{oracle.edges[i][1]}",
            "flow (raw)": result.edge_flows[i] * total,
            "share": result.edge_flows[i],
            "latency": network.latency_function(oracle.edges[i]).value(result.edge_flows[i]),
        }
        for i in order
    ]
    print_table(
        rows,
        title=f"Edge-flow equilibrium of {instance} ({result.method}, 10 most loaded links)",
    )
    print(f"TSTT (raw TNTP units)  = {result.tstt * total:.6g}")
    print(f"SPTT (raw TNTP units)  = {result.sptt * total:.6g}")
    print(f"relative duality gap   = {result.relative_gap:.3g}")
    print(f"Beckmann potential     = {result.potential_value:.6g}")
    print(f"iterations = {result.iterations}, converged = {result.converged}")
    if report:
        from .analysis.network_report import network_report

        print()
        print(
            network_report(
                network, edge_flows=result.edge_flows, oracle=oracle
            ).render()
        )
    return 0


def _cmd_simulate(
    instance: str,
    policy_name: str,
    period: str,
    horizon: float,
    fresh: bool,
    method: str = "rk4",
    num_agents: int = 1000,
    seed: int = 0,
    column_generation: bool = False,
    scenario_name: Optional[str] = None,
    trace: Optional[str] = None,
    metrics: bool = False,
    profile: bool = False,
    ledger: Optional[str] = None,
) -> int:
    network = get_instance(instance)
    policy = POLICY_BUILDERS[policy_name](network)
    scenario = None
    if scenario_name is not None:
        from .scenarios import get_scenario

        try:
            scenario = get_scenario(scenario_name, network)
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if period == "auto":
        if policy.smoothness is None:
            print("error: --period auto needs an alpha-smooth policy", file=sys.stderr)
            return 2
        update_period = policy.safe_update_period(network)
    else:
        update_period = float(period)
        if update_period <= 0:
            print("error: --period must be positive", file=sys.stderr)
            return 2
    if column_generation and method == "agents":
        print("error: --column-generation supports fluid methods only", file=sys.stderr)
        return 2

    from contextlib import ExitStack

    stack = ExitStack()
    tele = None
    if ledger is not None:
        from .telemetry.ledger import set_ledger_dir

        # Restored after the session exits (LIFO), so the session's ledger
        # write still sees the override.
        stack.callback(set_ledger_dir, set_ledger_dir(ledger))
    if trace is not None or metrics or profile or ledger is not None:
        from .telemetry import telemetry_session

        tele = stack.enter_context(
            telemetry_session(trace_path=trace, profile=profile)
        )
    with stack:
        if column_generation:
            from .largescale import ActivePathSet, simulate_with_column_generation

            result = simulate_with_column_generation(
                ActivePathSet.from_network(network),
                POLICY_BUILDERS[policy_name],
                update_period=update_period,
                horizon=horizon,
                stale=not fresh,
                method=method,
                scenario=scenario,
            )
            trajectory = result.trajectory
            print(
                f"column generation: {result.network.num_paths} active paths "
                f"({result.total_columns_added} discovered over "
                f"{len(result.growth_events)} refreshes)"
            )
            if result.eviction_events:
                moved = sum(volume for _, volume in result.eviction_events)
                print(
                    f"closures: {len(result.eviction_events)} eviction(s), "
                    f"total flow volume moved off closed columns = {moved:.4g}"
                )
        else:
            start = FlowVector.single_path(network, {i: 0 for i in range(network.num_commodities)})
            start = start.blend(FlowVector.uniform(network), 0.05)
            if method == "agents":
                trajectory = simulate_agents(
                    network, policy, num_agents=num_agents, update_period=update_period,
                    horizon=horizon, initial_flow=start, seed=seed, stale=not fresh,
                    scenario=scenario,
                )
            else:
                trajectory = simulate(
                    network, policy, update_period=update_period, horizon=horizon,
                    initial_flow=start, stale=not fresh, method=method, scenario=scenario,
                )
    if metrics and tele is not None:
        print_table(tele.metrics.rows(), title="telemetry metrics")
    if profile and tele is not None and tele.profiler is not None:
        print_table(
            tele.profiler.rows(),
            title="sampling profiler (top self-time locations)",
        )
    if ledger is not None:
        print(f"ledgered run under {ledger}")
    if trace is not None:
        print(f"wrote trace {trace}")
    report = analyse_oscillation(trajectory)
    if scenario is not None:
        print(f"scenario: {scenario_name} ({scenario!r})")
    print(trajectory.describe())
    print(f"  update period T      = {update_period:.6g} ({'fresh info' if fresh else 'stale info'})")
    print(f"  final potential      = {potential(trajectory.final_flow):.6g}")
    print(f"  final eq. violation  = {equilibrium_violation(trajectory.final_flow):.6g}")
    print(f"  final avg latency    = {trajectory.final_flow.average_latency():.6g}")
    print(f"  tail oscillation     = {report.amplitude:.3g} "
          f"({'oscillating' if report.is_oscillating else 'settled'})")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import ExperimentPlan, run_plan

    names = [token.strip() for token in args.instance.split(",") if token.strip()]
    if not names:
        print("error: expected at least one instance name", file=sys.stderr)
        return 2
    networks = {name: get_instance(name) for name in names}
    policies = {name: POLICY_BUILDERS[args.policy](networks[name]) for name in names}
    try:
        periods = [float(token) for token in args.periods.split(",") if token.strip()]
    except ValueError:
        print("error: --periods must be a comma-separated list of numbers", file=sys.stderr)
        return 2
    if not periods or any(period <= 0 for period in periods):
        print("error: --periods must contain positive numbers", file=sys.stderr)
        return 2

    if args.column_generation and args.method == "agents":
        print("error: --column-generation supports fluid methods only", file=sys.stderr)
        return 2

    scenarios = {name: None for name in names}
    if args.scenario is not None:
        from .scenarios import get_scenario

        try:
            scenarios = {name: get_scenario(args.scenario, networks[name]) for name in names}
        except (KeyError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    def build_case(params, rng):
        name = params["instance"]
        parameters = {"instance": name, "T": params["update_period"]}
        if args.scenario is not None:
            parameters["scenario"] = args.scenario
        return SweepCase(
            parameters=parameters,
            network=networks[name],
            policy=policies[name],
            update_period=params["update_period"],
            horizon=args.horizon,
            stale=not args.fresh,
            steps_per_phase=args.steps_per_phase,
            method=args.method,
            num_agents=args.agents if args.method == "agents" else None,
            column_generation=args.column_generation,
            scenario=scenarios[name],
        )

    plan = ExperimentPlan.from_axes(
        f"sweep-{args.instance}-{args.policy}",
        build_case,
        instance=names,
        update_period=periods,
    )
    # Seed each case with its deterministic plan seed: the value persisted by
    # --include-seed is then exactly the seed the agent simulator ran with
    # (a row is reproduced by `simulate_agents(..., seed=<value>)` with the
    # sweep's uniform default start; note `repro simulate` uses a different,
    # lopsided starting flow).
    for case, seed in zip(plan.cases, plan.seeds):
        case.seed = seed
    convergence = convergence_row_builder(args.delta, args.epsilon)

    def build_row(trajectory):
        row = dict(convergence(trajectory))
        row["final_avg_latency"] = trajectory.final_flow.average_latency()
        row["final_potential"] = potential(trajectory.final_flow)
        return row

    use_telemetry = (
        args.trace is not None
        or args.metrics
        or args.progress
        or args.profile
        or args.ledger is not None
    )
    if use_telemetry:
        from contextlib import ExitStack

        from .telemetry import telemetry_session

        listener = None
        if args.progress:

            def listener(name, attrs):
                if name in ("case_started", "case_finished", "batch_fused", "pool_dispatched"):
                    detail = " ".join(f"{key}={value}" for key, value in attrs.items())
                    print(f"[{name}] {detail}".rstrip(), file=sys.stderr)

        # Persist after the session so --metrics columns reach the files.
        with ExitStack() as stack:
            if args.ledger is not None:
                from .telemetry.ledger import set_ledger_dir

                stack.callback(set_ledger_dir, set_ledger_dir(args.ledger))
            tele = stack.enter_context(
                telemetry_session(
                    trace_path=args.trace, progress=listener, profile=args.profile
                )
            )
            result = run_plan(
                plan,
                build_row,
                engine=args.engine,
                processes=args.processes,
                include_seed=args.include_seed,
            )
        if args.metrics:
            result.merge_metrics(tele.metrics.flatten())
        if args.csv:
            result.to_csv(args.csv)
        if args.jsonl:
            result.to_jsonl(args.jsonl)
    else:
        result = run_plan(
            plan,
            build_row,
            engine=args.engine,
            processes=args.processes,
            csv_path=args.csv,
            jsonl_path=args.jsonl,
            include_seed=args.include_seed,
        )
    print_table(
        result.rows,
        title=f"Sweep of {args.instance} ({args.policy}, "
        f"{'fresh' if args.fresh else 'stale'} info, {args.method}, engine={args.engine})",
    )
    if use_telemetry and args.metrics:
        print_table(tele.metrics.rows(), title="telemetry metrics")
    if use_telemetry and args.profile and tele.profiler is not None:
        print_table(
            tele.profiler.rows(),
            title="sampling profiler (top self-time locations)",
        )
    if args.ledger is not None:
        print(f"ledgered sweep under {args.ledger}")
    for path in (args.csv, args.jsonl, args.trace):
        if path:
            print(f"wrote {path}")
    return 0


def _cmd_report(path: str, bench: bool, network: bool = False) -> int:
    if bench and network:
        print("error: --bench and --network are mutually exclusive", file=sys.stderr)
        return 2
    if network:
        return _cmd_report_network(path)
    if bench:
        from .telemetry.bench import (
            gap_matrix_rows,
            load_records,
            render_gap_matrix,
            render_throughput_matrix,
        )

        try:
            records = load_records(path)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except ValueError as error:
            print(f"error: {path} is not a valid JSONL records file ({error})",
                  file=sys.stderr)
            return 2
        if not records:
            print(f"error: no repro-bench/1 records in {path}", file=sys.stderr)
            return 2
        print(render_throughput_matrix(records))
        if gap_matrix_rows(records):
            print()
            print(render_gap_matrix(records))
        return 0
    from .telemetry.report import TraceFormatError, load_trace, render_trace_report

    try:
        records = load_trace(path)
    except (OSError, TraceFormatError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(render_trace_report(records, title=path))
    return 0


def _cmd_report_network(instance: str, tolerance: float = 1e-4) -> int:
    """Solve an instance's edge-flow equilibrium and print its network report."""
    from .analysis.network_report import network_report
    from .largescale import ShortestPathOracle
    from .solvers import solve_edge_flow_equilibrium

    try:
        network = get_instance(instance)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    oracle = ShortestPathOracle.for_network(network)
    result = solve_edge_flow_equilibrium(network, tolerance=tolerance, oracle=oracle)
    print(
        network_report(network, edge_flows=result.edge_flows, oracle=oracle).render()
    )
    print(
        f"solved with {result.method} in {result.iterations} iterations "
        f"(converged = {result.converged})"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .telemetry.compare import (
        CompareError,
        compare_bench_records,
        compare_traces,
        comparison_summary,
        load_comparable,
        render_comparison_report,
    )

    if args.bench and args.trace:
        print("error: --bench and --trace are mutually exclusive", file=sys.stderr)
        return 2
    try:
        kind_a, records_a = load_comparable(args.path_a)
        kind_b, records_b = load_comparable(args.path_b)
    except CompareError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.bench:
        kind = "bench"
    elif args.trace:
        kind = "trace"
    elif kind_a != kind_b:
        print(
            f"error: cannot compare a {kind_a} file against a {kind_b} file "
            "(use --bench or --trace to force)",
            file=sys.stderr,
        )
        return 2
    else:
        kind = kind_a
    if kind == "bench":
        rows = compare_bench_records(records_a, records_b, threshold=args.threshold)
    else:
        rows = compare_traces(records_a, records_b, threshold=args.threshold)
    print(
        render_comparison_report(
            rows,
            kind,
            threshold=args.threshold,
            title=f"{args.path_a} vs {args.path_b}",
        )
    )
    if args.fail_on_regression and comparison_summary(rows)["regression"]:
        return 1
    return 0


def _cmd_oscillate(beta: float, period: float, phases: int) -> int:
    network = two_link_network(beta=beta)
    trajectory = simulate_best_response(
        network, update_period=period, horizon=phases * period,
        initial_flow=oscillation_initial_flow(network, period),
    )
    measured = phase_start_latency_trace(trajectory)
    print(f"two-link instance, beta={beta}, T={period}, {phases} phases of best response")
    print(f"  predicted phase-start latency X = {oscillation_amplitude(beta, period):.6g}")
    print(f"  measured  phase-start latency   = {float(measured.mean()):.6g}")
    report = analyse_oscillation(trajectory)
    print(f"  oscillation period (phases)     = {report.period_phases}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list-instances":
        return _cmd_list_instances()
    if args.command == "describe":
        return _cmd_describe(args.instance)
    if args.command == "solve":
        return _cmd_solve(
            args.instance, args.tolerance, args.edge_flow, args.method, args.report
        )
    if args.command == "simulate":
        return _cmd_simulate(
            args.instance, args.policy, args.period, args.horizon, args.fresh,
            args.method, args.agents, args.seed, args.column_generation,
            args.scenario, args.trace, args.metrics, args.profile, args.ledger,
        )
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "report":
        return _cmd_report(args.path, args.bench, args.network)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "oscillate":
        return _cmd_oscillate(args.beta, args.period, args.phases)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
