"""Schedules: profile semantics, breakpoints and the at/at_batch contract."""

import numpy as np
import pytest

from repro.scenarios import (
    ConstantSchedule,
    CoefficientSchedule,
    DemandSchedule,
    PeriodicSchedule,
    PiecewiseConstantSchedule,
    PiecewiseLinearSchedule,
    peak_schedule,
)

GRID = np.linspace(0.0, 3.0, 61)


class TestPiecewiseConstant:
    def test_step_values(self):
        schedule = PiecewiseConstantSchedule([1.0, 2.0], [1.0, 1.5, 0.5])
        assert schedule.at(0.0) == 1.0
        assert schedule.at(0.999) == 1.0
        assert schedule.at(1.0) == 1.5  # steps are left-closed
        assert schedule.at(1.999) == 1.5
        assert schedule.at(2.0) == 0.5
        assert schedule.at(10.0) == 0.5

    def test_breakpoints_exclude_interval_start(self):
        schedule = PiecewiseConstantSchedule([1.0, 2.0], [1.0, 1.5, 0.5])
        assert schedule.breakpoints(0.0, 3.0) == [1.0, 2.0]
        assert schedule.breakpoints(1.0, 3.0) == [2.0]
        assert schedule.breakpoints(2.5, 3.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseConstantSchedule([1.0, 1.0], [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            PiecewiseConstantSchedule([1.0], [1.0])
        with pytest.raises(ValueError):
            PiecewiseConstantSchedule([1.0], [1.0, -0.5])


class TestPiecewiseLinear:
    def test_interpolates_and_clamps(self):
        schedule = PiecewiseLinearSchedule([1.0, 2.0], [1.0, 2.0])
        assert schedule.at(0.0) == 1.0  # clamped left
        assert schedule.at(1.5) == pytest.approx(1.5)
        assert schedule.at(3.0) == 2.0  # clamped right

    def test_constant_detection(self):
        assert PiecewiseLinearSchedule([0.0, 1.0], [2.0, 2.0]).is_constant()
        assert not PiecewiseLinearSchedule([0.0, 1.0], [2.0, 3.0]).is_constant()


class TestPeriodic:
    def test_wraps_profile(self):
        profile = PiecewiseConstantSchedule([0.5], [1.0, 2.0])
        schedule = PeriodicSchedule(profile, period=1.0)
        assert schedule.at(0.25) == 1.0
        assert schedule.at(0.75) == 2.0
        assert schedule.at(1.25) == 1.0
        assert schedule.at(1.75) == 2.0

    def test_breakpoints_tile_across_cycles(self):
        profile = PiecewiseConstantSchedule([0.5], [1.0, 2.0])
        schedule = PeriodicSchedule(profile, period=1.0)
        assert schedule.breakpoints(0.0, 2.0) == [0.5, 1.0, 1.5]


class TestPeak:
    def test_trapezoid_shape(self):
        schedule = peak_schedule(base=1.0, peak=1.5, start=5.0, end=15.0, ramp=5.0)
        assert schedule.at(0.0) == 1.0
        assert schedule.at(7.5) == pytest.approx(1.25)
        assert schedule.at(12.0) == 1.5
        assert schedule.at(17.5) == pytest.approx(1.25)
        assert schedule.at(25.0) == 1.0


class TestBatchContract:
    @pytest.mark.parametrize(
        "schedule",
        [
            ConstantSchedule(1.3),
            PiecewiseConstantSchedule([0.7, 1.9], [1.0, 1.4, 0.8]),
            PiecewiseLinearSchedule([0.0, 1.0, 2.5], [1.0, 2.0, 0.5]),
            PeriodicSchedule(PiecewiseLinearSchedule([0.0, 0.5, 1.0], [1.0, 2.0, 1.0]), 1.0),
            peak_schedule(1.0, 1.6, 0.5, 1.5, 0.25),
        ],
    )
    def test_at_equals_at_batch(self, schedule):
        batch = schedule.at_batch(GRID)
        scalars = np.array([schedule.at(t) for t in GRID])
        # `at` delegates to `at_batch`, so the agreement is bitwise.
        np.testing.assert_array_equal(batch, scalars)


class TestWrappers:
    def test_demand_schedule_rejects_zero(self):
        demand = DemandSchedule(PiecewiseConstantSchedule([1.0], [1.0, 0.0]))
        assert demand.multiplier_at(0.5) == 1.0
        with pytest.raises(ValueError):
            demand.multiplier_at(1.5)

    def test_coefficient_schedule_scopes_edges(self):
        everywhere = CoefficientSchedule(ConstantSchedule(2.0))
        assert everywhere.edges is None
        scoped = CoefficientSchedule(ConstantSchedule(2.0), edges=[("a", "b", 0)])
        assert scoped.edges == [("a", "b", 0)]
        assert scoped.gain_at(0.0) == 2.0
