"""Wardrop equilibria and the paper's approximate-equilibrium notions.

Definition 1 of the paper: a feasible flow ``f`` is a *Wardrop equilibrium*
iff for every commodity ``i`` and every pair of paths ``P, P' in P_i`` with
``f_P > 0`` it holds that ``l_P(f) <= l_{P'}(f)`` -- no used path is worse
than any alternative.

Because the adaptive dynamics never reaches an exact equilibrium in finite
time, the paper relaxes the notion in two ways (Definitions 3 and 4):

* ``(delta, eps)``-equilibrium -- the volume of agents whose latency exceeds
  the *minimum* latency of their commodity by more than ``delta`` is at most
  ``eps``;
* weak ``(delta, eps)``-equilibrium -- as above but measured against the
  *average* latency ``L_i`` of the commodity.

Every ``(delta, eps)``-equilibrium is also a weak one.  This module
implements exact and approximate predicates plus the "unsatisfied volume"
measurements the convergence-time benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .flow import FlowVector


def is_wardrop_equilibrium(flow: FlowVector, tolerance: float = 1e-6) -> bool:
    """Return ``True`` if ``flow`` is a Wardrop equilibrium up to ``tolerance``.

    The check applies Definition 1 commodity by commodity: every path
    carrying more than ``tolerance`` flow must have latency within
    ``tolerance`` of the commodity's minimum path latency.
    """
    return equilibrium_violation(flow) <= tolerance


def equilibrium_violation(flow: FlowVector) -> float:
    """Return the largest gap ``l_P - l^i_min`` over used paths.

    Zero exactly at Wardrop equilibria; continuous in the flow, which makes
    it a convenient convergence measure for tests.
    """
    network = flow.network
    latencies = flow.path_latencies()
    flows = flow.values()
    worst = 0.0
    for i in range(network.num_commodities):
        indices = list(network.paths.commodity_indices(i))
        commodity_latencies = latencies[indices]
        minimum = commodity_latencies.min()
        used = flows[indices] > 1e-9
        if used.any():
            worst = max(worst, float((commodity_latencies[used] - minimum).max()))
    return worst


def unsatisfied_volume(flow: FlowVector, delta: float) -> float:
    """Return the volume of ``delta``-unsatisfied agents (Definition 3).

    An agent on path ``P`` of commodity ``i`` is ``delta``-unsatisfied iff
    ``l_P(f) > l^i_min + delta``; the function sums the flow on all such
    paths.
    """
    network = flow.network
    latencies = flow.path_latencies()
    flows = flow.values()
    volume = 0.0
    for i in range(network.num_commodities):
        indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
        commodity_latencies = latencies[indices]
        minimum = commodity_latencies.min()
        unsatisfied = commodity_latencies > minimum + delta
        volume += float(flows[indices][unsatisfied].sum())
    return volume


def weakly_unsatisfied_volume(flow: FlowVector, delta: float) -> float:
    """Return the volume of weakly ``delta``-unsatisfied agents (Definition 4).

    Agents are weakly ``delta``-unsatisfied iff their path latency exceeds
    the *average* latency ``L_i`` of their commodity by more than ``delta``.
    """
    network = flow.network
    latencies = flow.path_latencies()
    flows = flow.values()
    volume = 0.0
    for i in range(network.num_commodities):
        indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
        commodity_latencies = latencies[indices]
        demand = network.commodities[i].demand
        average = float(np.dot(flows[indices], commodity_latencies) / demand)
        unsatisfied = commodity_latencies > average + delta
        volume += float(flows[indices][unsatisfied].sum())
    return volume


def is_approximate_equilibrium(flow: FlowVector, delta: float, eps: float) -> bool:
    """Return ``True`` iff ``flow`` is at a ``(delta, eps)``-equilibrium."""
    return unsatisfied_volume(flow, delta) <= eps


def is_weak_approximate_equilibrium(flow: FlowVector, delta: float, eps: float) -> bool:
    """Return ``True`` iff ``flow`` is at a weak ``(delta, eps)``-equilibrium."""
    return weakly_unsatisfied_volume(flow, delta) <= eps


@dataclass(frozen=True)
class EquilibriumReport:
    """A summary of how close a flow is to Wardrop equilibrium."""

    violation: float
    unsatisfied: float
    weakly_unsatisfied: float
    average_latency: float
    max_used_latency: float
    delta: float

    def describe(self) -> str:
        return (
            f"violation={self.violation:.4g}, "
            f"unsatisfied(delta={self.delta})={self.unsatisfied:.4g}, "
            f"weakly={self.weakly_unsatisfied:.4g}, "
            f"L={self.average_latency:.4g}, max_used={self.max_used_latency:.4g}"
        )


def report(flow: FlowVector, delta: float = 0.0) -> EquilibriumReport:
    """Return an :class:`EquilibriumReport` for the given flow."""
    return EquilibriumReport(
        violation=equilibrium_violation(flow),
        unsatisfied=unsatisfied_volume(flow, delta),
        weakly_unsatisfied=weakly_unsatisfied_volume(flow, delta),
        average_latency=flow.average_latency(),
        max_used_latency=flow.max_used_latency(),
        delta=delta,
    )


def support(flow: FlowVector, threshold: float = 1e-9) -> List[int]:
    """Return the indices of paths carrying more than ``threshold`` flow."""
    return [int(i) for i in np.nonzero(flow.values() > threshold)[0]]
