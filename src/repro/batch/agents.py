"""The batched finite-population agent engine.

:class:`BatchAgentSimulator` runs ``B`` independent finite-``n`` replicas of
the discrete-event agent simulation (:mod:`repro.core.agents`) as one
vectorised ensemble.  Replicas may differ in population size, update period,
horizon and seed, and may route on one shared network or on the members of a
:class:`~repro.wardrop.family.NetworkFamily`; the agent populations of all
rows live in one flat array (row ``r`` owns the slice
``offsets[r]:offsets[r+1]``), so a whole ``n``-sweep -- the paper's
finite-``n`` versus fluid-limit comparison, benchmark E9 -- becomes a single
batched call.

Correctness contract
--------------------
Row ``r`` is **bit-identical** to a standalone
:class:`~repro.core.agents.AgentBasedSimulator` run with the same network
(family member), policy, population size, update period, horizon and seed:
every row owns its own ``numpy`` generator seeded with its own seed and the
engine issues exactly the scalar simulator's per-phase block draws (Poisson
activation count, activated agents, sampling uniforms, migration coins) in
the same order, then applies the shared kernels of
:mod:`repro.core.agents` as stacked array operations.  Under stale
information, activations inside a phase are replayed grouped by their
*occurrence rank* per agent: an agent's own activations stay in clock order
while different agents -- which cannot interact within a frozen phase -- are
processed together.  Under up-to-date information rows advance event by
event in lockstep (row ``r``'s ``j``-th activation sees exactly the live
state its scalar run would see).  The equivalence is enforced by
``tests/batch/test_agent_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..core.agents import (
    DEFAULT_NUM_AGENTS,
    build_population,
    planned_phase_counts,
    sampling_layout,
    sampling_tables,
)
from ..core.trajectory import PhaseRecord, Trajectory
from ..telemetry.runtime import get_telemetry
from ..wardrop.family import NetworkFamily
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .board import BatchBulletinBoard
from .engine import BatchEnsembleBase, BatchStoppingCondition, Networks, Policies


@dataclass
class BatchAgentConfig:
    """Configuration of a batched agent run; per-row fields broadcast from scalars.

    Attributes
    ----------
    num_agents:
        Scalar or shape ``(B,)`` -- each row's population size ``n_r``.
    update_periods:
        Scalar or shape ``(B,)`` -- bulletin-board period ``T_r`` per row.
    horizons:
        Scalar or shape ``(B,)`` -- total simulated time per row.
    seeds:
        Scalar or shape ``(B,)`` -- the per-row generator seeds (row ``r``
        reproduces a standalone scalar run with seed ``seeds[r]``).
    stale:
        Shared information model: ``True`` for bulletin-board snapshots,
        ``False`` for live information at every activation.

    The batch size ``B`` is the broadcast length of the four per-row fields,
    so e.g. ``num_agents=10_000, seeds=range(32)`` runs 32 equally sized
    replicas with distinct seeds.
    """

    num_agents: Union[int, np.ndarray] = DEFAULT_NUM_AGENTS
    update_periods: Union[float, np.ndarray] = 0.1
    horizons: Union[float, np.ndarray] = 50.0
    seeds: Union[int, np.ndarray] = 0
    stale: bool = True

    def __post_init__(self) -> None:
        num_agents = np.atleast_1d(np.asarray(self.num_agents, dtype=np.int64))
        seeds = np.asarray(self.seeds)
        shape = np.broadcast_shapes(
            num_agents.shape,
            np.shape(self.update_periods),
            np.shape(self.horizons),
            seeds.shape,
        )
        self.num_agents = np.broadcast_to(num_agents, shape).copy()
        self.update_periods = np.broadcast_to(
            np.asarray(self.update_periods, dtype=float), shape
        ).copy()
        self.horizons = np.broadcast_to(np.asarray(self.horizons, dtype=float), shape).copy()
        self.seeds = np.broadcast_to(seeds.astype(np.int64), shape).copy()
        if np.any(self.num_agents < 1):
            raise ValueError("every row needs at least one agent")
        if np.any(self.update_periods <= 0) or np.any(self.horizons <= 0):
            raise ValueError("update periods and horizons must be positive")

    @property
    def batch_size(self) -> int:
        return len(self.num_agents)


@dataclass
class BatchAgentResult:
    """The recorded phase-boundary states of a batched agent run.

    ``times[r, k]`` / ``flows[r, k]`` hold row ``r``'s ``k``-th sample
    (``k = 0`` is the initial realised flow, then one sample per phase);
    only the first ``num_points[r]`` slots are valid.  ``assignments[r]``
    is row ``r``'s final agent-to-path assignment, bit-identical to the
    scalar simulator's ``final_assignment``.  ``stop_phases[r]`` is the
    phase whose boundary fired row ``r``'s ``stop_when`` condition (−1 if
    it never fired), matching the scalar early-exit phase exactly.
    """

    network: WardropNetwork
    policy_names: List[str]
    num_agents: np.ndarray
    update_periods: np.ndarray
    horizons: np.ndarray
    seeds: np.ndarray
    stale: bool
    times: np.ndarray
    flows: np.ndarray
    num_points: np.ndarray
    assignments: List[np.ndarray]
    family: Optional[NetworkFamily] = None
    stop_phases: Optional[np.ndarray] = None

    def stopped_rows(self) -> np.ndarray:
        """Return the boolean mask of rows frozen by ``stop_when``."""
        if self.stop_phases is None:
            return np.zeros(self.batch_size, dtype=bool)
        return self.stop_phases >= 0

    @property
    def batch_size(self) -> int:
        return len(self.num_agents)

    def __len__(self) -> int:
        return self.batch_size

    def row_network(self, row: int) -> WardropNetwork:
        """Return the network row ``row`` routed on (its family member)."""
        if self.family is not None:
            return self.family.member(row)
        return self.network

    def num_phases(self, row: int) -> int:
        """Return the number of completed bulletin-board phases of one row."""
        return int(self.num_points[row]) - 1

    def final_flows(self) -> np.ndarray:
        """Return the ``(B, P)`` array of final realised flows."""
        rows = np.arange(self.batch_size)
        return self.flows[rows, self.num_points - 1].copy()

    def final_flow(self, row: int) -> FlowVector:
        """Return one row's final realised flow as a :class:`FlowVector`."""
        return FlowVector(
            self.row_network(row),
            self.flows[row, self.num_points[row] - 1],
            validate=False,
        )

    def flow_matrix(self, row: int) -> np.ndarray:
        """Return one row's ``(samples, P)`` matrix of recorded flows."""
        return self.flows[row, : self.num_points[row]].copy()

    def trajectory(self, row: int) -> Trajectory:
        """Materialise one row as a scalar :class:`Trajectory`.

        The result has the same points, phase records and metadata as the
        standalone scalar agent run of that row's configuration, so the
        analysis toolkit applies unchanged.
        """
        network = self.row_network(row)
        count = int(self.num_points[row])
        trajectory = Trajectory(
            network=network,
            policy_name=self.policy_names[row],
            update_period=float(self.update_periods[row]) if self.stale else 0.0,
        )
        vectors = [
            FlowVector(network, self.flows[row, k], validate=False) for k in range(count)
        ]
        for k in range(count):
            trajectory.record(float(self.times[row, k]), vectors[k], max(k - 1, 0))
        for p in range(count - 1):
            trajectory.record_phase(
                PhaseRecord(
                    index=p,
                    start_time=float(self.times[row, p]),
                    end_time=float(self.times[row, p + 1]),
                    start_flow=vectors[p],
                    end_flow=vectors[p + 1],
                )
            )
        return trajectory

    def trajectories(self) -> List[Trajectory]:
        """Materialise every row (convenience for small batches)."""
        return [self.trajectory(row) for row in range(self.batch_size)]


def _occurrence_ranks(keys: np.ndarray) -> np.ndarray:
    """Return, per element, its rank among equal keys (original order kept).

    Used to split one phase's activations into conflict-free rounds: rank
    ``r`` holds each agent's ``r``-th activation, so every round touches
    each agent at most once while preserving the agent's own clock order.
    """
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    positions = np.arange(len(keys))
    new_group = np.empty(len(keys), dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    group_starts = np.maximum.accumulate(np.where(new_group, positions, 0))
    ranks = np.empty(len(keys), dtype=np.int64)
    ranks[order] = positions - group_starts
    return ranks


class BatchAgentSimulator(BatchEnsembleBase):
    """Runs ``B`` finite-population replicas as one vectorised ensemble.

    Parameters
    ----------
    network:
        The shared :class:`WardropNetwork`, or a
        :class:`~repro.wardrop.family.NetworkFamily` whose size equals the
        batch size (row ``r`` routes on member ``r``).
    policies:
        One :class:`ReroutingPolicy` for every row (fully vectorised sigma/mu
        kernels) or a sequence of ``B`` policies (sampling and migration
        matrices are then assembled row by row -- the fallback that keeps
        custom policies working).
    config:
        The :class:`BatchAgentConfig` with per-row populations, periods,
        horizons and seeds.
    """

    def __init__(self, network: Networks, policies: Policies, config: BatchAgentConfig):
        super().__init__(network, policies, config.batch_size)
        self.config = config

    # Main loop --------------------------------------------------------------

    def run(
        self,
        initial_flows=None,
        stop_when: Optional[BatchStoppingCondition] = None,
    ) -> BatchAgentResult:
        """Simulate every replica to its horizon and return the batch result.

        ``initial_flows`` may be ``None`` (uniform split for every row), a
        single :class:`FlowVector` (shared start), a sequence of ``B`` flow
        vectors or a raw ``(B, P)`` array; each row's agent population is
        built from its target flow with the scalar simulator's
        largest-remainder rounding.

        ``stop_when(times, flows, rows)`` is the vectorised per-row stopping
        mask, evaluated at every phase boundary on the realised flows --
        mirroring the fluid engine's freezing semantics: a row whose
        condition fires records the triggering phase and then drops out of
        the active sub-batch, issuing no further generator draws (exactly
        like a scalar run that breaks out of its phase loop).
        """
        config = self.config
        network = self.network
        batch = config.batch_size
        num_paths = network.num_paths
        periods = config.update_periods
        horizons = config.horizons
        populations = config.num_agents
        layout = sampling_layout(network)
        member_paths = layout.member_paths

        # Flat agent layout: row r owns agents offsets[r]:offsets[r+1].
        offsets = np.zeros(batch + 1, dtype=np.int64)
        np.cumsum(populations, out=offsets[1:])
        total_agents = int(offsets[-1])
        assignment = np.empty(total_agents, dtype=np.int64)
        weights = np.empty(total_agents, dtype=float)
        initial_values = self._initial_flows(initial_flows)
        for row in range(batch):
            row_assignment, row_weights = build_population(
                network, int(populations[row]), initial_values[row]
            )
            assignment[offsets[row] : offsets[row + 1]] = row_assignment
            weights[offsets[row] : offsets[row + 1]] = row_weights
        agent_row = np.repeat(np.arange(batch), populations)
        row_key_base = agent_row * num_paths
        rngs = [np.random.default_rng(int(seed)) for seed in config.seeds]
        tele = get_telemetry()
        run_span = tele.span(
            "engine_run",
            engine="agents-batch",
            instance=network.graph.graph.get("name") or "-",
            stale=config.stale,
            rows=batch,
            agents=total_agents,
            paths=num_paths,
        )
        events_counter = tele.counter("agents_batch.events")
        phases_counter = tele.counter("agents_batch.phases_integrated")
        frozen_counter = tele.counter("agents_batch.rows_frozen_by_stop_when")
        refresh_counter = tele.counter("agents_batch.bulletin_refreshes")

        def realised_flows(rows: Optional[np.ndarray] = None) -> np.ndarray:
            """Realised flows from the assignment, restricted to ``rows``.

            Restricting the bincount to the active rows' agent slices keeps
            heterogeneous-horizon sweeps from re-counting frozen populations;
            each row's buckets are summed in the same agent order either way,
            so the restriction is bit-neutral.
            """
            if rows is None or len(rows) == batch:
                span = slice(None)
            else:
                span = np.concatenate(
                    [np.arange(offsets[row], offsets[row + 1]) for row in rows]
                )
            keys = row_key_base[span] + assignment[span]
            return np.bincount(
                keys, weights=weights[span], minlength=batch * num_paths
            ).reshape(batch, num_paths)

        # The scalar simulator's phase grid, row by row (shared helper: part
        # of the bit-equivalence contract).
        planned_phases = planned_phase_counts(horizons, periods)
        max_phases = int(planned_phases.max())
        times = np.zeros((batch, max_phases + 1))
        recorded = np.zeros((batch, max_phases + 1, num_paths))
        flows = realised_flows()
        recorded[:, 0] = flows
        num_points = np.ones(batch, dtype=int)
        stop_phases = np.full(batch, -1, dtype=int)

        board: Optional[BatchBulletinBoard] = None
        flows_live = np.empty(0)
        if config.stale:
            board = BatchBulletinBoard(self.family or network, periods)
            board.post_rows(0.0, flows)
        else:
            # Only the fresh-information kernel reads the live flows.
            flows_live = flows.copy()

        for phase in range(max_phases):
            starts = phase * periods
            active = (phase < planned_phases) & (stop_phases < 0)
            if not active.any():
                break
            rows = np.flatnonzero(active)
            ends = np.minimum((phase + 1) * periods, horizons)
            durations = ends - starts

            if config.stale and phase > 0:
                board.post_rows(starts, flows, mask=active)
                tele.event("bulletin_refresh", rows=len(rows))
                refresh_counter.add(len(rows))

            # Per-row block draws, exactly the scalar simulator's schedule.
            counts = np.empty(len(rows), dtype=np.int64)
            agent_chunks: List[np.ndarray] = []
            sample_chunks: List[np.ndarray] = []
            migrate_chunks: List[np.ndarray] = []
            for i, row in enumerate(rows):
                rng = rngs[row]
                population = int(populations[row])
                count = int(rng.poisson(population * durations[row]))
                counts[i] = count
                agent_chunks.append(rng.integers(population, size=count))
                sample_chunks.append(rng.random(count))
                migrate_chunks.append(rng.random(count))
            phase_span = tele.span(
                "phase",
                index=phase,
                active_rows=len(rows),
                activations=int(counts.sum()),
            )
            events_counter.add(int(counts.sum()))

            if config.stale:
                with tele.span("field_eval", active_rows=len(rows)):
                    sigma, mu = self._policy_tables(
                        board.posted_flows[rows], board.posted_path_latencies[rows], rows
                    )
                    cdf, valid = sampling_tables(sigma, layout)
                self._apply_stale_phase(
                    assignment,
                    offsets,
                    rows,
                    counts,
                    agent_chunks,
                    sample_chunks,
                    migrate_chunks,
                    cdf,
                    valid,
                    mu,
                    member_paths,
                )
            else:
                self._apply_fresh_phase(
                    assignment,
                    weights,
                    flows_live,
                    offsets,
                    rows,
                    counts,
                    agent_chunks,
                    sample_chunks,
                    migrate_chunks,
                    layout,
                )

            partial = realised_flows(rows)
            flows[rows] = partial[rows]
            if not config.stale:
                flows_live[rows] = flows[rows]
            times[rows, phase + 1] = ends[rows]
            recorded[rows, phase + 1] = flows[rows]
            num_points[rows] += 1
            phases_counter.add(len(rows))

            if stop_when is not None:
                hit = np.asarray(stop_when(ends[rows], flows[rows], rows), dtype=bool)
                if hit.shape != rows.shape:
                    raise ValueError(
                        f"stop_when returned shape {hit.shape}, expected {rows.shape}"
                    )
                stop_phases[rows[hit]] = phase
                if hit.any():
                    tele.event("stop_when_fired", phase=phase, rows=int(hit.sum()))
                    frozen_counter.add(int(hit.sum()))
            phase_span.close()

        run_span.annotate(phases_integrated=int((num_points - 1).sum()))
        run_span.close()
        tele.counter("agents_batch.runs").add()
        labels = [
            f"{policy.label()} (n={int(populations[row])})"
            for row, policy in enumerate(self._policies)
        ]
        assignments = [
            assignment[offsets[row] : offsets[row + 1]].copy() for row in range(batch)
        ]
        return BatchAgentResult(
            network=network,
            policy_names=labels,
            num_agents=populations.copy(),
            update_periods=periods.copy(),
            horizons=horizons.copy(),
            seeds=config.seeds.copy(),
            stale=config.stale,
            times=times,
            flows=recorded,
            num_points=num_points,
            assignments=assignments,
            family=self.family,
            stop_phases=stop_phases,
        )

    # Phase kernels ----------------------------------------------------------

    def _apply_stale_phase(
        self,
        assignment: np.ndarray,
        offsets: np.ndarray,
        rows: np.ndarray,
        counts: np.ndarray,
        agent_chunks: List[np.ndarray],
        sample_chunks: List[np.ndarray],
        migrate_chunks: List[np.ndarray],
        cdf: np.ndarray,
        valid: np.ndarray,
        mu: np.ndarray,
        member_paths: np.ndarray,
    ) -> None:
        """Replay one frozen phase's activations as occurrence-rank rounds."""
        total = int(counts.sum())
        if total == 0:
            return
        slots = np.repeat(np.arange(len(rows)), counts)
        agents = offsets[rows][slots] + np.concatenate(agent_chunks)
        u_sample = np.concatenate(sample_chunks)
        u_migrate = np.concatenate(migrate_chunks)
        # Ranks are non-zero only for agents activated more than once in the
        # phase; restricting the sort to that (small) subset keeps the rank
        # computation cheap when activations are sparse in the population.
        activations = np.bincount(agents)
        repeated = activations[agents] > 1
        ranks = np.zeros(total, dtype=np.int64)
        if repeated.any():
            ranks[repeated] = _occurrence_ranks(agents[repeated])
        for rank in range(int(ranks.max()) + 1):
            mask = ranks == rank
            event_agents = agents[mask]
            event_slots = slots[mask]
            current = assignment[event_agents]
            local = (cdf[event_slots, current] <= u_sample[mask][:, None]).sum(axis=1)
            sampled = member_paths[current, local]
            migrate = (
                valid[event_slots, current]
                & (sampled != current)
                & (u_migrate[mask] < mu[event_slots, current, sampled])
            )
            assignment[event_agents[migrate]] = sampled[migrate]

    def _apply_fresh_phase(
        self,
        assignment: np.ndarray,
        weights: np.ndarray,
        flows_live: np.ndarray,
        offsets: np.ndarray,
        rows: np.ndarray,
        counts: np.ndarray,
        agent_chunks: List[np.ndarray],
        sample_chunks: List[np.ndarray],
        migrate_chunks: List[np.ndarray],
        layout,
    ) -> None:
        """Advance one up-to-date-information phase event by event, in lockstep.

        Round ``j`` processes the ``j``-th activation of every row that still
        has one: each row's activation sees exactly the live flow its scalar
        run would see (``flows_live`` is updated migration by migration with
        the scalar simulator's subtract-then-add order).  A row's live tables
        depend only on its flow, so they are cached and recomputed only for
        rows whose previous activation migrated -- bit-neutral, and near
        equilibrium most activations are no-ops.
        """
        if len(rows) == 0 or counts.max(initial=0) == 0:
            return
        max_count = int(counts.max())
        agent_matrix = np.zeros((len(rows), max_count), dtype=np.int64)
        sample_matrix = np.zeros((len(rows), max_count))
        migrate_matrix = np.zeros((len(rows), max_count))
        for i in range(len(rows)):
            count = int(counts[i])
            agent_matrix[i, :count] = agent_chunks[i]
            sample_matrix[i, :count] = sample_chunks[i]
            migrate_matrix[i, :count] = migrate_chunks[i]
        member_paths = layout.member_paths
        num_paths = flows_live.shape[1]
        batch = flows_live.shape[0]
        width = member_paths.shape[1]
        cdf_cache = np.zeros((batch, num_paths, width))
        valid_cache = np.zeros((batch, num_paths), dtype=bool)
        mu_cache = np.zeros((batch, num_paths, num_paths))
        stale_tables = np.ones(batch, dtype=bool)
        for event in range(max_count):
            live = counts > event
            event_slots = np.flatnonzero(live)
            event_rows = rows[event_slots]
            refresh = event_rows[stale_tables[event_rows]]
            if len(refresh):
                state = flows_live[refresh]
                latencies = self._path_latencies_rows(state, refresh)
                sigma, mu = self._policy_tables(state, latencies, refresh)
                cdf, valid = sampling_tables(sigma, layout)
                cdf_cache[refresh] = cdf
                valid_cache[refresh] = valid
                mu_cache[refresh] = mu
                stale_tables[refresh] = False
            agents = offsets[event_rows] + agent_matrix[event_slots, event]
            current = assignment[agents]
            local = (
                cdf_cache[event_rows, current]
                <= sample_matrix[event_slots, event][:, None]
            ).sum(axis=1)
            sampled = member_paths[current, local]
            migrate = (
                valid_cache[event_rows, current]
                & (sampled != current)
                & (migrate_matrix[event_slots, event] < mu_cache[event_rows, current, sampled])
            )
            moved_agents = agents[migrate]
            moved_rows = event_rows[migrate]
            moved_weights = weights[moved_agents]
            flows_live[moved_rows, current[migrate]] -= moved_weights
            flows_live[moved_rows, sampled[migrate]] += moved_weights
            assignment[moved_agents] = sampled[migrate]
            stale_tables[moved_rows] = True


def simulate_agent_batch(
    network: Networks,
    policies: Policies,
    num_agents,
    update_periods,
    horizons,
    initial_flows=None,
    seeds=0,
    stale: bool = True,
    stop_when: Optional[BatchStoppingCondition] = None,
) -> BatchAgentResult:
    """Convenience wrapper mirroring :func:`repro.core.agents.simulate_agents`."""
    config = BatchAgentConfig(
        num_agents=np.asarray(num_agents),
        update_periods=update_periods,
        horizons=horizons,
        seeds=seeds,
        stale=stale,
    )
    return BatchAgentSimulator(network, policies, config).run(
        initial_flows, stop_when=stop_when
    )
