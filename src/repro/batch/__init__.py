"""Batched vectorized simulation: whole ensembles as one stacked integration.

This subpackage is the execution layer behind the parameter sweeps: instead
of running ``B`` independent scalar simulations through Python loops, a
:class:`BatchSimulator` evolves all replicas as a single ``(B, P)`` array
with vectorised right-hand sides, per-row bulletin-board clocks (rows may
have different update periods ``T``) and per-row horizons.  The replicas
route on one shared network or on a
:class:`~repro.wardrop.family.NetworkFamily` (same topology, per-row latency
coefficients), and a vectorised ``stop_when`` mask (see
:mod:`repro.batch.stopping`) freezes converged rows early so they skip all
remaining work.  Row ``r`` reproduces the scalar
:class:`~repro.core.simulator.ReroutingSimulator` trajectory of the same
configuration exactly; see ``tests/batch``.
"""

from .agents import (
    BatchAgentConfig,
    BatchAgentResult,
    BatchAgentSimulator,
    simulate_agent_batch,
)
from .board import BatchBulletinBoard
from .engine import (
    BatchConfig,
    BatchResult,
    BatchSimulator,
    BatchStoppingCondition,
    simulate_batch,
)
from .stopping import StopCondition, distance_stop, equilibrium_gap_stop

__all__ = [
    "BatchAgentConfig",
    "BatchAgentResult",
    "BatchAgentSimulator",
    "BatchBulletinBoard",
    "BatchConfig",
    "BatchResult",
    "BatchSimulator",
    "BatchStoppingCondition",
    "StopCondition",
    "distance_stop",
    "equilibrium_gap_stop",
    "simulate_agent_batch",
    "simulate_batch",
]
