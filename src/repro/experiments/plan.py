"""Experiment plans: declarative grids of simulation cases with stable seeds.

An :class:`ExperimentPlan` is a named list of
:class:`~repro.analysis.sweeps.SweepCase` objects, typically built from the
cartesian product of parameter axes (:func:`repro.analysis.sweeps.cartesian`).
Every case carries a *deterministic* seed derived from the plan's base seed
and the case's parameters, so randomised ingredients (random starting flows,
random instances) are reproducible run over run, across process pools, and
independent of the execution order chosen by the runner.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..analysis.sweeps import SweepCase, cartesian

# A case builder receives one parameter combination plus a per-case RNG and
# returns the fully specified simulation case.
CaseBuilder = Callable[[Dict[str, object], np.random.Generator], SweepCase]


def case_seed(base_seed: int, index: int, parameters: Mapping[str, object]) -> int:
    """Return a stable 63-bit seed for one case of a plan.

    The seed depends only on the base seed, the case's position and its
    parameter dictionary (serialised deterministically), never on object
    identities or execution order — rerunning the same plan always reproduces
    the same randomness per case.
    """
    payload = json.dumps(
        {"base": int(base_seed), "index": int(index), "params": parameters},
        sort_keys=True,
        default=str,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass
class ExperimentPlan:
    """A named, seeded list of sweep cases ready for the runner.

    Attributes
    ----------
    name:
        Plan identifier, echoed into persisted results.
    cases:
        The fully specified simulation cases.
    seeds:
        One deterministic seed per case (same length as ``cases``).
    base_seed:
        The seed the per-case seeds were derived from.
    """

    name: str
    cases: List[SweepCase] = field(default_factory=list)
    seeds: List[int] = field(default_factory=list)
    base_seed: int = 0

    def __post_init__(self) -> None:
        if not self.seeds:
            self.seeds = [
                case_seed(self.base_seed, i, case.parameters)
                for i, case in enumerate(self.cases)
            ]
        if len(self.seeds) != len(self.cases):
            raise ValueError("plans need exactly one seed per case")

    def __len__(self) -> int:
        return len(self.cases)

    @classmethod
    def from_grid(
        cls,
        name: str,
        grid: Sequence[Dict[str, object]],
        case_builder: CaseBuilder,
        base_seed: int = 0,
    ) -> "ExperimentPlan":
        """Build a plan from an explicit list of parameter combinations.

        ``case_builder(params, rng)`` is called once per combination with a
        generator seeded by that case's deterministic seed; use the generator
        for any randomised ingredient (e.g. ``FlowVector.random``).
        """
        cases: List[SweepCase] = []
        seeds: List[int] = []
        for index, params in enumerate(grid):
            seed = case_seed(base_seed, index, params)
            rng = np.random.default_rng(seed)
            case = case_builder(dict(params), rng)
            cases.append(case)
            seeds.append(seed)
        return cls(name=name, cases=cases, seeds=seeds, base_seed=base_seed)

    @classmethod
    def from_axes(
        cls,
        name: str,
        case_builder: CaseBuilder,
        base_seed: int = 0,
        **axes: Sequence[object],
    ) -> "ExperimentPlan":
        """Build a plan from the cartesian product of named parameter axes."""
        return cls.from_grid(name, cartesian(**axes), case_builder, base_seed=base_seed)

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "ExperimentPlan":
        """Return a plan containing only the selected cases (seeds preserved)."""
        return ExperimentPlan(
            name=name or self.name,
            cases=[self.cases[i] for i in indices],
            seeds=[self.seeds[i] for i in indices],
            base_seed=self.base_seed,
        )
