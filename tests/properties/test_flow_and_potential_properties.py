"""Property-based tests (hypothesis) for flows and the potential decomposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instances import braess_network, identical_linear_links, two_link_network
from repro.wardrop import FlowVector, decompose_phase, potential, virtual_potential_gain

# Instances are built once; hypothesis only drives the numeric inputs.
TWO_LINKS = two_link_network(beta=3.0)
BRAESS = braess_network()
PARALLEL = identical_linear_links(5)


def braess_flow(weights):
    """Normalise three non-negative weights into a feasible Braess flow."""
    array = np.asarray(weights, dtype=float)
    total = array.sum()
    if total <= 0:
        array = np.ones(3)
        total = 3.0
    return FlowVector(BRAESS, array / total)


weights_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False),
    min_size=3,
    max_size=3,
)


class TestFlowProperties:
    @given(first=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_two_link_flows_always_feasible(self, first):
        flow = FlowVector(TWO_LINKS, [first, 1.0 - first])
        flow.check_feasible()
        assert flow.average_latency() >= 0.0
        assert flow.max_used_latency() >= 0.0

    @given(weights=weights_strategy)
    @settings(max_examples=50, deadline=None)
    def test_normalised_weights_are_feasible(self, weights):
        flow = braess_flow(weights)
        flow.check_feasible()
        assert np.all(flow.edge_flows() >= -1e-12)
        assert np.all(flow.edge_flows() <= 1.0 + 1e-9)

    @given(weights=weights_strategy, scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_projection_is_idempotent_and_feasible(self, weights, scale):
        raw = np.asarray(weights, dtype=float) * scale
        noisy = FlowVector(BRAESS, raw, validate=False)
        repaired = noisy.projected()
        repaired.check_feasible()
        again = repaired.projected()
        assert np.allclose(repaired.values(), again.values(), atol=1e-12)

    @given(weights_a=weights_strategy, weights_b=weights_strategy,
           mix=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_blend_is_feasible_and_between(self, weights_a, weights_b, mix):
        a = braess_flow(weights_a)
        b = braess_flow(weights_b)
        blend = a.blend(b, mix)
        blend.check_feasible()
        assert blend.distance_to(a) <= b.distance_to(a) + 1e-9

    @given(weights_a=weights_strategy, weights_b=weights_strategy)
    @settings(max_examples=50, deadline=None)
    def test_distance_is_a_metric(self, weights_a, weights_b):
        a = braess_flow(weights_a)
        b = braess_flow(weights_b)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))
        assert a.distance_to(a) == pytest.approx(0.0)
        assert a.distance_to(b) >= 0.0


class TestPotentialProperties:
    @given(weights_a=weights_strategy, weights_b=weights_strategy)
    @settings(max_examples=60, deadline=None)
    def test_lemma3_identity_for_arbitrary_flow_pairs(self, weights_a, weights_b):
        stale = braess_flow(weights_a)
        current = braess_flow(weights_b)
        decomposition = decompose_phase(stale, current)
        assert decomposition.identity_residual == pytest.approx(0.0, abs=1e-9)

    @given(weights_a=weights_strategy, weights_b=weights_strategy)
    @settings(max_examples=60, deadline=None)
    def test_error_terms_nonnegative(self, weights_a, weights_b):
        stale = braess_flow(weights_a)
        current = braess_flow(weights_b)
        decomposition = decompose_phase(stale, current)
        assert decomposition.error_total >= -1e-10

    @given(weights=weights_strategy)
    @settings(max_examples=50, deadline=None)
    def test_potential_nonnegative_and_bounded(self, weights):
        flow = braess_flow(weights)
        value = potential(flow)
        assert value >= -1e-12
        assert value <= BRAESS.max_latency() + 1e-9

    @given(weights=weights_strategy)
    @settings(max_examples=50, deadline=None)
    def test_virtual_gain_antisymmetric_first_order(self, weights):
        # V(f, f) = 0 for every flow.
        flow = braess_flow(weights)
        assert virtual_potential_gain(flow, flow) == pytest.approx(0.0, abs=1e-12)

    @given(first=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_two_link_potential_minimised_at_even_split(self, first):
        flow = FlowVector(TWO_LINKS, [first, 1.0 - first])
        equilibrium = FlowVector(TWO_LINKS, [0.5, 0.5])
        assert potential(equilibrium) <= potential(flow) + 1e-12
