"""Instance library: the paper's examples plus standard selfish-routing nets.

Includes the two-link oscillation instance of Section 3.2, Pigou and Braess
networks, parallel-link families for the convergence-time sweeps and random
layered/grid networks for stress tests.
"""

from .braess import braess_equilibrium, braess_equilibrium_latency, braess_network
from .city import city_tntp_text, synthetic_city_network
from .grids import grid_network
from .parallel_links import (
    heterogeneous_affine_links,
    identical_linear_links,
    parallel_links_network,
    pigou_like_links,
)
from .pigou import pigou_equilibrium, pigou_network, pigou_optimal_cost
from .random_networks import random_layered_network
from .registry import available_instances, get_instance, register_instance
from .tntp import (
    SIOUX_FALLS_REFERENCE_TSTT,
    TntpLink,
    load_tntp_from_text,
    load_tntp_instance,
    parse_tntp_network,
    parse_tntp_trips,
    sioux_falls_network,
)
from .two_links import (
    equilibrium_flow,
    lopsided_flow,
    oscillation_initial_flow,
    two_link_network,
)

__all__ = [
    "SIOUX_FALLS_REFERENCE_TSTT",
    "TntpLink",
    "available_instances",
    "braess_equilibrium",
    "braess_equilibrium_latency",
    "braess_network",
    "city_tntp_text",
    "equilibrium_flow",
    "get_instance",
    "grid_network",
    "heterogeneous_affine_links",
    "identical_linear_links",
    "load_tntp_from_text",
    "load_tntp_instance",
    "lopsided_flow",
    "oscillation_initial_flow",
    "parallel_links_network",
    "parse_tntp_network",
    "parse_tntp_trips",
    "pigou_equilibrium",
    "pigou_network",
    "pigou_optimal_cost",
    "pigou_like_links",
    "random_layered_network",
    "register_instance",
    "sioux_falls_network",
    "synthetic_city_network",
    "two_link_network",
]
