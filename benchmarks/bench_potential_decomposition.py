"""E7 -- Fig. 1 / Lemma 3: the potential decomposition along simulated phases.

Lemma 3 states the exact identity ``Phi(f) - Phi(f_hat) = sum_e U_e + V`` for
every bulletin-board phase; Lemma 4 adds that, for an alpha-smooth policy with
``T <= T*``, the error terms eat at most half of the virtual gain so
``Delta Phi <= V / 2``.  This benchmark verifies both statements phase by
phase on instances with overlapping paths (where the decomposition is
non-trivial) and reports the worst identity residual and the worst ratio
``Delta Phi / V``.
"""

from __future__ import annotations

import pytest

from repro.analysis import print_table
from repro.core import simulate, uniform_policy
from repro.instances import braess_network, get_instance, grid_network
from repro.wardrop import FlowVector, decompose_phase

INSTANCES = {
    "braess": braess_network,
    "grid-3x3": lambda: grid_network(3, 3, seed=3),
    "random-layered": lambda: get_instance("random-layered"),
}


def run_and_decompose(network, phases=100):
    policy = uniform_policy(network)
    period = policy.safe_update_period(network)
    start = FlowVector.single_path(network, {i: 0 for i in range(network.num_commodities)})
    trajectory = simulate(
        network, policy, update_period=period, horizon=phases * period,
        initial_flow=start, steps_per_phase=40,
    )
    return [decompose_phase(p.start_flow, p.end_flow) for p in trajectory.phases]


@pytest.mark.experiment("E7")
def test_lemma3_identity_and_lemma4_inequality(report_header):
    rows = []
    for name, make_instance in INSTANCES.items():
        network = make_instance()
        decompositions = run_and_decompose(network)
        worst_residual = max(abs(d.identity_residual) for d in decompositions)
        ratios = [
            d.delta_phi / d.virtual_gain
            for d in decompositions
            if d.virtual_gain < -1e-12
        ]
        violations = sum(1 for d in decompositions if not d.satisfies_lemma4())
        rows.append(
            {
                "instance": name,
                "phases": len(decompositions),
                "max_identity_residual": worst_residual,
                "lemma4_violations": violations,
                "min_dPhi/V": min(ratios) if ratios else 1.0,
            }
        )
    print_table(
        rows,
        title="E7: Lemma 3 identity and Lemma 4 inequality along simulated phases",
    )
    for row in rows:
        assert row["max_identity_residual"] < 1e-8
        assert row["lemma4_violations"] == 0
        # delta Phi / V >= 1/2 means the realised improvement is at least half
        # of the virtual improvement (both are negative).
        assert row["min_dPhi/V"] >= 0.5 - 1e-9


@pytest.mark.experiment("E7")
def test_benchmark_decomposition(benchmark, report_header):
    network = braess_network()
    decompositions = benchmark(run_and_decompose, network, 30)
    assert len(decompositions) == 30
