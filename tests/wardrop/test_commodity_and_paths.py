"""Unit tests for commodities, path enumeration and the PathSet index."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.wardrop.commodity import (
    Commodity,
    demands_are_normalised,
    normalise_demands,
    total_demand,
)
from repro.wardrop.latency import LinearLatency
from repro.wardrop.network import LATENCY_ATTR
from repro.wardrop.paths import Path, PathSet, build_path_set, enumerate_commodity_paths


class TestPathSetExtended:
    """Incremental column append: identity, ordering, and the carried-over
    edge membership must match a from-scratch build exactly."""

    def build(self):
        top = Path((("s", "a", 0), ("a", "t", 0)), commodity_index=0)
        bottom = Path((("s", "b", 0), ("b", "t", 0)), commodity_index=0)
        direct = Path((("s", "b", 0),), commodity_index=1)
        detour = Path((("s", "a", 0), ("a", "b", 0)), commodity_index=1)
        return PathSet([[top], [direct]]), [bottom, detour]

    def test_extended_matches_a_fresh_build(self):
        base, added = self.build()
        grown, perm = base.extended(added)
        fresh = PathSet(
            [
                [base.commodity_paths(0)[0], added[0]],
                [base.commodity_paths(1)[0], added[1]],
            ]
        )
        assert list(grown) == list(fresh)
        membership = grown.edge_membership()
        fresh_membership = fresh.edge_membership()
        assert set(membership) == set(fresh_membership)
        for edge, indices in fresh_membership.items():
            assert list(membership[edge]) == list(indices)

    def test_permutation_tracks_every_old_index(self):
        base, added = self.build()
        grown, perm = base.extended(added)
        assert perm.tolist() == [0, 2]  # commodity 1's block shifts by one
        for old_index, path in enumerate(base):
            assert grown.index_of(path) == perm[old_index]

    def test_membership_is_carried_over_not_rescanned(self):
        base, added = self.build()
        base.edge_membership()  # force the scan on the base set
        grown, _ = base.extended(added)
        membership = grown._membership
        assert membership is not None  # carried over eagerly
        fresh = PathSet([list(base.commodity_paths(0)) + [added[0]],
                         list(base.commodity_paths(1)) + [added[1]]])
        for edge, indices in fresh.edge_membership().items():
            assert list(membership[edge]) == list(indices)

    def test_empty_extension_returns_self_and_identity(self):
        base, _ = self.build()
        grown, perm = base.extended([])
        assert grown is base
        assert perm.tolist() == [0, 1]

    def test_unknown_commodity_rejected(self):
        base, added = self.build()
        bad = Path((("s", "a", 0),), commodity_index=7)
        with pytest.raises(ValueError, match="commodity 7"):
            base.extended([bad])


class TestCommodity:
    def test_rejects_non_positive_demand(self):
        with pytest.raises(ValueError):
            Commodity("s", "t", 0.0)
        with pytest.raises(ValueError):
            Commodity("s", "t", -1.0)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Commodity("s", "s", 1.0)

    def test_label_falls_back_to_index(self):
        assert Commodity("s", "t", 1.0).label(3) == "commodity-3"
        assert Commodity("s", "t", 1.0, name="web").label(3) == "web"

    def test_normalise(self):
        commodities = [Commodity("s", "t", 2.0), Commodity("a", "b", 6.0)]
        normalised = normalise_demands(commodities)
        assert total_demand(normalised) == pytest.approx(1.0)
        assert normalised[0].demand == pytest.approx(0.25)
        assert demands_are_normalised(normalised)

    def test_normalise_rejects_zero_total(self):
        with pytest.raises(ValueError):
            normalise_demands([])


def _simple_graph():
    graph = nx.MultiDiGraph()
    graph.add_edge("s", "a", **{LATENCY_ATTR: LinearLatency(1.0)})
    graph.add_edge("a", "t", **{LATENCY_ATTR: LinearLatency(1.0)})
    graph.add_edge("s", "t", **{LATENCY_ATTR: LinearLatency(1.0)})
    return graph


def _parallel_graph():
    graph = nx.MultiDiGraph()
    graph.add_edge("s", "t", **{LATENCY_ATTR: LinearLatency(1.0)})
    graph.add_edge("s", "t", **{LATENCY_ATTR: LinearLatency(2.0)})
    return graph


class TestPath:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Path((), 0)

    def test_rejects_discontiguous(self):
        with pytest.raises(ValueError):
            Path((("s", "a", 0), ("b", "t", 0)), 0)

    def test_nodes_and_describe(self):
        path = Path((("s", "a", 0), ("a", "t", 0)), 0)
        assert path.nodes == ("s", "a", "t")
        assert path.describe() == "s->a->t"
        assert path.source == "s"
        assert path.sink == "t"
        assert len(path) == 2


class TestEnumeration:
    def test_enumerates_both_routes(self):
        paths = enumerate_commodity_paths(_simple_graph(), Commodity("s", "t", 1.0), 0)
        descriptions = {path.describe() for path in paths}
        assert descriptions == {"s->t", "s->a->t"}

    def test_parallel_edges_are_distinct_paths(self):
        paths = enumerate_commodity_paths(_parallel_graph(), Commodity("s", "t", 1.0), 0)
        assert len(paths) == 2
        assert len({path.edges for path in paths}) == 2

    def test_missing_endpoint_raises(self):
        with pytest.raises(ValueError):
            enumerate_commodity_paths(_simple_graph(), Commodity("s", "zzz", 1.0), 0)

    def test_unroutable_commodity_raises(self):
        graph = _simple_graph()
        graph.add_node("island")
        with pytest.raises(ValueError):
            enumerate_commodity_paths(graph, Commodity("island", "t", 1.0), 0)

    def test_max_paths_guard(self):
        with pytest.raises(ValueError):
            enumerate_commodity_paths(_simple_graph(), Commodity("s", "t", 1.0), 0, max_paths=1)

    def test_paths_sorted_by_length(self):
        paths = enumerate_commodity_paths(_simple_graph(), Commodity("s", "t", 1.0), 0)
        assert len(paths[0]) <= len(paths[-1])


class TestPathSet:
    def _path_set(self):
        graph = _simple_graph()
        commodities = [Commodity("s", "t", 0.5), Commodity("s", "a", 0.5)]
        return build_path_set(graph, commodities)

    def test_global_indexing_roundtrip(self):
        path_set = self._path_set()
        for index, path in enumerate(path_set):
            assert path_set.index_of(path) == index
            assert path_set.commodity_of(index) == path.commodity_index

    def test_commodity_slices_partition(self):
        path_set = self._path_set()
        covered = []
        for i in range(path_set.num_commodities):
            covered.extend(path_set.commodity_indices(i))
        assert covered == list(range(len(path_set)))

    def test_max_path_length(self):
        assert self._path_set().max_path_length() == 2

    def test_paths_through_edge(self):
        path_set = self._path_set()
        edge = ("s", "a", 0)
        through = path_set.paths_through(edge)
        for index in through:
            assert edge in path_set[index].edges

    def test_duplicate_paths_rejected(self):
        path = Path((("s", "t", 0),), 0)
        with pytest.raises(ValueError):
            PathSet([[path, path]])

    def test_contains(self):
        path_set = self._path_set()
        assert path_set[0] in path_set
