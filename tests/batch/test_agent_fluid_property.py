"""Statistical regression guard for E9: finite agents approach the fluid ODE.

Property (seeded grid, deterministic in CI): on the Pigou and Braess
instances the batched finite-population engine's empirical path shares
converge to the fluid-limit trajectory as the population grows -- the
sup-norm deviation averaged over replicas shrinks monotonically along an
order-of-magnitude ``n`` grid and ends in the ``O(1/sqrt(n))`` regime.  All
replicas of the whole grid run as one batched call.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import fluid_limit_deviation
from repro.batch import simulate_agent_batch
from repro.core import replicator_policy, simulate
from repro.instances import braess_network, pigou_network

POPULATIONS = [100, 1000, 10000]
REPLICAS = 3
UPDATE_PERIOD = 0.1
HORIZON = 5.0


@pytest.mark.parametrize(
    "make_network",
    [lambda: pigou_network(degree=1), lambda: braess_network(with_shortcut=True)],
    ids=["pigou", "braess"],
)
def test_empirical_shares_converge_to_fluid_trajectory(make_network):
    network = make_network()
    policy = replicator_policy(network, exploration=1e-3)
    fluid = simulate(
        network, policy, update_period=UPDATE_PERIOD, horizon=HORIZON
    )

    grid = [(n, replica) for n in POPULATIONS for replica in range(REPLICAS)]
    result = simulate_agent_batch(
        network,
        policy,
        num_agents=[n for n, _ in grid],
        update_periods=UPDATE_PERIOD,
        horizons=HORIZON,
        seeds=[1000 * n + replica for n, replica in grid],
    )

    deviations = {n: [] for n in POPULATIONS}
    for row, (n, _) in enumerate(grid):
        deviations[n].append(fluid_limit_deviation(result.trajectory(row), fluid))
    means = [float(np.mean(deviations[n])) for n in POPULATIONS]

    # Deviation shrinks monotonically along the order-of-magnitude grid ...
    assert means[0] > means[1] > means[2], means
    # ... and the largest population sits in the O(1/sqrt(n)) regime (the
    # constant 5 is a loose regression bound, not a theorem constant).
    assert means[-1] < 5.0 / np.sqrt(POPULATIONS[-1]), means
    # Sanity: small populations are genuinely far from the fluid limit, so
    # the monotone chain above is not comparing numerical noise.
    assert means[0] > means[-1] * 2, means
