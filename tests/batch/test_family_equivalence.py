"""Family-batch-vs-scalar equivalence: a multi-network batched run must
reproduce, row by row, the scalar simulator trajectory on each family member.

This is the correctness contract of heterogeneous-coefficient batching: for
Pigou and Braess coefficient families, under stale and fresh information,
for both integration methods, with shared and per-row policies, and with and
without vectorised early stopping, every recorded sample of every row must
match a scalar :class:`~repro.core.simulator.ReroutingSimulator` run on that
row's own network — and the recorded stop phases must equal the scalar
runs' early-exit phases exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import distance_stop, equilibrium_gap_stop, simulate_batch
from repro.core import replicator_policy, scaled_policy, uniform_policy, simulate
from repro.instances import braess_network, pigou_network, two_link_network
from repro.instances.pigou import pigou_equilibrium
from repro.wardrop import FlowVector, NetworkFamily

TOLERANCE = 1e-10


def assert_family_rows_match_scalar(
    family, policies, periods, horizon, starts, stale,
    steps_per_phase=10, method="rk4", stop_condition=None,
):
    """Run the family batch and every scalar counterpart and compare."""
    policy_list = policies if isinstance(policies, list) else [policies] * family.size
    result = simulate_batch(
        family, policies, periods, horizon,
        initial_flows=starts, stale=stale,
        steps_per_phase=steps_per_phase, method=method,
        stop_when=stop_condition,
    )
    for row in range(family.size):
        scalar = simulate(
            family.member(row), policy_list[row],
            update_period=periods[row], horizon=horizon,
            initial_flow=starts[row], stale=stale,
            steps_per_phase=steps_per_phase, method=method,
            stop_when=stop_condition.scalar(row) if stop_condition is not None else None,
        )
        batched = result.trajectory(row)
        assert batched.network is family.member(row)
        assert len(batched.points) == len(scalar.points)
        assert len(batched.phases) == len(scalar.phases)
        assert np.allclose(batched.times, scalar.times, atol=TOLERANCE)
        assert np.allclose(batched.flow_matrix(), scalar.flow_matrix(), atol=TOLERANCE)
        for got, expected in zip(batched.phases, scalar.phases):
            assert got.index == expected.index
            assert abs(got.start_time - expected.start_time) <= TOLERANCE
            assert abs(got.end_time - expected.end_time) <= TOLERANCE
            assert np.allclose(
                got.start_flow.values(), expected.start_flow.values(), atol=TOLERANCE
            )
            assert np.allclose(
                got.end_flow.values(), expected.end_flow.values(), atol=TOLERANCE
            )
        if stop_condition is not None:
            # The scalar run completes the phase that fires stop_when and
            # then exits; the batched stop phase must point at that phase.
            if result.stop_phases[row] >= 0:
                assert result.stop_phases[row] == len(scalar.phases) - 1
                last = scalar.phases[-1]
                assert stop_condition.scalar(row)(last.end_time, last.end_flow)
    return result


def random_family_starts(family, seed):
    rng = np.random.default_rng(seed)
    return [FlowVector.random(network, rng) for network in family.networks]


class TestPigouFamilyProperty:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        stale=st.booleans(),
        method=st.sampled_from(["euler", "rk4"]),
    )
    def test_heterogeneous_constants_and_degrees_match_scalar(self, seed, stale, method):
        rng = np.random.default_rng(seed)
        constants = rng.uniform(0.5, 1.5, size=3)
        degrees = [1, 2, 1]
        family = NetworkFamily(
            [pigou_network(degree=d, constant=c) for d, c in zip(degrees, constants)]
        )
        policies = [replicator_policy(network) for network in family.networks]
        starts = random_family_starts(family, seed)
        periods = [float(rng.uniform(0.05, 0.3)), 0.11, 0.17]
        assert_family_rows_match_scalar(
            family, policies, periods, 1.0, starts, stale, method=method
        )

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        stale=st.booleans(),
        method=st.sampled_from(["euler", "rk4"]),
        tolerance=st.floats(min_value=0.02, max_value=0.4),
    )
    def test_early_stopping_matches_scalar_stop_steps(self, seed, stale, method, tolerance):
        rng = np.random.default_rng(seed)
        constants = rng.uniform(0.5, 1.4, size=3)
        family = NetworkFamily(
            [pigou_network(degree=1, constant=c) for c in constants]
        )
        policies = [replicator_policy(network) for network in family.networks]
        starts = random_family_starts(family, seed)
        targets = [pigou_equilibrium(network) for network in family.networks]
        condition = distance_stop(targets, tolerance)
        result = assert_family_rows_match_scalar(
            family, policies, [0.15, 0.2, 0.25], 12.0, starts, stale,
            method=method, stop_condition=condition,
        )
        # The replicator moves towards equilibrium, so with a generous
        # tolerance at least one row should actually freeze early.
        if tolerance >= 0.3:
            assert result.stopped_rows().any()


class TestBraessFamily:
    @pytest.mark.parametrize("stale", [True, False])
    def test_shortcut_latency_sweep_matches_scalar(self, stale):
        shortcuts = [0.0, 0.1, 0.25, 0.5]
        family = NetworkFamily(
            [braess_network(shortcut_latency=s) for s in shortcuts]
        )
        policies = [uniform_policy(network) for network in family.networks]
        starts = random_family_starts(family, 7)
        periods = [0.05, 0.07, 0.1, 0.25]
        assert_family_rows_match_scalar(family, policies, periods, 1.3, starts, stale)

    def test_shared_policy_euler_matches_scalar(self):
        """A network-independent shared policy takes the fully vectorised path."""
        shortcuts = [0.0, 0.2, 0.4]
        family = NetworkFamily(
            [braess_network(shortcut_latency=s) for s in shortcuts]
        )
        policy = scaled_policy(0.8)
        starts = [FlowVector.uniform(network) for network in family.networks]
        assert_family_rows_match_scalar(
            family, policy, [0.06, 0.1, 0.15], 0.9, starts, stale=True, method="euler"
        )


class TestTwoLinkFamilyStopping:
    def test_equilibrium_gap_stop_matches_scalar(self):
        """Acceptance: long-horizon convergence sweep, stop steps exact."""
        betas = [2.0, 4.0, 6.0, 8.0]
        family = NetworkFamily([two_link_network(beta=b) for b in betas])
        policies = [uniform_policy(network) for network in family.networks]
        starts = [FlowVector(network, [0.9, 0.1]) for network in family.networks]
        condition = equilibrium_gap_stop(family, delta=0.05)
        result = assert_family_rows_match_scalar(
            family, policies, [0.1] * 4, 40.0, starts, stale=True,
            steps_per_phase=10, stop_condition=condition,
        )
        assert result.stopped_rows().all(), "all rows should converge well before t=40"
        # Steeper betas keep the latency gap open longer, so stop steps vary.
        assert len(set(result.stop_phases.tolist())) > 1


class TestFamilyValidation:
    def test_family_size_must_match_batch(self):
        family = NetworkFamily([pigou_network(), pigou_network(constant=2.0)])
        policy = scaled_policy(1.0)
        with pytest.raises(ValueError):
            simulate_batch(family, policy, [0.1, 0.1, 0.1], 1.0)

    def test_initial_flows_accept_member_networks(self):
        networks = [pigou_network(constant=c) for c in (0.8, 1.2)]
        family = NetworkFamily(networks)
        policy = scaled_policy(1.0)
        starts = [FlowVector.uniform(network) for network in networks]
        result = simulate_batch(family, policy, [0.1, 0.1], 0.5, initial_flows=starts)
        assert result.batch_size == 2

    def test_initial_flows_reject_foreign_networks(self):
        networks = [pigou_network(constant=c) for c in (0.8, 1.2)]
        family = NetworkFamily(networks)
        policy = scaled_policy(1.0)
        foreign = FlowVector.uniform(pigou_network(constant=0.9))
        with pytest.raises(ValueError):
            simulate_batch(
                family, policy, [0.1, 0.1], 0.5,
                initial_flows=[foreign, FlowVector.uniform(networks[1])],
            )

    def test_stop_when_shape_validated(self):
        network = pigou_network()
        policy = scaled_policy(1.0)
        with pytest.raises(ValueError):
            simulate_batch(
                network, policy, [0.1, 0.1], 0.5,
                stop_when=lambda times, flows, rows: np.array([True]),
            )
