"""Cross-run comparison: self times, fingerprint diffs, verdicts, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.telemetry.compare import (
    CompareError,
    compare_bench_records,
    compare_traces,
    comparison_summary,
    detect_kind,
    load_comparable,
    render_comparison_report,
    self_time_totals,
)


def _bench_record(**overrides):
    record = {
        "schema": "repro-bench/1",
        "bench": "bench_x",
        "section": "warm",
        "engine": "fluid-batch",
        "instance": "two-links",
        "cases": 8,
        "seconds": 1.0,
        "rate": 8.0,
    }
    record.update(overrides)
    return record


def _write_jsonl(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


class TestSelfTime:
    def test_exclusive_time_subtracts_direct_children(self):
        records = [
            {"kind": "span", "name": "engine_run", "id": 0, "parent": None, "dur": 1.0},
            {"kind": "span", "name": "phase", "id": 1, "parent": 0, "dur": 0.6},
            {"kind": "span", "name": "integrate", "id": 2, "parent": 1, "dur": 0.5},
        ]
        totals = self_time_totals(records)
        assert totals["engine_run"] == pytest.approx(0.4)
        assert totals["phase"] == pytest.approx(0.1)
        assert totals["integrate"] == pytest.approx(0.5)

    def test_negative_self_time_clamps_to_zero(self):
        records = [
            {"kind": "span", "name": "parent", "id": 0, "parent": None, "dur": 1.0},
            {"kind": "span", "name": "child", "id": 1, "parent": 0, "dur": 1.1},
        ]
        assert self_time_totals(records)["parent"] == 0.0


class TestBenchComparison:
    def test_identical_files_report_zero_regressions(self):
        records = [_bench_record(), _bench_record(engine="edge-fw", method="bfw")]
        rows = compare_bench_records(records, [dict(r) for r in records])
        summary = comparison_summary(rows)
        assert summary["regression"] == 0
        assert summary["improvement"] == 0
        assert summary["ok"] == 2

    def test_doubled_seconds_flags_exactly_the_slowed_entries(self):
        baseline = [
            _bench_record(),
            _bench_record(engine="edge-fw", method="bfw", seconds=2.0, gap=1e-4),
            _bench_record(engine="agents-batch", seconds=3.0),
        ]
        current = [dict(r) for r in baseline]
        current[1]["seconds"] *= 2  # only the edge-fw entry slows down
        rows = compare_bench_records(baseline, current)
        verdicts = {str(row["entry"]): row["verdict"] for row in rows}
        flagged = [entry for entry, verdict in verdicts.items() if verdict == "regression"]
        assert len(flagged) == 1
        assert "edge-fw" in flagged[0]

    def test_improvement_is_reported_too(self):
        baseline = [_bench_record(seconds=2.0)]
        current = [_bench_record(seconds=1.0)]
        (row,) = compare_bench_records(baseline, current)
        assert row["verdict"] == "improvement"
        assert row["delta"] == pytest.approx(-0.5)

    def test_within_threshold_is_ok(self):
        baseline = [_bench_record(seconds=1.0)]
        current = [_bench_record(seconds=1.1)]
        (row,) = compare_bench_records(baseline, current)
        assert row["verdict"] == "ok"

    def test_unmatched_entries_are_informational(self):
        baseline = [_bench_record()]
        current = [_bench_record(engine="edge-fw")]
        rows = compare_bench_records(baseline, current)
        assert sorted(str(row["verdict"]) for row in rows) == ["only-a", "only-b"]
        assert comparison_summary(rows)["regression"] == 0

    def test_best_of_repeated_runs_is_compared(self):
        baseline = [_bench_record(seconds=5.0), _bench_record(seconds=1.0)]
        current = [_bench_record(seconds=1.05)]
        (row,) = compare_bench_records(baseline, current)
        assert row["seconds_a"] == pytest.approx(1.0)
        assert row["verdict"] == "ok"


class TestTraceComparison:
    def test_doubled_span_is_a_regression(self):
        trace_a = [
            {"kind": "meta", "schema": "repro-trace/1"},
            {"kind": "span", "name": "phase", "id": 0, "parent": None, "dur": 1.0},
        ]
        trace_b = [
            {"kind": "meta", "schema": "repro-trace/1"},
            {"kind": "span", "name": "phase", "id": 0, "parent": None, "dur": 2.0},
        ]
        (row,) = compare_traces(trace_a, trace_b)
        assert row["span"] == "phase"
        assert row["verdict"] == "regression"

    def test_sub_millisecond_noise_is_ok(self):
        trace_a = [{"kind": "span", "name": "tiny", "id": 0, "parent": None, "dur": 1e-5}]
        trace_b = [{"kind": "span", "name": "tiny", "id": 0, "parent": None, "dur": 9e-4}]
        (row,) = compare_traces(trace_a, trace_b)
        assert row["verdict"] == "ok"


class TestDetection:
    def test_detects_trace_by_meta_header(self):
        assert detect_kind([{"kind": "meta", "schema": "repro-trace/1"}]) == "trace"

    def test_detects_bench_by_schema(self):
        assert detect_kind([_bench_record()]) == "bench"

    def test_detects_ledger_as_bench(self):
        assert (
            detect_kind([{"schema": "repro-ledger/1", "kind": "engine_run"}]) == "bench"
        )

    def test_unknown_records_raise(self):
        with pytest.raises(CompareError):
            detect_kind([{"what": "is this"}])

    def test_load_comparable_errors_on_missing_and_empty(self, tmp_path):
        with pytest.raises(CompareError):
            load_comparable(tmp_path / "missing.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(CompareError):
            load_comparable(empty)

    def test_load_comparable_errors_on_bad_json(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "repro-bench/1"}\nnot json\n')
        with pytest.raises(CompareError, match="line 2"):
            load_comparable(bad)


class TestRendering:
    def test_report_contains_table_and_summary_line(self):
        rows = compare_bench_records([_bench_record()], [_bench_record(seconds=3.0)])
        text = render_comparison_report(rows, "bench")
        assert "regression" in text
        assert "summary: 1 regression(s)" in text

    def test_gap_columns_survive_mixed_rows(self):
        baseline = [
            _bench_record(),
            _bench_record(engine="edge-fw", method="bfw", gap=1e-4),
        ]
        text = render_comparison_report(
            compare_bench_records(baseline, baseline), "bench"
        )
        assert "gap_a" in text


class TestCompareCli:
    def test_identical_files_exit_zero(self, tmp_path, capsys):
        records = [_bench_record()]
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_jsonl(a, records)
        _write_jsonl(b, records)
        assert main(["compare", str(a), str(b), "--fail-on-regression"]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_regression_fails_only_with_flag(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_jsonl(a, [_bench_record(seconds=1.0)])
        _write_jsonl(b, [_bench_record(seconds=2.0)])
        assert main(["compare", str(a), str(b)]) == 0
        assert main(["compare", str(a), str(b), "--fail-on-regression"]) == 1
        capsys.readouterr()

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        _write_jsonl(a, [_bench_record()])
        assert main(["compare", str(a), str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_mixed_kinds_error_without_force(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_jsonl(a, [_bench_record()])
        _write_jsonl(b, [{"kind": "meta", "schema": "repro-trace/1"},
                         {"kind": "span", "name": "phase", "id": 0, "parent": None, "dur": 1.0}])
        assert main(["compare", str(a), str(b)]) == 2
        assert "cannot compare" in capsys.readouterr().err

    def test_custom_threshold(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _write_jsonl(a, [_bench_record(seconds=1.0)])
        _write_jsonl(b, [_bench_record(seconds=1.3)])
        assert main(["compare", str(a), str(b), "--threshold", "0.5",
                     "--fail-on-regression"]) == 0
        capsys.readouterr()
