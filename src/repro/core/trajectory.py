"""Trajectory recording for the dynamics simulators.

A :class:`Trajectory` stores the flow at sample times together with the
derived quantities the analyses need (potential, average latency,
unsatisfied volumes, phase boundaries).  Both the fluid-limit simulator and
the finite-agent simulator produce trajectories, so the analysis toolkit and
the benchmarks can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..wardrop.equilibrium import unsatisfied_volume, weakly_unsatisfied_volume
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from ..wardrop.potential import potential


@dataclass
class TrajectoryPoint:
    """One recorded sample of a dynamics run."""

    time: float
    flow: FlowVector
    phase_index: int

    @property
    def potential(self) -> float:
        return potential(self.flow)


@dataclass
class PhaseRecord:
    """Summary of one bulletin-board phase (one update period).

    ``start_flow`` is the flow at the phase start (i.e. the posted state) and
    ``end_flow`` the flow when the next update happened; the Lemma 3/4
    quantities are derived from the pair by the analysis module.
    """

    index: int
    start_time: float
    end_time: float
    start_flow: FlowVector
    end_flow: FlowVector


@dataclass
class Trajectory:
    """A recorded run of one of the dynamics simulators."""

    network: WardropNetwork
    points: List[TrajectoryPoint] = field(default_factory=list)
    phases: List[PhaseRecord] = field(default_factory=list)
    policy_name: str = ""
    update_period: float = 0.0

    # Recording ------------------------------------------------------------

    def record(self, time: float, flow: FlowVector, phase_index: int) -> None:
        self.points.append(TrajectoryPoint(time=time, flow=flow, phase_index=phase_index))

    def record_phase(self, record: PhaseRecord) -> None:
        self.phases.append(record)

    # Access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.points)

    @property
    def initial_flow(self) -> FlowVector:
        return self.points[0].flow

    @property
    def final_flow(self) -> FlowVector:
        return self.points[-1].flow

    @property
    def times(self) -> np.ndarray:
        return np.array([point.time for point in self.points])

    def flow_matrix(self) -> np.ndarray:
        """Return an array of shape (samples, paths) of path flows over time."""
        return np.array([point.flow.values() for point in self.points])

    def potential_trace(self) -> np.ndarray:
        """Return the Beckmann potential at every recorded sample."""
        return np.array([point.potential for point in self.points])

    def average_latency_trace(self) -> np.ndarray:
        """Return the overall average latency ``L`` at every sample."""
        return np.array([point.flow.average_latency() for point in self.points])

    def max_used_latency_trace(self) -> np.ndarray:
        """Return the maximum latency over used paths at every sample."""
        return np.array([point.flow.max_used_latency() for point in self.points])

    def unsatisfied_trace(self, delta: float) -> np.ndarray:
        """Return the delta-unsatisfied volume (Definition 3) at every sample."""
        return np.array([unsatisfied_volume(point.flow, delta) for point in self.points])

    def weakly_unsatisfied_trace(self, delta: float) -> np.ndarray:
        """Return the weakly delta-unsatisfied volume (Definition 4) at every sample."""
        return np.array([weakly_unsatisfied_volume(point.flow, delta) for point in self.points])

    def phase_start_flows(self) -> List[FlowVector]:
        """Return the flow at the start of every completed phase."""
        return [phase.start_flow for phase in self.phases]

    def sample_at(self, time: float) -> TrajectoryPoint:
        """Return the recorded point closest to ``time``."""
        if not self.points:
            raise ValueError("trajectory is empty")
        index = int(np.argmin(np.abs(self.times - time)))
        return self.points[index]

    def describe(self) -> str:
        """Return a one-line summary of the run."""
        if not self.points:
            return "Trajectory(empty)"
        return (
            f"Trajectory(policy={self.policy_name or 'unknown'}, T={self.update_period:g}, "
            f"samples={len(self.points)}, phases={len(self.phases)}, "
            f"t_final={self.points[-1].time:g}, "
            f"Phi_final={self.points[-1].potential:.6g})"
        )
